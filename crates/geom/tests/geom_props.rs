//! Property tests for the geometry substrate.

use locble_geom::{Pose2, TimedPoint, Trajectory, Vec2};
use proptest::prelude::*;

fn arb_vec2() -> impl Strategy<Value = Vec2> {
    (-50.0..50.0f64, -50.0..50.0f64).prop_map(|(x, y)| Vec2::new(x, y))
}

proptest! {
    /// Pose local↔world transforms are exact inverses.
    #[test]
    fn pose_round_trip(
        p in arb_vec2(),
        pos in arb_vec2(),
        heading in -10.0..10.0f64,
    ) {
        let pose = Pose2::new(pos, heading);
        prop_assert!(pose.world_to_local(pose.local_to_world(p)).distance(p) < 1e-9);
        prop_assert!(pose.local_to_world(pose.world_to_local(p)).distance(p) < 1e-9);
    }

    /// Rotation preserves norms and composes additively.
    #[test]
    fn rotation_isometry(v in arb_vec2(), a in -10.0..10.0f64, b in -10.0..10.0f64) {
        prop_assert!((v.rotated(a).norm() - v.norm()).abs() < 1e-9);
        prop_assert!(v.rotated(a).rotated(b).distance(v.rotated(a + b)) < 1e-6);
    }

    /// Trajectory sampling stays within the convex hull of its segment
    /// endpoints and is exact at the knots.
    #[test]
    fn trajectory_sampling_bounds(
        points in prop::collection::vec((0.0..100.0f64, arb_vec2()), 2..20),
        q in 0.0..1.0f64,
    ) {
        let mut pts: Vec<(f64, Vec2)> = points;
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let traj = Trajectory::from_points(
            pts.iter().map(|&(t, pos)| TimedPoint { t, pos }).collect(),
        );
        // Exact at knots (the last knot at any duplicated time wins).
        let last = pts.last().expect("non-empty");
        prop_assert!(traj.sample(last.0).expect("in range").distance(last.1) < 1e-9);
        // Between any two consecutive knots, the sample lies on the
        // segment (distance to both endpoints bounded by their spacing).
        let t0 = pts[0].0;
        let t1 = last.0;
        let t = t0 + q * (t1 - t0);
        let s = traj.sample(t).expect("in range");
        prop_assert!(s.is_finite());
        // Path length is at least the straight-line start→end distance.
        prop_assert!(traj.path_length() + 1e-9 >= pts[0].1.distance(last.1));
    }

    /// Displacement is translation-invariant.
    #[test]
    fn displacement_translation_invariant(
        offsets in prop::collection::vec(arb_vec2(), 2..10),
        shift in arb_vec2(),
        q in 0.0..1.0f64,
    ) {
        let build = |base: Vec2| {
            let mut tr = Trajectory::new();
            for (i, &o) in offsets.iter().enumerate() {
                tr.push(i as f64, base + o);
            }
            tr
        };
        let a = build(Vec2::ZERO);
        let b = build(shift);
        let t = q * (offsets.len() - 1) as f64;
        let da = a.displacement_at(t).expect("in range");
        let db = b.displacement_at(t).expect("in range");
        prop_assert!(da.distance(db) < 1e-9);
    }
}
