//! Labeled datasets and train/test splitting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A labeled classification dataset: one feature vector and one integer
/// class label per sample.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Feature vectors (all the same length).
    pub features: Vec<Vec<f64>>,
    /// Class labels, parallel to `features`.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Adds one sample.
    ///
    /// # Panics
    /// Panics when the feature dimensionality differs from prior samples.
    pub fn push(&mut self, features: Vec<f64>, label: usize) {
        if let Some(first) = self.features.first() {
            assert_eq!(
                first.len(),
                features.len(),
                "all samples must share one feature dimensionality"
            );
        }
        self.features.push(features);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct classes (`max label + 1`); 0 when empty.
    pub fn num_classes(&self) -> usize {
        self.labels.iter().max().map_or(0, |&m| m + 1)
    }

    /// Feature dimensionality; 0 when empty.
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, |f| f.len())
    }

    /// Splits into (train, test) with `test_fraction` of samples held out,
    /// after a deterministic seeded shuffle.
    ///
    /// # Panics
    /// Panics when `test_fraction` is outside `(0, 1)`.
    pub fn split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test_fraction must be in (0,1)"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let n_test = ((self.len() as f64) * test_fraction).round() as usize;
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for (k, &i) in idx.iter().enumerate() {
            let target = if k < n_test { &mut test } else { &mut train };
            target.push(self.features[i].clone(), self.labels[i]);
        }
        (train, test)
    }
}

/// Deterministic k-fold cross-validation: yields `(train, test)` splits
/// covering every sample exactly once as test data.
///
/// # Panics
/// Panics when `k < 2` or `k` exceeds the sample count.
pub fn k_fold(data: &Dataset, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(k <= data.len(), "k exceeds sample count");
    let mut idx: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    (0..k)
        .map(|fold| {
            let mut train = Dataset::new();
            let mut test = Dataset::new();
            for (pos, &i) in idx.iter().enumerate() {
                let target = if pos % k == fold {
                    &mut test
                } else {
                    &mut train
                };
                target.push(data.features[i].clone(), data.labels[i]);
            }
            (train, test)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut d = Dataset::new();
        for i in 0..n {
            d.push(vec![i as f64, (i * 2) as f64], i % 3);
        }
        d
    }

    #[test]
    fn push_and_introspect() {
        let d = toy(9);
        assert_eq!(d.len(), 9);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.num_classes(), 3);
        assert!(!d.is_empty());
        assert_eq!(Dataset::new().num_classes(), 0);
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = toy(100);
        let (train, test) = d.split(0.25, 42);
        assert_eq!(train.len() + test.len(), 100);
        assert_eq!(test.len(), 25);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = toy(50);
        let (tr1, te1) = d.split(0.2, 7);
        let (tr2, te2) = d.split(0.2, 7);
        assert_eq!(tr1.features, tr2.features);
        assert_eq!(te1.labels, te2.labels);
        let (tr3, _) = d.split(0.2, 8);
        assert_ne!(tr1.features, tr3.features);
    }

    #[test]
    fn k_fold_covers_every_sample_once() {
        let d = toy(20);
        let folds = k_fold(&d, 4, 9);
        assert_eq!(folds.len(), 4);
        let mut test_total = 0;
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 20);
            assert_eq!(test.len(), 5);
            test_total += test.len();
        }
        assert_eq!(test_total, 20);
    }

    #[test]
    fn k_fold_is_deterministic() {
        let d = toy(12);
        let a = k_fold(&d, 3, 5);
        let b = k_fold(&d, 3, 5);
        assert_eq!(a[0].1.features, b[0].1.features);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn k_fold_rejects_k1() {
        k_fold(&toy(5), 1, 0);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn push_rejects_dim_mismatch() {
        let mut d = toy(3);
        d.push(vec![1.0], 0);
    }
}
