//! Random-forest classifier.
//!
//! The third member of the paper's §4.1 classifier ensemble. Standard
//! bagging: each tree trains on a bootstrap resample of the data and a
//! random subset of √d features; prediction is majority vote.

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Hyper-parameters for [`RandomForest`].
#[derive(Debug, Clone, Copy)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub num_trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// RNG seed for bootstrap resampling and feature subsetting.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            num_trees: 25,
            tree: TreeConfig::default(),
            seed: 0xF0_5E57,
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    num_classes: usize,
}

impl RandomForest {
    /// Trains the forest.
    ///
    /// # Panics
    /// Panics on an empty dataset or a zero-tree configuration.
    pub fn train(data: &Dataset, config: &RandomForestConfig) -> RandomForest {
        assert!(!data.is_empty(), "cannot train on empty dataset");
        assert!(config.num_trees > 0, "forest needs at least one tree");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = data.len();
        let dim = data.dim();
        let subset_size = ((dim as f64).sqrt().ceil() as usize).clamp(1, dim);

        let trees = (0..config.num_trees)
            .map(|_| {
                // Bootstrap resample.
                let mut boot = Dataset::new();
                for _ in 0..n {
                    let i = rng.random_range(0..n);
                    boot.push(data.features[i].clone(), data.labels[i]);
                }
                // Random feature subset.
                let mut features: Vec<usize> = (0..dim).collect();
                features.shuffle(&mut rng);
                features.truncate(subset_size);
                DecisionTree::train_with_features(&boot, &config.tree, Some(&features))
            })
            .collect();
        RandomForest {
            trees,
            num_classes: data.num_classes(),
        }
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn predict(&self, features: &[f64]) -> usize {
        let mut votes = vec![0usize; self.num_classes.max(1)];
        for t in &self.trees {
            let p = t.predict(features);
            if p < votes.len() {
                votes[p] += 1;
            }
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(l, _)| l)
            .expect("at least one class")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_dataset() -> Dataset {
        let mut d = Dataset::new();
        let centers = [(0.0, 0.0), (6.0, 6.0), (0.0, 6.0)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..40 {
                let dx = ((i * 7) % 11) as f64 * 0.1 - 0.5;
                let dy = ((i * 3) % 11) as f64 * 0.1 - 0.5;
                d.push(vec![cx + dx, cy + dy], c);
            }
        }
        d
    }

    #[test]
    fn classifies_blobs() {
        let d = blob_dataset();
        let forest = RandomForest::train(&d, &RandomForestConfig::default());
        let preds = forest.predict_batch(&d.features);
        let correct = preds.iter().zip(&d.labels).filter(|(p, l)| p == l).count();
        assert!(
            correct as f64 / d.len() as f64 > 0.95,
            "{correct}/{}",
            d.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let d = blob_dataset();
        let cfg = RandomForestConfig::default();
        let a = RandomForest::train(&d, &cfg);
        let b = RandomForest::train(&d, &cfg);
        let pa = a.predict_batch(&d.features);
        let pb = b.predict_batch(&d.features);
        assert_eq!(pa, pb);
    }

    #[test]
    fn configured_tree_count() {
        let d = blob_dataset();
        let forest = RandomForest::train(
            &d,
            &RandomForestConfig {
                num_trees: 7,
                ..Default::default()
            },
        );
        assert_eq!(forest.num_trees(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn rejects_zero_trees() {
        RandomForest::train(
            &blob_dataset(),
            &RandomForestConfig {
                num_trees: 0,
                ..Default::default()
            },
        );
    }
}
