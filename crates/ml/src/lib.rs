//! Machine-learning substrate for the LocBLE reproduction.
//!
//! The paper leans on two off-the-shelf ML stacks that do not exist in
//! this environment and are therefore rebuilt from scratch:
//!
//! * **sklearn** (paper §4.1) — EnvAware is "implemented by using sklearn
//!   module in Python": a linear-kernel SVM chosen over decision-tree and
//!   random-forest classifiers. [`svm`], [`tree`], and [`forest`] provide
//!   those three classifiers; [`metrics`] provides the precision/recall
//!   machinery behind the paper's 94.7 % / 94.5 % claim.
//! * **SWIX** (paper §7.1) — the iOS numeric library used "for the
//!   regression and machine learning classifier". [`matrix`] provides the
//!   dense linear algebra (Gaussian elimination, Cholesky, least squares)
//!   that the elliptical regression of §5 is built on.
//!
//! Everything is deterministic given a seed; no SIMD, no unsafe, sizes are
//! tiny (9-dimensional features, tens of regression rows).

#![warn(missing_docs)]

pub mod dataset;
pub mod forest;
pub mod matrix;
pub mod metrics;
pub mod scaler;
pub mod solver;
pub mod svm;
pub mod tree;

pub use dataset::{k_fold, Dataset};
pub use forest::{RandomForest, RandomForestConfig};
pub use matrix::Matrix;
pub use metrics::ConfusionMatrix;
pub use scaler::StandardScaler;
pub use solver::GramSolver;
pub use svm::{LinearSvm, MultiClassSvm, SvmConfig};
pub use tree::{DecisionTree, TreeConfig};

/// A trained multi-class classifier: features in, label out.
pub trait Classifier {
    /// Predicts a class label for one feature vector.
    fn predict(&self, features: &[f64]) -> usize;

    /// Predicts labels for a batch of feature vectors.
    fn predict_batch(&self, features: &[Vec<f64>]) -> Vec<usize> {
        features.iter().map(|f| self.predict(f)).collect()
    }
}
