//! Dense matrices, linear solves, and least squares.
//!
//! The elliptical regression of paper §5 is solved by ordinary least
//! squares, `P = (XᵀX)⁻¹ Xᵀ Y` (paper Eq. 4). Problem sizes are tiny
//! (≤ ~6 parameters, tens of rows), so a straightforward row-major dense
//! matrix with partial-pivot Gaussian elimination is both adequate and
//! easy to audit. A small ridge term is available for the near-singular
//! design matrices produced by degenerate walks (e.g. a perfectly straight
//! line with no second leg).

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    /// Panics when rows have unequal lengths or the input is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// Solves `self · x = b` by Gaussian elimination with partial
    /// pivoting. Returns `None` for singular (or numerically singular)
    /// systems.
    ///
    /// # Panics
    /// Panics when `self` is not square or `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        // Augmented working copy.
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for r in col + 1..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if pivot != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot * n + j);
                }
                x.swap(col, pivot);
            }
            // Eliminate below.
            let d = a[col * n + col];
            for r in col + 1..n {
                let f = a[r * n + col] / d;
                if f == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= f * a[col * n + j];
                }
                x[r] -= f * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut s = x[col];
            for j in col + 1..n {
                s -= a[col * n + j] * x[j];
            }
            x[col] = s / a[col * n + col];
        }
        Some(x)
    }

    /// Ordinary least squares: finds `θ` minimizing `‖X·θ − y‖²` where
    /// `X = self`, via the normal equations `(XᵀX + λI)θ = Xᵀy`. `ridge`
    /// (λ ≥ 0) regularizes near-singular designs; pass 0 for pure OLS.
    /// Returns `None` when the normal matrix is singular.
    ///
    /// # Panics
    /// Panics when `y.len() != rows` or `ridge < 0`.
    pub fn least_squares(&self, y: &[f64], ridge: f64) -> Option<Vec<f64>> {
        assert_eq!(y.len(), self.rows, "target length mismatch");
        assert!(ridge >= 0.0, "ridge must be non-negative");
        let xt = self.transpose();
        let mut xtx = xt.matmul(self);
        for i in 0..xtx.rows {
            xtx[(i, i)] += ridge;
        }
        let xty = xt.matvec(y);
        xtx.solve(&xty)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let i = Matrix::identity(3);
        let x = i.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x − y = 1  →  x = 2, y = 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let x = a.solve(&[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the initial diagonal forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[7.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn singular_system_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn transpose_and_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let at = a.transpose();
        assert_eq!(at.rows(), 3);
        assert_eq!(at.cols(), 2);
        let p = a.matmul(&at); // 2×2
        assert!((p[(0, 0)] - 14.0).abs() < 1e-12);
        assert!((p[(0, 1)] - 32.0).abs() < 1e-12);
        assert!((p[(1, 1)] - 77.0).abs() < 1e-12);
        assert_eq!(p[(0, 1)], p[(1, 0)]);
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn least_squares_recovers_exact_line() {
        // y = 3x + 2 fit with design [x, 1].
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let design = Matrix::from_rows(&xs.iter().map(|&x| vec![x, 1.0]).collect::<Vec<_>>());
        let y: Vec<f64> = xs.iter().map(|&x| 3.0 * x + 2.0).collect();
        let theta = design.least_squares(&y, 0.0).unwrap();
        assert!((theta[0] - 3.0).abs() < 1e-9);
        assert!((theta[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_minimizes_residual_under_noise() {
        // Deterministic "noise": alternating ±0.5 cancels in the normal
        // equations for symmetric designs.
        let xs: Vec<f64> = (0..20).map(|i| i as f64 / 2.0).collect();
        let design = Matrix::from_rows(&xs.iter().map(|&x| vec![x, 1.0]).collect::<Vec<_>>());
        let y: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 1.5 * x - 4.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let theta = design.least_squares(&y, 0.0).unwrap();
        assert!((theta[0] - 1.5).abs() < 0.05, "slope {}", theta[0]);
        assert!((theta[1] + 4.0).abs() < 0.3, "intercept {}", theta[1]);
    }

    #[test]
    fn ridge_rescues_singular_design() {
        // Duplicated column: OLS normal matrix is singular, ridge is not.
        let design = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let y = [2.0, 4.0, 6.0];
        assert!(design.least_squares(&y, 0.0).is_none());
        let theta = design.least_squares(&y, 1e-6).unwrap();
        // Ridge splits the weight across the duplicated columns.
        assert!((theta[0] + theta[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_rows_rejects_ragged_input() {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn solve_rejects_non_square() {
        Matrix::zeros(2, 3).solve(&[1.0, 2.0]);
    }
}
