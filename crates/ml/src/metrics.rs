//! Classification metrics: confusion matrix, precision, recall.
//!
//! The paper reports EnvAware at "94.7 % precision and 94.5 % recall for
//! our three-type classification" (§4.1) — macro-averaged over the three
//! environment classes, which is what [`ConfusionMatrix::macro_precision`]
//! and [`ConfusionMatrix::macro_recall`] compute.

/// A `k × k` confusion matrix; entry `(actual, predicted)` counts samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel label slices.
    ///
    /// # Panics
    /// Panics on length mismatch, empty input, or labels ≥ `num_classes`.
    pub fn from_labels(actual: &[usize], predicted: &[usize], num_classes: usize) -> Self {
        assert_eq!(actual.len(), predicted.len(), "label slices must match");
        assert!(!actual.is_empty(), "no samples");
        let mut counts = vec![0usize; num_classes * num_classes];
        for (&a, &p) in actual.iter().zip(predicted) {
            assert!(a < num_classes && p < num_classes, "label out of range");
            counts[a * num_classes + p] += 1;
        }
        ConfusionMatrix {
            k: num_classes,
            counts,
        }
    }

    /// Count of samples with `actual` class and `predicted` class.
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual * self.k + predicted]
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.k).map(|c| self.count(c, c)).sum();
        correct as f64 / self.total() as f64
    }

    /// Precision of one class: TP / (TP + FP). Returns 0 when the class
    /// was never predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.count(class, class);
        let predicted: usize = (0..self.k).map(|a| self.count(a, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall of one class: TP / (TP + FN). Returns 0 when the class has
    /// no actual samples.
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.count(class, class);
        let actual: usize = (0..self.k).map(|p| self.count(class, p)).sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// Macro-averaged precision (unweighted mean over classes).
    pub fn macro_precision(&self) -> f64 {
        (0..self.k).map(|c| self.precision(c)).sum::<f64>() / self.k as f64
    }

    /// Macro-averaged recall.
    pub fn macro_recall(&self) -> f64 {
        (0..self.k).map(|c| self.recall(c)).sum::<f64>() / self.k as f64
    }

    /// F1 score of one class (harmonic mean of precision and recall).
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "actual \\ predicted")?;
        for a in 0..self.k {
            for p in 0..self.k {
                write!(f, "{:>6}", self.count(a, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let labels = [0, 1, 2, 0, 1, 2];
        let cm = ConfusionMatrix::from_labels(&labels, &labels, 3);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_precision(), 1.0);
        assert_eq!(cm.macro_recall(), 1.0);
        assert_eq!(cm.f1(0), 1.0);
    }

    #[test]
    fn known_binary_case() {
        // actual:    1 1 1 1 0 0 0 0
        // predicted: 1 1 1 0 0 0 0 1
        let actual = [1, 1, 1, 1, 0, 0, 0, 0];
        let predicted = [1, 1, 1, 0, 0, 0, 0, 1];
        let cm = ConfusionMatrix::from_labels(&actual, &predicted, 2);
        // Class 1: TP=3, FP=1, FN=1.
        assert!((cm.precision(1) - 0.75).abs() < 1e-12);
        assert!((cm.recall(1) - 0.75).abs() < 1e-12);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        assert!((cm.f1(1) - 0.75).abs() < 1e-12);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.total(), 8);
    }

    #[test]
    fn never_predicted_class_has_zero_precision() {
        let actual = [0, 1, 0, 1];
        let predicted = [0, 0, 0, 0];
        let cm = ConfusionMatrix::from_labels(&actual, &predicted, 2);
        assert_eq!(cm.precision(1), 0.0);
        assert_eq!(cm.recall(1), 0.0);
        assert_eq!(cm.f1(1), 0.0);
    }

    #[test]
    fn macro_averages_are_class_means() {
        let actual = [0, 0, 1, 1, 2, 2];
        let predicted = [0, 0, 1, 0, 2, 1];
        let cm = ConfusionMatrix::from_labels(&actual, &predicted, 3);
        let mp = (cm.precision(0) + cm.precision(1) + cm.precision(2)) / 3.0;
        assert!((cm.macro_precision() - mp).abs() < 1e-12);
        let mr = (cm.recall(0) + cm.recall(1) + cm.recall(2)) / 3.0;
        assert!((cm.macro_recall() - mr).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_label() {
        ConfusionMatrix::from_labels(&[0, 3], &[0, 1], 3);
    }
}
