//! Feature standardization.
//!
//! Paper §4.1: "our feature vector is composed of the **standardized** 9
//! values" — the classifier sees z-scores, with means and standard
//! deviations estimated on the training set and reused at inference time
//! (the usual sklearn `StandardScaler` semantics).

/// Per-feature z-score scaler.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Fits means and standard deviations on the given samples.
    ///
    /// # Panics
    /// Panics on an empty sample set or ragged feature vectors.
    pub fn fit(samples: &[Vec<f64>]) -> StandardScaler {
        assert!(!samples.is_empty(), "cannot fit scaler on empty data");
        let dim = samples[0].len();
        let n = samples.len() as f64;
        let mut mean = vec![0.0; dim];
        for s in samples {
            assert_eq!(s.len(), dim, "ragged feature vectors");
            for (m, &x) in mean.iter_mut().zip(s) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; dim];
        for s in samples {
            for ((v, &x), &m) in var.iter_mut().zip(s).zip(&mean) {
                *v += (x - m) * (x - m);
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let sd = (v / n).sqrt();
                if sd < 1e-12 {
                    1.0 // constant feature: leave centered values at 0
                } else {
                    sd
                }
            })
            .collect();
        StandardScaler { mean, std }
    }

    /// Transforms one feature vector to z-scores.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn transform(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), self.mean.len(), "dimension mismatch");
        features
            .iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(&x, (&m, &s))| (x - m) / s)
            .collect()
    }

    /// Transforms a batch.
    pub fn transform_batch(&self, samples: &[Vec<f64>]) -> Vec<Vec<f64>> {
        samples.iter().map(|s| self.transform(s)).collect()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformed_training_data_is_standardized() {
        let data = vec![
            vec![1.0, 100.0],
            vec![2.0, 200.0],
            vec![3.0, 300.0],
            vec![4.0, 400.0],
        ];
        let scaler = StandardScaler::fit(&data);
        let z = scaler.transform_batch(&data);
        for j in 0..2 {
            let mean: f64 = z.iter().map(|r| r[j]).sum::<f64>() / 4.0;
            let var: f64 = z.iter().map(|r| r[j] * r[j]).sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let data = vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let scaler = StandardScaler::fit(&data);
        let z = scaler.transform(&[5.0, 2.0]);
        assert_eq!(z[0], 0.0);
        assert_eq!(z[1], 0.0);
    }

    #[test]
    fn transform_applies_training_statistics_to_new_data() {
        let data = vec![vec![0.0], vec![2.0]]; // mean 1, sd 1
        let scaler = StandardScaler::fit(&data);
        assert!((scaler.transform(&[3.0])[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn fit_rejects_empty() {
        StandardScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn transform_rejects_wrong_dim() {
        let scaler = StandardScaler::fit(&[vec![1.0, 2.0]]);
        scaler.transform(&[1.0]);
    }
}
