//! Cached normal-equation solver for repeated least squares against one
//! design matrix.
//!
//! The exponent search of paper Eq. 5 solves the *same* linear system
//! dozens of times per refit with only the right-hand side changing: the
//! design matrix (and hence the ridge-regularized Gram matrix `XᵀX`)
//! depends only on walk geometry, while each candidate exponent changes
//! only `ρ`. [`GramSolver`] exploits that structure: rows are accumulated
//! directly into a `K×K` Gram matrix (no row storage, no per-row
//! allocation), the matrix is factorized once, and every subsequent
//! [`solve`](GramSolver::solve) costs one forward/backward substitution
//! — `O(K²)` instead of `O(rows·K²) + O(K³)`.
//!
//! The elimination replicates [`Matrix::solve`](crate::Matrix::solve)
//! operation for operation (same partial pivoting, same `1e-12`
//! singularity threshold, same multiplier arithmetic), so for identical
//! inputs the solutions are identical down to the bit pattern — the
//! property the estimator's differential suites lean on.

/// Accumulating `(XᵀX + λI) θ = Xᵀy` solver with a cached factorization.
///
/// Usage: [`accumulate`](Self::accumulate) each design row (possibly
/// incrementally, across batches), [`factorize`](Self::factorize) once
/// per right-hand-side family, then [`solve`](Self::solve) as many times
/// as needed. Accumulation is strictly sequential, so extending an
/// existing accumulation with new rows produces the same Gram matrix —
/// bit for bit — as re-accumulating everything from scratch.
#[derive(Debug, Clone)]
pub struct GramSolver<const K: usize> {
    /// Accumulated `XᵀX`, upper triangle only (the matrix is symmetric;
    /// the lower triangle is filled in at factorize time).
    gram: [[f64; K]; K],
    /// Rows accumulated so far.
    rows: usize,
    /// LU factors of `gram + ridge·I`: upper triangle + diagonal hold
    /// `U`, strict lower triangle holds the elimination multipliers.
    lu: [[f64; K]; K],
    /// Pivot row chosen at each elimination column.
    pivots: [usize; K],
    /// Whether `lu` is valid (factorization succeeded).
    factorized: bool,
    /// Whether `gram` changed since the last factorization.
    dirty: bool,
    /// Ridge used by the cached factorization.
    ridge: f64,
}

impl<const K: usize> Default for GramSolver<K> {
    fn default() -> Self {
        GramSolver::new()
    }
}

impl<const K: usize> GramSolver<K> {
    /// Singularity threshold, identical to `Matrix::solve`.
    const PIVOT_EPS: f64 = 1e-12;

    /// An empty solver (no rows accumulated).
    pub fn new() -> GramSolver<K> {
        GramSolver {
            gram: [[0.0; K]; K],
            rows: 0,
            lu: [[0.0; K]; K],
            pivots: [0; K],
            factorized: false,
            dirty: true,
            ridge: f64::NAN,
        }
    }

    /// Discards all accumulated rows and the cached factorization.
    pub fn reset(&mut self) {
        self.gram = [[0.0; K]; K];
        self.rows = 0;
        self.factorized = false;
        self.dirty = true;
        self.ridge = f64::NAN;
    }

    /// Number of design rows accumulated.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Adds one design row: `gram += row·rowᵀ`. Invalidates the cached
    /// factorization.
    ///
    /// Only the upper triangle is maintained — `gram[j][i]` would
    /// accumulate exactly the values `gram[i][j]` does (IEEE
    /// multiplication is commutative and the row order is unchanged), so
    /// the mirror is materialized once at factorize time instead of
    /// being recomputed per row: `K(K+1)/2` multiply-adds per row
    /// instead of `K²`. Accumulation stays strictly row-sequential,
    /// preserving the incremental-equals-from-scratch bit-identity
    /// contract.
    pub fn accumulate(&mut self, row: &[f64; K]) {
        for i in 0..K {
            let ri = row[i];
            for (g, &rj) in self.gram[i][i..].iter_mut().zip(&row[i..]) {
                *g += ri * rj;
            }
        }
        self.rows += 1;
        self.dirty = true;
    }

    /// Factorizes `gram + ridge·I` with partial pivoting. Returns `false`
    /// when the matrix is (numerically) singular, in which case
    /// [`solve`](Self::solve) answers `None`. A repeated call with an
    /// unchanged accumulation and the same ridge reuses the cached
    /// factors.
    pub fn factorize(&mut self, ridge: f64) -> bool {
        if !self.dirty && ridge.to_bits() == self.ridge.to_bits() {
            return self.factorized;
        }
        self.dirty = false;
        self.ridge = ridge;
        self.factorized = false;
        let a = &mut self.lu;
        *a = self.gram;
        // Mirror the accumulated upper triangle into the lower one
        // (`gram` itself stays upper-triangular between factorizations).
        for i in 1..K {
            let (above, rest) = a.split_at_mut(i);
            for (j, upper_row) in above.iter().enumerate() {
                rest[0][j] = upper_row[i];
            }
        }
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += ridge;
        }
        for col in 0..K {
            // Partial pivot (same selection rule as Matrix::solve).
            let mut pivot = col;
            let mut best = a[col][col].abs();
            for (r, row) in a.iter().enumerate().skip(col + 1) {
                let v = row[col].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < Self::PIVOT_EPS {
                return false;
            }
            self.pivots[col] = pivot;
            if pivot != col {
                a.swap(col, pivot);
            }
            let (pivot_rows, below) = a.split_at_mut(col + 1);
            let pivot_row = &pivot_rows[col];
            let d = pivot_row[col];
            for row in below.iter_mut() {
                let f = row[col] / d;
                row[col] = f; // multiplier, replayed per right-hand side
                if f == 0.0 {
                    continue;
                }
                for (rj, pj) in row[col + 1..].iter_mut().zip(&pivot_row[col + 1..]) {
                    *rj -= f * pj;
                }
            }
        }
        self.factorized = true;
        true
    }

    /// Solves `(gram + ridge·I) θ = rhs` using the cached factorization.
    /// Returns `None` when [`factorize`](Self::factorize) has not
    /// succeeded since the last accumulation.
    pub fn solve(&self, mut rhs: [f64; K]) -> Option<[f64; K]> {
        if !self.factorized || self.dirty {
            return None;
        }
        // Replay the factorization on the rhs. Row swaps are applied
        // up-front (the factorization swaps whole rows, multipliers
        // included, so the stored `L` is expressed in final row order);
        // the forward substitution then performs the exact scalar
        // operations Matrix::solve applies in-line, giving bit-identical
        // solutions.
        for col in 0..K {
            rhs.swap(col, self.pivots[col]);
        }
        for col in 0..K {
            for r in col + 1..K {
                let f = self.lu[r][col];
                if f == 0.0 {
                    continue;
                }
                rhs[r] -= f * rhs[col];
            }
        }
        for col in (0..K).rev() {
            let mut s = rhs[col];
            for (l, r) in self.lu[col][col + 1..].iter().zip(&rhs[col + 1..]) {
                s -= l * r;
            }
            rhs[col] = s / self.lu[col][col];
        }
        Some(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    /// Deterministic pseudo-random row generator (SplitMix64-ish).
    fn rows(n: usize, seed: u64) -> Vec<[f64; 4]> {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 10.0 - 5.0
        };
        (0..n)
            .map(|_| {
                let p = next();
                let q = next();
                [p * p + q * q, p, q, 1.0]
            })
            .collect()
    }

    #[test]
    fn matches_matrix_least_squares_bitwise() {
        for seed in [1u64, 7, 42, 1234] {
            let design_rows = rows(25, seed);
            let y: Vec<f64> = design_rows
                .iter()
                .enumerate()
                .map(|(i, r)| r[1] * 0.3 - r[2] * 1.1 + 0.01 * i as f64)
                .collect();
            let matrix =
                Matrix::from_rows(&design_rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>());
            let reference = matrix.least_squares(&y, 1e-9).expect("reference solves");

            let mut solver = GramSolver::<4>::new();
            for r in &design_rows {
                solver.accumulate(r);
            }
            assert!(solver.factorize(1e-9));
            // Xᵀy accumulated in the same (row-sequential) order matvec
            // uses.
            let mut xty = [0.0; 4];
            for (r, &yi) in design_rows.iter().zip(&y) {
                for k in 0..4 {
                    xty[k] += r[k] * yi;
                }
            }
            let theta = solver.solve(xty).expect("cached solve");
            for k in 0..4 {
                assert_eq!(
                    theta[k].to_bits(),
                    reference[k].to_bits(),
                    "seed {seed} component {k}: {} vs {}",
                    theta[k],
                    reference[k]
                );
            }
        }
    }

    #[test]
    fn incremental_accumulation_is_bit_identical_to_scratch() {
        let design_rows = rows(30, 99);
        let mut incremental = GramSolver::<4>::new();
        for (cut, row) in design_rows.iter().enumerate() {
            incremental.accumulate(row);
            let mut scratch = GramSolver::<4>::new();
            for r in &design_rows[..=cut] {
                scratch.accumulate(r);
            }
            if !scratch.factorize(1e-9) {
                assert!(!incremental.factorize(1e-9));
                continue;
            }
            assert!(incremental.factorize(1e-9));
            let rhs = [1.0, -2.0, 0.5, 3.0];
            let a = incremental.solve(rhs).unwrap();
            let b = scratch.solve(rhs).unwrap();
            for k in 0..4 {
                assert_eq!(a[k].to_bits(), b[k].to_bits(), "cut {cut} component {k}");
            }
        }
    }

    #[test]
    fn refactorize_without_new_rows_reuses_the_cache() {
        let mut solver = GramSolver::<3>::new();
        for r in rows(12, 5) {
            solver.accumulate(&[r[1], r[2], r[3]]);
        }
        assert!(solver.factorize(1e-9));
        let first = solver.solve([1.0, 2.0, 3.0]).unwrap();
        // Same ridge, no new rows: the cached LU answers again.
        assert!(solver.factorize(1e-9));
        let second = solver.solve([1.0, 2.0, 3.0]).unwrap();
        for k in 0..3 {
            assert_eq!(first[k].to_bits(), second[k].to_bits());
        }
        // A different ridge forces a refactorization.
        assert!(solver.factorize(1e-6));
        let third = solver.solve([1.0, 2.0, 3.0]).unwrap();
        assert!(third.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn singular_gram_reports_failure() {
        let mut solver = GramSolver::<3>::new();
        // Rank-1 accumulation: duplicated direction, no ridge.
        for _ in 0..6 {
            solver.accumulate(&[1.0, 2.0, 3.0]);
        }
        assert!(!solver.factorize(0.0));
        assert!(solver.solve([1.0, 1.0, 1.0]).is_none());
        // The ridge rescues it, same as Matrix::least_squares.
        assert!(solver.factorize(1e-6));
        assert!(solver.solve([1.0, 1.0, 1.0]).is_some());
    }

    #[test]
    fn solve_before_factorize_is_none() {
        let mut solver = GramSolver::<2>::new();
        solver.accumulate(&[1.0, 0.0]);
        solver.accumulate(&[0.0, 1.0]);
        assert!(solver.solve([1.0, 1.0]).is_none());
        assert!(solver.factorize(0.0));
        assert_eq!(solver.solve([1.0, 1.0]), Some([1.0, 1.0]));
        // Accumulating again invalidates the factorization.
        solver.accumulate(&[1.0, 1.0]);
        assert!(solver.solve([1.0, 1.0]).is_none());
        assert_eq!(solver.rows(), 3);
        solver.reset();
        assert_eq!(solver.rows(), 0);
    }

    #[test]
    fn polynomial_gram_with_late_swaps_matches_matrix_bitwise() {
        // Vandermonde-style rows [s², s, 1] produce a Gram matrix whose
        // elimination pivots at later columns too — the case where
        // interleaving swaps with the rhs replay would go wrong.
        let design_rows: Vec<[f64; 3]> = (0..9)
            .map(|i| {
                let s = i as f64 / 3.0;
                [s * s, s, 1.0]
            })
            .collect();
        let y: Vec<f64> = (0..9).map(|i| 1.0 + 0.5 * i as f64).collect();
        let matrix = Matrix::from_rows(&design_rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>());
        let reference = matrix.least_squares(&y, 1e-9).expect("reference");
        let mut solver = GramSolver::<3>::new();
        for r in &design_rows {
            solver.accumulate(r);
        }
        assert!(solver.factorize(1e-9));
        let mut xty = [0.0; 3];
        for (r, &yi) in design_rows.iter().zip(&y) {
            for k in 0..3 {
                xty[k] += r[k] * yi;
            }
        }
        let theta = solver.solve(xty).expect("solve");
        for k in 0..3 {
            assert_eq!(theta[k].to_bits(), reference[k].to_bits(), "component {k}");
        }
    }

    #[test]
    fn pivoting_path_matches_matrix_solve() {
        // A Gram-like matrix whose first diagonal entry is tiny forces a
        // row swap; the recorded pivots must replay it on the rhs.
        let design_rows = [[1e-13f64, 1.0, 0.0], [1.0, 1e-13, 0.0], [0.0, 0.0, 1.0]];
        let matrix = Matrix::from_rows(&design_rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>());
        let y = [2.0, 3.0, 4.0];
        let reference = matrix.least_squares(&y, 0.0).expect("reference");
        let mut solver = GramSolver::<3>::new();
        for r in &design_rows {
            solver.accumulate(r);
        }
        assert!(solver.factorize(0.0));
        let mut xty = [0.0; 3];
        for (r, &yi) in design_rows.iter().zip(&y) {
            for k in 0..3 {
                xty[k] += r[k] * yi;
            }
        }
        let theta = solver.solve(xty).expect("solve");
        for k in 0..3 {
            assert_eq!(theta[k].to_bits(), reference[k].to_bits(), "component {k}");
        }
    }
}
