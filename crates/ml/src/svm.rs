//! Linear support vector machines.
//!
//! Paper §4.1: "we chose SVM with a linear kernel as our classifier since
//! it outperforms other algorithms in the ensemble". The binary SVM here
//! is trained with the Pegasos primal sub-gradient solver
//! (Shalev-Shwartz et al.) — simple, deterministic given a seed, and more
//! than adequate for 9-dimensional standardized features. Multi-class is
//! one-vs-rest with margin voting, mirroring sklearn's `LinearSVC`
//! default.

use crate::dataset::Dataset;
use crate::Classifier;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Hyper-parameters for [`LinearSvm`] training.
#[derive(Debug, Clone, Copy)]
pub struct SvmConfig {
    /// Regularization strength λ (smaller = wider margin tolerance).
    pub lambda: f64,
    /// Number of Pegasos iterations.
    pub iterations: usize,
    /// RNG seed for sample selection.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            lambda: 3e-4,
            iterations: 60_000,
            seed: 0xB1E,
        }
    }
}

/// A trained binary linear SVM: `sign(w·x + b)`.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Weight vector.
    pub weights: Vec<f64>,
    /// Bias term.
    pub bias: f64,
}

impl LinearSvm {
    /// Trains on `features` with ±1 `targets` using Pegasos.
    ///
    /// # Panics
    /// Panics when inputs are empty, lengths mismatch, or a target is not
    /// ±1.
    pub fn train(features: &[Vec<f64>], targets: &[f64], config: &SvmConfig) -> LinearSvm {
        assert!(!features.is_empty(), "cannot train on empty data");
        assert_eq!(
            features.len(),
            targets.len(),
            "feature/target length mismatch"
        );
        assert!(
            targets.iter().all(|&y| y == 1.0 || y == -1.0),
            "targets must be +1 or -1"
        );
        let dim = features[0].len();
        let n = features.len();
        let mut w = vec![0.0; dim];
        let mut b = 0.0;
        let mut rng = StdRng::seed_from_u64(config.seed);

        for t in 1..=config.iterations {
            let i = rng.random_range(0..n);
            let x = &features[i];
            let y = targets[i];
            let eta = 1.0 / (config.lambda * t as f64);
            let margin = y * (dot(&w, x) + b);
            // Sub-gradient step on the hinge loss + L2 penalty.
            for wj in w.iter_mut() {
                *wj *= 1.0 - eta * config.lambda;
            }
            if margin < 1.0 {
                for (wj, &xj) in w.iter_mut().zip(x) {
                    *wj += eta * y * xj;
                }
                b += eta * y;
            }
            // Pegasos projection onto the ‖w‖ ≤ 1/√λ ball.
            let norm = dot(&w, &w).sqrt();
            let cap = 1.0 / config.lambda.sqrt();
            if norm > cap {
                let scale = cap / norm;
                for wj in w.iter_mut() {
                    *wj *= scale;
                }
            }
        }
        LinearSvm {
            weights: w,
            bias: b,
        }
    }

    /// Signed decision value `w·x + b` (positive ⇒ class +1).
    pub fn decision(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.weights.len(), "dimension mismatch");
        dot(&self.weights, features) + self.bias
    }

    /// Predicted ±1 label.
    pub fn predict(&self, features: &[f64]) -> f64 {
        if self.decision(features) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// One-vs-rest multi-class linear SVM.
#[derive(Debug, Clone)]
pub struct MultiClassSvm {
    machines: Vec<LinearSvm>,
}

impl MultiClassSvm {
    /// Trains one binary machine per class on the dataset.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn train(data: &Dataset, config: &SvmConfig) -> MultiClassSvm {
        assert!(!data.is_empty(), "cannot train on empty dataset");
        let classes = data.num_classes();
        let machines = (0..classes)
            .map(|c| {
                let targets: Vec<f64> = data
                    .labels
                    .iter()
                    .map(|&l| if l == c { 1.0 } else { -1.0 })
                    .collect();
                let cfg = SvmConfig {
                    seed: config.seed.wrapping_add(c as u64),
                    ..*config
                };
                LinearSvm::train(&data.features, &targets, &cfg)
            })
            .collect();
        MultiClassSvm { machines }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.machines.len()
    }

    /// Per-class decision values.
    pub fn decision_values(&self, features: &[f64]) -> Vec<f64> {
        self.machines.iter().map(|m| m.decision(features)).collect()
    }
}

impl Classifier for MultiClassSvm {
    fn predict(&self, features: &[f64]) -> usize {
        self.decision_values(features)
            .into_iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
            .expect("at least one class")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable_2d() -> (Vec<Vec<f64>>, Vec<f64>) {
        // Class +1 around (2,2), class −1 around (−2,−2).
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            let dx = (i % 5) as f64 * 0.1;
            let dy = (i % 3) as f64 * 0.1;
            xs.push(vec![2.0 + dx, 2.0 + dy]);
            ys.push(1.0);
            xs.push(vec![-2.0 - dx, -2.0 - dy]);
            ys.push(-1.0);
        }
        (xs, ys)
    }

    #[test]
    fn separable_data_is_classified_perfectly() {
        let (xs, ys) = separable_2d();
        let svm = LinearSvm::train(&xs, &ys, &SvmConfig::default());
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(svm.predict(x), y, "misclassified {x:?}");
        }
    }

    #[test]
    fn decision_margin_sign_and_scale() {
        let (xs, ys) = separable_2d();
        let svm = LinearSvm::train(&xs, &ys, &SvmConfig::default());
        assert!(svm.decision(&[3.0, 3.0]) > 0.0);
        assert!(svm.decision(&[-3.0, -3.0]) < 0.0);
        // Points farther from the boundary get larger margins.
        assert!(svm.decision(&[5.0, 5.0]) > svm.decision(&[1.0, 1.0]));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (xs, ys) = separable_2d();
        let a = LinearSvm::train(&xs, &ys, &SvmConfig::default());
        let b = LinearSvm::train(&xs, &ys, &SvmConfig::default());
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.bias, b.bias);
    }

    #[test]
    fn multiclass_three_blobs() {
        let mut data = Dataset::new();
        let centers = [(0.0, 5.0), (5.0, -3.0), (-5.0, -3.0)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..30 {
                let dx = ((i * 7) % 10) as f64 * 0.08 - 0.4;
                let dy = ((i * 13) % 10) as f64 * 0.08 - 0.4;
                data.push(vec![cx + dx, cy + dy], c);
            }
        }
        let svm = MultiClassSvm::train(&data, &SvmConfig::default());
        assert_eq!(svm.num_classes(), 3);
        let preds = svm.predict_batch(&data.features);
        let correct = preds
            .iter()
            .zip(&data.labels)
            .filter(|(p, l)| p == l)
            .count();
        assert_eq!(correct, data.len(), "blobs should be perfectly separable");
    }

    #[test]
    fn non_finite_features_still_pick_some_class() {
        // NaN features make every decision value NaN; the one-vs-rest
        // argmax used to `partial_cmp(..).expect(..)` and panic. With
        // total_cmp it degrades to an arbitrary (but valid) class.
        let mut data = Dataset::new();
        for i in 0..10 {
            let j = (i % 3) as f64 * 0.1;
            data.push(vec![2.0 + j, 2.0], 0);
            data.push(vec![-2.0 - j, -2.0], 1);
        }
        let svm = MultiClassSvm::train(
            &data,
            &SvmConfig {
                iterations: 2_000,
                ..SvmConfig::default()
            },
        );
        let p = svm.predict(&[f64::NAN, f64::NAN]);
        assert!(p < svm.num_classes());
    }

    #[test]
    #[should_panic(expected = "+1 or -1")]
    fn rejects_bad_targets() {
        LinearSvm::train(&[vec![1.0]], &[2.0], &SvmConfig::default());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_training_set() {
        LinearSvm::train(&[], &[], &SvmConfig::default());
    }
}
