//! CART decision-tree classifier.
//!
//! One of the classifiers in the paper's §4.1 ensemble ("SVM with various
//! kernels, DecisionTree Classifier, RandomForest Classifier, etc.") that
//! the linear SVM was chosen over. Standard CART: greedy binary splits
//! minimizing Gini impurity, depth- and size-limited.

use crate::dataset::Dataset;
use crate::Classifier;

/// Hyper-parameters for [`DecisionTree`].
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node further.
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 10,
            min_samples_split: 4,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        label: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A trained decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    num_classes: usize,
}

impl DecisionTree {
    /// Trains a tree on the dataset. Optionally restricts candidate split
    /// features to `feature_subset` (used by the random forest).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn train(data: &Dataset, config: &TreeConfig) -> DecisionTree {
        Self::train_with_features(data, config, None)
    }

    /// Trains a tree considering only the features in `feature_subset`
    /// (all features when `None`).
    pub fn train_with_features(
        data: &Dataset,
        config: &TreeConfig,
        feature_subset: Option<&[usize]>,
    ) -> DecisionTree {
        assert!(!data.is_empty(), "cannot train on empty dataset");
        let idx: Vec<usize> = (0..data.len()).collect();
        let num_classes = data.num_classes();
        let all_features: Vec<usize> = (0..data.dim()).collect();
        let features = feature_subset.unwrap_or(&all_features);
        let root = build(data, &idx, features, config, 0, num_classes);
        DecisionTree { root, num_classes }
    }

    /// Number of classes seen at training time.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Tree depth (leaf-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }
}

impl Classifier for DecisionTree {
    fn predict(&self, features: &[f64]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label } => return *label,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

fn majority(data: &Dataset, idx: &[usize], num_classes: usize) -> usize {
    let mut counts = vec![0usize; num_classes.max(1)];
    for &i in idx {
        counts[data.labels[i]] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(l, _)| l)
        .unwrap_or(0)
}

fn build(
    data: &Dataset,
    idx: &[usize],
    features: &[usize],
    config: &TreeConfig,
    depth: usize,
    num_classes: usize,
) -> Node {
    let label = majority(data, idx, num_classes);
    // Stopping conditions.
    if depth >= config.max_depth || idx.len() < config.min_samples_split {
        return Node::Leaf { label };
    }
    let first_label = data.labels[idx[0]];
    if idx.iter().all(|&i| data.labels[i] == first_label) {
        return Node::Leaf { label: first_label };
    }

    // Greedy best split by weighted child impurity. Note: no minimum-gain
    // stop — XOR-like structure has zero first-split gain yet separates
    // perfectly one level deeper; termination is guaranteed because every
    // accepted split strictly shrinks both children.
    let mut best: Option<(f64, usize, f64)> = None; // (impurity, feature, threshold)
    for &f in features {
        // Candidate thresholds: midpoints between consecutive distinct
        // sorted values.
        let mut vals: Vec<f64> = idx.iter().map(|&i| data.features[i][f]).collect();
        vals.sort_by(|a, b| a.total_cmp(b));
        vals.dedup();
        for w in vals.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let mut lc = vec![0usize; num_classes];
            let mut rc = vec![0usize; num_classes];
            for &i in idx {
                if data.features[i][f] <= threshold {
                    lc[data.labels[i]] += 1;
                } else {
                    rc[data.labels[i]] += 1;
                }
            }
            let ln: usize = lc.iter().sum();
            let rn: usize = rc.iter().sum();
            if ln == 0 || rn == 0 {
                continue;
            }
            let weighted =
                (ln as f64 * gini(&lc, ln) + rn as f64 * gini(&rc, rn)) / idx.len() as f64;
            if best.is_none_or(|(b, _, _)| weighted < b) {
                best = Some((weighted, f, threshold));
            }
        }
    }

    let Some((_, feature, threshold)) = best else {
        return Node::Leaf { label };
    };

    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
        .iter()
        .partition(|&&i| data.features[i][feature] <= threshold);
    Node::Split {
        feature,
        threshold,
        left: Box::new(build(
            data,
            &left_idx,
            features,
            config,
            depth + 1,
            num_classes,
        )),
        right: Box::new(build(
            data,
            &right_idx,
            features,
            config,
            depth + 1,
            num_classes,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset() -> Dataset {
        // XOR is not linearly separable but trivially tree-separable.
        let mut d = Dataset::new();
        for i in 0..10 {
            let j = i as f64 * 0.01;
            d.push(vec![0.0 + j, 0.0 + j], 0);
            d.push(vec![1.0 + j, 1.0 + j], 0);
            d.push(vec![0.0 + j, 1.0 + j], 1);
            d.push(vec![1.0 + j, 0.0 + j], 1);
        }
        d
    }

    #[test]
    fn learns_xor() {
        let d = xor_dataset();
        let tree = DecisionTree::train(
            &d,
            &TreeConfig {
                max_depth: 10,
                min_samples_split: 2,
            },
        );
        let preds = tree.predict_batch(&d.features);
        let correct = preds.iter().zip(&d.labels).filter(|(p, l)| p == l).count();
        assert_eq!(correct, d.len());
    }

    #[test]
    fn pure_dataset_is_a_leaf() {
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push(vec![i as f64], 0);
        }
        let tree = DecisionTree::train(&d, &TreeConfig::default());
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict(&[100.0]), 0);
    }

    #[test]
    fn depth_limit_respected() {
        let d = xor_dataset();
        let tree = DecisionTree::train(
            &d,
            &TreeConfig {
                max_depth: 1,
                min_samples_split: 2,
            },
        );
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn simple_threshold_split() {
        let mut d = Dataset::new();
        for i in 0..20 {
            d.push(vec![i as f64], usize::from(i >= 10));
        }
        let tree = DecisionTree::train(&d, &TreeConfig::default());
        assert_eq!(tree.predict(&[3.0]), 0);
        assert_eq!(tree.predict(&[15.0]), 1);
        assert_eq!(tree.predict(&[9.4]), 0);
    }

    #[test]
    fn non_finite_feature_values_do_not_panic_training() {
        // A NaN feature used to panic the candidate-threshold sort. With
        // total_cmp the NaN sorts last, its midpoint thresholds produce
        // empty left children and are skipped, and the finite structure
        // is still learned.
        let mut d = Dataset::new();
        for i in 0..20 {
            d.push(vec![i as f64], usize::from(i >= 10));
        }
        d.push(vec![f64::NAN], 0);
        let tree = DecisionTree::train(&d, &TreeConfig::default());
        assert_eq!(tree.predict(&[3.0]), 0);
        assert_eq!(tree.predict(&[15.0]), 1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_dataset() {
        DecisionTree::train(&Dataset::new(), &TreeConfig::default());
    }
}
