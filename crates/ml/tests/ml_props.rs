//! Property tests for the ML substrate: linear-algebra correctness and
//! classifier sanity on arbitrary inputs.

use locble_ml::{Classifier, ConfusionMatrix, Dataset, Matrix, StandardScaler};
use proptest::prelude::*;

proptest! {
    /// `solve` actually solves: A·x = b within numerical tolerance, for
    /// diagonally dominant (hence nonsingular, well-conditioned) systems.
    #[test]
    fn solve_satisfies_system(
        rows in prop::collection::vec(prop::collection::vec(-1.0..1.0f64, 4), 4),
        b in prop::collection::vec(-10.0..10.0f64, 4),
    ) {
        let mut a = Matrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                a[(i, j)] = rows[i][j];
            }
            a[(i, i)] += 5.0; // diagonal dominance
        }
        let x = a.solve(&b).expect("nonsingular");
        let back = a.matvec(&x);
        for (got, want) in back.iter().zip(&b) {
            prop_assert!((got - want).abs() < 1e-6, "A·x = {got} vs b = {want}");
        }
    }

    /// Least squares beats any perturbation of its own solution.
    #[test]
    fn least_squares_is_optimal(
        xs in prop::collection::vec(-5.0..5.0f64, 8..20),
        slope in -3.0..3.0f64,
        intercept in -5.0..5.0f64,
        noise_scale in 0.0..1.0f64,
        delta0 in -0.5..0.5f64,
        delta1 in -0.5..0.5f64,
    ) {
        prop_assume!(delta0.abs() + delta1.abs() > 1e-3);
        // Spread in x is needed for a well-posed fit.
        let spread = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1.0);
        let design = Matrix::from_rows(
            &xs.iter().map(|&x| vec![x, 1.0]).collect::<Vec<_>>(),
        );
        let y: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| slope * x + intercept + noise_scale * ((i % 3) as f64 - 1.0))
            .collect();
        let theta = design.least_squares(&y, 0.0).expect("solvable");
        let loss = |t: &[f64]| -> f64 {
            xs.iter()
                .zip(&y)
                .map(|(&x, &yy)| {
                    let p = t[0] * x + t[1];
                    (p - yy) * (p - yy)
                })
                .sum()
        };
        let perturbed = [theta[0] + delta0, theta[1] + delta1];
        prop_assert!(loss(&theta) <= loss(&perturbed) + 1e-9);
    }

    /// Scaler transform of training data has zero mean per feature.
    #[test]
    fn scaler_centers_training_data(
        data in prop::collection::vec(prop::collection::vec(-100.0..100.0f64, 3), 2..30),
    ) {
        let scaler = StandardScaler::fit(&data);
        let z = scaler.transform_batch(&data);
        for j in 0..3 {
            let mean: f64 = z.iter().map(|r| r[j]).sum::<f64>() / z.len() as f64;
            prop_assert!(mean.abs() < 1e-9, "feature {j} mean {mean}");
        }
    }

    /// Confusion-matrix identities: totals, accuracy bounds, and the
    /// equality of micro-averaged precision/recall with accuracy.
    #[test]
    fn confusion_matrix_identities(
        labels in prop::collection::vec(0usize..3, 1..50),
        preds_seed in prop::collection::vec(0usize..3, 1..50),
    ) {
        let preds: Vec<usize> =
            (0..labels.len()).map(|i| preds_seed[i % preds_seed.len()]).collect();
        let cm = ConfusionMatrix::from_labels(&labels, &preds, 3);
        prop_assert_eq!(cm.total(), labels.len());
        let acc = cm.accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
        for c in 0..3 {
            prop_assert!((0.0..=1.0).contains(&cm.precision(c)));
            prop_assert!((0.0..=1.0).contains(&cm.recall(c)));
            prop_assert!((0.0..=1.0).contains(&cm.f1(c)));
        }
    }

    /// Decision trees perfectly memorize distinct training points when
    /// unconstrained (depth and purity allow).
    #[test]
    fn tree_memorizes_distinct_points(
        points in prop::collection::btree_set((0i32..30, 0i32..30), 4..25),
    ) {
        let mut data = Dataset::new();
        for (k, &(x, y)) in points.iter().enumerate() {
            data.push(vec![x as f64, y as f64], k % 3);
        }
        let tree = locble_ml::DecisionTree::train(
            &data,
            &locble_ml::TreeConfig { max_depth: 30, min_samples_split: 2 },
        );
        let preds = tree.predict_batch(&data.features);
        for (p, l) in preds.iter().zip(&data.labels) {
            prop_assert_eq!(p, l);
        }
    }
}
