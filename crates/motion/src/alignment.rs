//! Phone-to-earth coordinate alignment.
//!
//! The phone's posture is unknown and arbitrary. Gravity, however, is the
//! dominant component of the accelerometer signal, so its direction in
//! the *phone* frame can be estimated as the normalized long-term mean of
//! the accelerometer — after which the vertical acceleration (what the
//! step counter needs) and the vertical turn rate (what the turn detector
//! needs) fall out as projections onto that axis. This is the "well-known
//! coordinate alignment" of paper §5.2 in its minimal, posture-agnostic
//! form.

use locble_sensors::{ImuSample, GRAVITY};

/// Earth-frame signals recovered from phone-frame IMU data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlignedImu {
    /// Sample times, seconds.
    pub t: Vec<f64>,
    /// Vertical acceleration with gravity removed, m/s² (positive up).
    pub vertical_accel: Vec<f64>,
    /// Rotation rate about the vertical axis, rad/s (counter-clockwise
    /// positive, i.e. left turns are positive).
    pub turn_rate: Vec<f64>,
    /// Magnetic heading per sample, radians.
    pub mag_heading: Vec<f64>,
    /// Estimated gravity direction in the phone frame (unit vector).
    pub gravity_dir: [f64; 3],
}

impl AlignedImu {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Mean sample rate, Hz (0 with < 2 samples).
    pub fn sample_rate(&self) -> f64 {
        if self.t.len() < 2 {
            return 0.0;
        }
        let span = self.t[self.t.len() - 1] - self.t[0];
        if span <= 0.0 {
            0.0
        } else {
            (self.t.len() - 1) as f64 / span
        }
    }
}

/// Aligns a phone-frame IMU stream to the earth frame.
///
/// Returns an empty result for an empty input.
pub fn align(imu: &[ImuSample]) -> AlignedImu {
    if imu.is_empty() {
        return AlignedImu::default();
    }
    // Gravity direction: normalized mean accelerometer vector. Walking
    // dynamics are zero-mean over a trace, so the mean is dominated by
    // gravity.
    let n = imu.len() as f64;
    let mut g = [0.0f64; 3];
    for s in imu {
        for (k, acc) in g.iter_mut().enumerate() {
            *acc += s.accel[k] / n;
        }
    }
    let norm = (g[0] * g[0] + g[1] * g[1] + g[2] * g[2]).sqrt();
    let g_dir = if norm < 1e-9 {
        [0.0, 0.0, 1.0] // degenerate: assume flat
    } else {
        [g[0] / norm, g[1] / norm, g[2] / norm]
    };

    let dot = |a: &[f64; 3], b: &[f64; 3]| a[0] * b[0] + a[1] * b[1] + a[2] * b[2];

    let mut out = AlignedImu {
        t: Vec::with_capacity(imu.len()),
        vertical_accel: Vec::with_capacity(imu.len()),
        turn_rate: Vec::with_capacity(imu.len()),
        mag_heading: Vec::with_capacity(imu.len()),
        gravity_dir: g_dir,
    };
    for s in imu {
        out.t.push(s.t);
        out.vertical_accel.push(dot(&s.accel, &g_dir) - GRAVITY);
        out.turn_rate.push(dot(&s.gyro, &g_dir));
        out.mag_heading.push(s.mag_heading);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use locble_geom::Pose2;
    use locble_sensors::{simulate_walk, GaitConfig, WalkPlan};

    fn walk() -> Vec<ImuSample> {
        let plan = WalkPlan::l_shape(Pose2::IDENTITY, 4.0, 3.0);
        simulate_walk(&plan, &GaitConfig::default(), 11).imu
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let a = align(&[]);
        assert!(a.is_empty());
        assert_eq!(a.sample_rate(), 0.0);
    }

    #[test]
    fn vertical_accel_is_zero_mean_and_oscillating() {
        let a = align(&walk());
        let mean: f64 = a.vertical_accel.iter().sum::<f64>() / a.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        let max = a.vertical_accel.iter().cloned().fold(0.0, f64::max);
        assert!(max > 1.0, "step bursts should exceed 1 m/s², max {max}");
    }

    #[test]
    fn turn_rate_integrates_to_90_degrees() {
        let imu = walk();
        let a = align(&imu);
        let dt = 1.0 / 50.0;
        let total: f64 = a.turn_rate.iter().map(|r| r * dt).sum();
        assert!(
            (total - std::f64::consts::FRAC_PI_2).abs() < 0.1,
            "integrated turn {total:.3} rad"
        );
    }

    #[test]
    fn alignment_is_posture_invariant() {
        // The same walk with two very different phone postures must give
        // nearly identical vertical/turn signals.
        let plan = WalkPlan::l_shape(Pose2::IDENTITY, 4.0, 3.0);
        let mut c1 = GaitConfig::default();
        c1.accel_noise = 0.0;
        c1.gyro_noise = 0.0;
        c1.amplitude_jitter = 0.0;
        let mut c2 = c1;
        c1.phone_ypr = [0.0, 0.0, 0.0];
        c2.phone_ypr = [1.2, -0.9, 0.6];
        let a1 = align(&simulate_walk(&plan, &c1, 5).imu);
        let a2 = align(&simulate_walk(&plan, &c2, 5).imu);
        for i in (0..a1.len()).step_by(10) {
            assert!(
                (a1.vertical_accel[i] - a2.vertical_accel[i]).abs() < 0.05,
                "sample {i}: {} vs {}",
                a1.vertical_accel[i],
                a2.vertical_accel[i]
            );
            assert!((a1.turn_rate[i] - a2.turn_rate[i]).abs() < 0.05);
        }
    }

    #[test]
    fn gravity_direction_is_unit_length() {
        let a = align(&walk());
        let g = a.gravity_dir;
        let n = (g[0] * g[0] + g[1] * g[1] + g[2] * g[2]).sqrt();
        assert!((n - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sample_rate_reported() {
        let a = align(&walk());
        assert!((a.sample_rate() - 50.0).abs() < 1.0, "{}", a.sample_rate());
    }
}
