//! Dead-reckoning: steps + turns → local-frame trajectory.
//!
//! LocBLE's estimation frame has its origin at the observer's starting
//! point and +x along the initial walking direction (paper §5). The
//! tracker therefore starts at heading 0 regardless of the magnetic
//! heading's absolute value, advances one inferred step length per
//! detected step, and rotates by each detected turn angle.
//!
//! Paper §5.2.2 also notes the measurement can "avoid the turning angle
//! measurement step by explicitly asking the user to make a right angle
//! turn" — [`TrackerConfig::snap_right_angles`] reproduces that option by
//! snapping detected turns to the nearest multiple of 90°.

use crate::alignment::align;
use crate::steps::{detect_steps, StepResult, StepsConfig};
use crate::turns::{detect_turns, DetectedTurn, TurnsConfig};
use locble_geom::{Trajectory, Vec2};
use locble_obs::Obs;
use locble_sensors::ImuSample;

/// Tracker configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrackerConfig {
    /// Step detection tuning.
    pub steps: StepsConfig,
    /// Turn detection tuning.
    pub turns: TurnsConfig,
    /// Snap turn angles to the nearest 90° multiple (paper §5.2.2's
    /// guided L-shape variant).
    pub snap_right_angles: bool,
}

/// The reconstructed motion of one device.
#[derive(Debug, Clone)]
pub struct MotionTrack {
    /// Local-frame trajectory (origin at start, +x along initial
    /// heading), one point per detected step plus start/end anchors.
    pub trajectory: Trajectory,
    /// Step detection output.
    pub steps: StepResult,
    /// Detected turns (after optional right-angle snapping).
    pub turns: Vec<DetectedTurn>,
}

impl MotionTrack {
    /// Displacement from the start at time `t` (the `(a_i, c_i)` of paper
    /// Eq. 1). `None` when the track is empty.
    pub fn displacement_at(&self, t: f64) -> Option<Vec2> {
        self.trajectory.displacement_at(t)
    }

    /// Total tracked walking distance, metres.
    pub fn distance(&self) -> f64 {
        self.steps.distance_m
    }
}

/// Runs the full §5.2 pipeline on a phone-frame IMU trace.
pub fn track(imu: &[ImuSample], config: &TrackerConfig) -> MotionTrack {
    let aligned = align(imu);
    let steps = detect_steps(&aligned, &config.steps);
    let mut turns = detect_turns(&aligned, &config.turns);
    if config.snap_right_angles {
        for t in &mut turns {
            let quarter = std::f64::consts::FRAC_PI_2;
            t.angle = (t.angle / quarter).round() * quarter;
        }
    }

    // Compose: heading starts at 0; each turn rotates it at the turn's
    // midpoint; each step advances one step length along the heading at
    // the step's time.
    let mut trajectory = Trajectory::new();
    let t0 = imu.first().map_or(0.0, |s| s.t);
    trajectory.push(t0, Vec2::ZERO);

    let heading_at = |t: f64| -> f64 {
        turns
            .iter()
            .filter(|turn| 0.5 * (turn.t_start + turn.t_end) <= t)
            .map(|turn| turn.angle)
            .sum()
    };

    let mut pos = Vec2::ZERO;
    for &st in &steps.step_times {
        pos += Vec2::from_angle(heading_at(st)) * steps.step_length_m;
        trajectory.push(st, pos);
    }
    if let Some(last) = imu.last() {
        if trajectory.end_time().is_none_or(|e| last.t > e) {
            trajectory.push(last.t, pos);
        }
    }
    MotionTrack {
        trajectory,
        steps,
        turns,
    }
}

/// [`track`] with diagnostics: counts detected steps and turns into the
/// `motion.steps` / `motion.turns` counters and emits one
/// `motion.track/turn` event per detected turn plus a
/// `motion.track/reconstructed` summary. With a disabled handle this is
/// exactly [`track`].
pub fn track_traced(imu: &[ImuSample], config: &TrackerConfig, obs: &Obs) -> MotionTrack {
    let reconstructed = track(imu, config);
    obs.counter_add("motion.steps", reconstructed.steps.count() as u64);
    obs.counter_add("motion.turns", reconstructed.turns.len() as u64);
    if obs.enabled() {
        for turn in &reconstructed.turns {
            obs.event(
                "motion.track",
                "turn",
                &[
                    ("t_mid_s", (0.5 * (turn.t_start + turn.t_end)).into()),
                    ("angle_deg", turn.angle.to_degrees().into()),
                ],
            );
        }
        obs.event(
            "motion.track",
            "reconstructed",
            &[
                ("steps", reconstructed.steps.count().into()),
                ("turns", reconstructed.turns.len().into()),
                ("distance_m", reconstructed.steps.distance_m.into()),
                ("step_frequency_hz", reconstructed.steps.frequency_hz.into()),
                ("step_length_m", reconstructed.steps.step_length_m.into()),
            ],
        );
    }
    reconstructed
}

#[cfg(test)]
mod tests {
    use super::*;
    use locble_geom::Pose2;
    use locble_sensors::{simulate_walk, GaitConfig, WalkPlan};

    #[test]
    fn l_walk_reconstructs_corner_position() {
        let plan = WalkPlan::l_shape(Pose2::IDENTITY, 4.0, 3.0);
        let sim = simulate_walk(&plan, &GaitConfig::default(), 31);
        let track = track(&sim.imu, &TrackerConfig::default());
        let end = track.trajectory.points().last().unwrap().pos;
        let truth = Vec2::new(4.0, 3.0);
        assert!(
            end.distance(truth) < 0.8,
            "reconstructed end {end:?}, truth {truth:?}"
        );
    }

    #[test]
    fn start_is_origin_regardless_of_world_pose() {
        // A walk starting at (10, −5) heading south-west still tracks
        // from the local origin.
        let start = Pose2::new(Vec2::new(10.0, -5.0), -2.3);
        let plan = WalkPlan::l_shape(start, 4.0, 3.0);
        let sim = simulate_walk(&plan, &GaitConfig::default(), 32);
        let track = track(&sim.imu, &TrackerConfig::default());
        let first = track.trajectory.points().first().unwrap().pos;
        assert_eq!(first, Vec2::ZERO);
        // End should be ~ (4, 3) in the *local* frame.
        let end = track.trajectory.points().last().unwrap().pos;
        assert!(end.distance(Vec2::new(4.0, 3.0)) < 0.9, "end {end:?}");
    }

    #[test]
    fn straight_walk_stays_on_x_axis() {
        let plan = WalkPlan::straight(Pose2::IDENTITY, 5.0);
        let sim = simulate_walk(&plan, &GaitConfig::default(), 33);
        let track = track(&sim.imu, &TrackerConfig::default());
        let end = track.trajectory.points().last().unwrap().pos;
        assert!((end.x - 5.0).abs() < 0.6, "end.x {}", end.x);
        assert!(end.y.abs() < 0.5, "end.y {}", end.y);
        assert!(track.turns.is_empty());
    }

    #[test]
    fn right_angle_snapping_exactifies_the_turn() {
        let plan = WalkPlan::l_shape(Pose2::IDENTITY, 4.0, 3.0);
        let sim = simulate_walk(&plan, &GaitConfig::default(), 34);
        let cfg = TrackerConfig {
            snap_right_angles: true,
            ..Default::default()
        };
        let track = track(&sim.imu, &cfg);
        assert_eq!(track.turns.len(), 1);
        assert!(
            (track.turns[0].angle - std::f64::consts::FRAC_PI_2).abs() < 1e-12,
            "snapped angle {}",
            track.turns[0].angle
        );
    }

    #[test]
    fn displacement_interpolates_between_steps() {
        let plan = WalkPlan::straight(Pose2::IDENTITY, 5.0);
        let sim = simulate_walk(&plan, &GaitConfig::default(), 35);
        let track = track(&sim.imu, &TrackerConfig::default());
        let half = track
            .displacement_at(sim.imu.last().unwrap().t / 2.0)
            .unwrap();
        // Halfway through a constant-speed straight walk ≈ half distance.
        assert!((half.x - 2.5).abs() < 0.8, "half.x {}", half.x);
    }

    #[test]
    fn empty_imu_yields_anchor_only() {
        let track = track(&[], &TrackerConfig::default());
        assert_eq!(track.trajectory.len(), 1);
        assert_eq!(track.steps.count(), 0);
    }

    #[test]
    fn distance_reported_from_steps() {
        let plan = WalkPlan::l_shape(Pose2::IDENTITY, 4.0, 3.0);
        let sim = simulate_walk(&plan, &GaitConfig::default(), 36);
        let track = track(&sim.imu, &TrackerConfig::default());
        assert!(
            (track.distance() - 7.0).abs() < 1.0,
            "distance {}",
            track.distance()
        );
    }

    #[test]
    fn traced_track_matches_untraced_and_counts_motion() {
        use locble_obs::Obs;
        let plan = WalkPlan::l_shape(Pose2::IDENTITY, 4.0, 3.0);
        let sim = simulate_walk(&plan, &GaitConfig::default(), 37);
        let cfg = TrackerConfig::default();
        let plain = track(&sim.imu, &cfg);

        let obs = Obs::ring(256);
        let traced = track_traced(&sim.imu, &cfg, &obs);
        assert_eq!(traced.trajectory.len(), plain.trajectory.len());
        assert_eq!(traced.turns.len(), plain.turns.len());

        let metrics = obs.metrics();
        assert_eq!(metrics.counter("motion.steps"), plain.steps.count() as u64);
        assert_eq!(metrics.counter("motion.turns"), plain.turns.len() as u64);

        let events = obs.events();
        let turns = events.iter().filter(|e| e.name == "turn").count();
        assert_eq!(turns, plain.turns.len());
        let summary = events
            .iter()
            .find(|e| e.name == "reconstructed")
            .expect("reconstruction summary event");
        let dist = summary
            .field("distance_m")
            .and_then(|f| f.as_f64())
            .expect("distance field");
        assert!((dist - plain.distance()).abs() < 1e-12);

        // A noop handle skips event construction entirely.
        let noop = Obs::noop();
        let silent = track_traced(&sim.imu, &cfg, &noop);
        assert_eq!(silent.trajectory.len(), plain.trajectory.len());
        assert!(noop.events().is_empty());
    }
}
