//! Motion tracking for the LocBLE reproduction (paper §5.2).
//!
//! Turns raw phone-frame IMU streams into the observer displacement
//! series `(a_i, c_i)` that the location estimator fuses with RSS:
//!
//! * [`alignment`] — "the well-known coordinate alignment for
//!   transforming phone coordinate to earth coordinate": gravity is
//!   estimated from the accelerometer itself, the vertical acceleration
//!   and vertical turn rate are recovered by projection, with no
//!   knowledge of the phone's posture.
//! * [`steps`] — the §5.2.1 step counter: moving-average smoothing, then
//!   peak *voting*; step length inferred from step frequency.
//! * [`turns`] — the §5.2.2 turn detector: gyroscope bump finds the turn
//!   boundaries, magnetic heading difference provides the angle.
//! * [`deadreckon`] — composes steps + headings into the local-frame
//!   trajectory (origin at the walk start, +x along the initial
//!   heading) used by the estimator and by navigation mode.

#![warn(missing_docs)]

pub mod alignment;
pub mod deadreckon;
pub mod steps;
pub mod turns;

pub use alignment::{align, AlignedImu};
pub use deadreckon::{track, track_traced, MotionTrack, TrackerConfig};
pub use steps::{detect_steps, StepResult, StepsConfig};
pub use turns::{detect_turns, DetectedTurn, TurnsConfig};
