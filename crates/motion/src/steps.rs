//! Step detection and walking-distance estimation (paper §5.2.1).
//!
//! "Our step counter first smoothes the accelerometer data by using the
//! moving average filter, then uses a voting algorithm to detect the
//! peak, which represents the middle status of one gait cycle. … we can
//! infer step length by inspecting the step frequency."

use crate::alignment::AlignedImu;
use locble_dsp::{detect_peaks, moving_average_centered, PeakConfig};
use locble_sensors::gait::step_length_from_frequency;

/// Step-detector tuning.
#[derive(Debug, Clone, Copy)]
pub struct StepsConfig {
    /// Moving-average window, seconds.
    pub smooth_window_s: f64,
    /// Minimum vertical-acceleration peak height, m/s².
    pub min_peak_accel: f64,
    /// Refractory period between steps, seconds (humans cannot step
    /// faster than ~4 Hz).
    pub min_step_period_s: f64,
    /// Neighborhood vote radius, seconds.
    pub vote_radius_s: f64,
    /// Required fraction of lower neighbors.
    pub vote_fraction: f64,
}

impl Default for StepsConfig {
    fn default() -> Self {
        StepsConfig {
            smooth_window_s: 0.12,
            min_peak_accel: 0.8,
            min_step_period_s: 0.3,
            vote_radius_s: 0.2,
            vote_fraction: 0.7,
        }
    }
}

/// Detected steps and derived walking distance.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult {
    /// Times of detected steps, seconds.
    pub step_times: Vec<f64>,
    /// Estimated mean step frequency, Hz (0 with < 2 steps).
    pub frequency_hz: f64,
    /// Estimated step length from the frequency model, metres.
    pub step_length_m: f64,
    /// Estimated total walking distance, metres.
    pub distance_m: f64,
}

impl StepResult {
    /// Number of detected steps.
    pub fn count(&self) -> usize {
        self.step_times.len()
    }
}

/// Runs the step detector on aligned IMU data.
pub fn detect_steps(aligned: &AlignedImu, config: &StepsConfig) -> StepResult {
    let fs = aligned.sample_rate();
    if aligned.len() < 3 || fs <= 0.0 {
        return StepResult {
            step_times: Vec::new(),
            frequency_hz: 0.0,
            step_length_m: step_length_from_frequency(0.0),
            distance_m: 0.0,
        };
    }
    let window = ((config.smooth_window_s * fs).round() as usize).max(1);
    let smoothed = moving_average_centered(&aligned.vertical_accel, window);

    let peak_cfg = PeakConfig {
        min_height: config.min_peak_accel,
        min_distance: ((config.min_step_period_s * fs).round() as usize).max(1),
        vote_radius: ((config.vote_radius_s * fs).round() as usize).max(1),
        vote_fraction: config.vote_fraction,
    };
    let peaks = detect_peaks(&smoothed, &peak_cfg);
    let step_times: Vec<f64> = peaks.iter().map(|&i| aligned.t[i]).collect();

    // Step frequency from the median inter-step interval (robust to the
    // pause during the turn).
    let frequency_hz = if step_times.len() >= 2 {
        let mut intervals: Vec<f64> = step_times.windows(2).map(|w| w[1] - w[0]).collect();
        intervals.sort_by(|a, b| a.total_cmp(b));
        let median = intervals[intervals.len() / 2];
        if median > 0.0 {
            1.0 / median
        } else {
            0.0
        }
    } else {
        0.0
    };
    let step_length_m = step_length_from_frequency(frequency_hz);
    StepResult {
        distance_m: step_length_m * step_times.len() as f64,
        step_times,
        frequency_hz,
        step_length_m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::align;
    use locble_geom::Pose2;
    use locble_sensors::{simulate_walk, GaitConfig, WalkPlan, WalkSimulation};

    fn l_walk(seed: u64) -> WalkSimulation {
        let plan = WalkPlan::l_shape(Pose2::IDENTITY, 4.0, 3.0);
        simulate_walk(&plan, &GaitConfig::default(), seed)
    }

    #[test]
    fn step_count_matches_truth_within_paper_accuracy() {
        // Paper §5.2.2: "the accuracy of step-based moving distance
        // estimation is around 94.77%".
        let mut total_true = 0usize;
        let mut total_err = 0usize;
        for seed in 0..10 {
            let sim = l_walk(seed);
            let result = detect_steps(&align(&sim.imu), &StepsConfig::default());
            total_true += sim.true_step_count();
            total_err += result.count().abs_diff(sim.true_step_count());
        }
        let accuracy = 1.0 - total_err as f64 / total_true as f64;
        assert!(accuracy > 0.9, "step accuracy {accuracy:.3}");
    }

    #[test]
    fn frequency_estimate_matches_gait() {
        let sim = l_walk(3);
        let result = detect_steps(&align(&sim.imu), &StepsConfig::default());
        assert!(
            (result.frequency_hz - 1.8).abs() < 0.2,
            "freq {}",
            result.frequency_hz
        );
    }

    #[test]
    fn distance_estimate_within_ten_percent() {
        let sim = l_walk(4);
        let result = detect_steps(&align(&sim.imu), &StepsConfig::default());
        let truth = sim.distance();
        assert!(
            (result.distance_m - truth).abs() / truth < 0.12,
            "estimated {:.2} m vs true {truth:.2} m",
            result.distance_m
        );
    }

    #[test]
    fn step_times_are_ordered_and_spaced() {
        let sim = l_walk(5);
        let result = detect_steps(&align(&sim.imu), &StepsConfig::default());
        for w in result.step_times.windows(2) {
            assert!(w[1] > w[0]);
            assert!(w[1] - w[0] >= 0.3 - 1e-9, "interval {}", w[1] - w[0]);
        }
    }

    #[test]
    fn stationary_imu_has_no_steps() {
        // Standing still: gravity + noise only.
        let plan = WalkPlan::straight(Pose2::IDENTITY, 3.0);
        let mut cfg = GaitConfig::default();
        cfg.step_amplitude = 0.0; // no gait bursts
        let sim = simulate_walk(&plan, &cfg, 6);
        let result = detect_steps(&align(&sim.imu), &StepsConfig::default());
        assert!(
            result.count() <= 1,
            "found {} phantom steps",
            result.count()
        );
        assert!(result.distance_m < 1.0);
    }

    #[test]
    fn non_finite_step_times_do_not_panic() {
        // A NaN timestamp right under a gait peak makes the inter-step
        // intervals NaN; the median sort used to
        // `partial_cmp(..).expect("finite")` and panic.
        let n = 120;
        let mut t: Vec<f64> = (0..n).map(|i| i as f64 * 0.02).collect();
        let mut accel = vec![0.0; n];
        for p in [20usize, 55, 90] {
            for (off, amp) in [(0i64, 3.0), (-1, 2.0), (1, 2.0), (-2, 1.0), (2, 1.0)] {
                accel[(p as i64 + off) as usize] = amp;
            }
        }
        for ti in t.iter_mut().take(58).skip(53) {
            *ti = f64::NAN;
        }
        let aligned = crate::alignment::AlignedImu {
            turn_rate: vec![0.0; n],
            mag_heading: vec![0.0; n],
            t,
            vertical_accel: accel,
            ..Default::default()
        };
        let result = detect_steps(&aligned, &StepsConfig::default());
        assert!(result.count() >= 2, "peaks still detected");
        assert!(result.frequency_hz.is_finite());
        assert!(result.distance_m.is_finite());
    }

    #[test]
    fn empty_input_is_graceful() {
        let result = detect_steps(&align(&[]), &StepsConfig::default());
        assert_eq!(result.count(), 0);
        assert_eq!(result.distance_m, 0.0);
    }
}
