//! Turn detection (paper §5.2.2).
//!
//! "To measure turns, we first analyze gyroscope to identify turning
//! behavior, then use magnetic heading to infer a specific turning angle.
//! … our turn detector inspects gyroscope readings to identify the bump
//! caused by the turning behavior. Our algorithm can accurately track the
//! beginning and ending points of a bump. Then, we find the corresponding
//! points in the magnetic heading to get the turning angle."

use crate::alignment::AlignedImu;
use locble_dsp::moving_average_centered;
use locble_geom::signed_angle_diff;

/// Turn-detector tuning.
#[derive(Debug, Clone, Copy)]
pub struct TurnsConfig {
    /// Moving-average window for the turn-rate signal, seconds.
    pub smooth_window_s: f64,
    /// Rate threshold that opens a bump, rad/s.
    pub start_threshold: f64,
    /// Rate threshold that closes a bump (hysteresis), rad/s.
    pub end_threshold: f64,
    /// Minimum bump duration to count as a turn, seconds.
    pub min_duration_s: f64,
    /// Minimum |angle| to count as a turn, radians.
    pub min_angle: f64,
    /// Averaging window for the heading endpoints, seconds.
    pub heading_window_s: f64,
}

impl Default for TurnsConfig {
    fn default() -> Self {
        TurnsConfig {
            smooth_window_s: 0.2,
            start_threshold: 0.35,
            end_threshold: 0.15,
            min_duration_s: 0.3,
            min_angle: 0.26, // ~15°
            heading_window_s: 0.4,
        }
    }
}

/// One detected turn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectedTurn {
    /// Bump start time, seconds.
    pub t_start: f64,
    /// Bump end time, seconds.
    pub t_end: f64,
    /// Turn angle from the magnetic heading difference, radians
    /// (counter-clockwise positive).
    pub angle: f64,
    /// Turn angle from integrating the gyroscope over the bump, radians
    /// (cross-check / fallback when the magnetic field is disturbed).
    pub gyro_angle: f64,
}

/// Detects turns in aligned IMU data.
pub fn detect_turns(aligned: &AlignedImu, config: &TurnsConfig) -> Vec<DetectedTurn> {
    let fs = aligned.sample_rate();
    if aligned.len() < 3 || fs <= 0.0 {
        return Vec::new();
    }
    let window = ((config.smooth_window_s * fs).round() as usize).max(1);
    let rate = moving_average_centered(&aligned.turn_rate, window);

    // Hysteresis bump segmentation on |rate|.
    let mut turns = Vec::new();
    let mut open: Option<usize> = None;
    for i in 0..rate.len() {
        match open {
            None if rate[i].abs() >= config.start_threshold => open = Some(i),
            Some(start) if rate[i].abs() < config.end_threshold || i == rate.len() - 1 => {
                let end = i;
                open = None;
                let duration = aligned.t[end] - aligned.t[start];
                if duration < config.min_duration_s {
                    continue;
                }
                if let Some(turn) = measure_turn(aligned, &rate, start, end, fs, config) {
                    if turn.angle.abs() >= config.min_angle {
                        turns.push(turn);
                    }
                }
            }
            _ => {}
        }
    }
    turns
}

fn measure_turn(
    aligned: &AlignedImu,
    rate: &[f64],
    start: usize,
    end: usize,
    fs: f64,
    config: &TurnsConfig,
) -> Option<DetectedTurn> {
    let half = ((config.heading_window_s * fs).round() as usize).max(1);
    // Heading before the bump: mean over [start − half, start).
    let pre_lo = start.saturating_sub(half);
    let pre = circular_mean(&aligned.mag_heading[pre_lo..start.max(pre_lo + 1)])?;
    // Heading after the bump: mean over (end, end + half].
    let post_hi = (end + 1 + half).min(aligned.len());
    let post = circular_mean(&aligned.mag_heading[(end + 1).min(post_hi - 1)..post_hi])?;
    let angle = signed_angle_diff(pre, post);

    let dt = 1.0 / fs;
    let gyro_angle: f64 = rate[start..=end].iter().map(|r| r * dt).sum();
    Some(DetectedTurn {
        t_start: aligned.t[start],
        t_end: aligned.t[end],
        angle,
        gyro_angle,
    })
}

/// Mean of angles, wrap-safe (vector averaging). `None` on empty input.
fn circular_mean(angles: &[f64]) -> Option<f64> {
    if angles.is_empty() {
        return None;
    }
    let (s, c) = angles
        .iter()
        .fold((0.0, 0.0), |(s, c), &a| (s + a.sin(), c + a.cos()));
    Some(s.atan2(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::align;
    use locble_geom::Pose2;
    use locble_sensors::{simulate_walk, GaitConfig, WalkPlan};
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn l_walk_yields_one_left_turn() {
        let plan = WalkPlan::l_shape(Pose2::IDENTITY, 4.0, 3.0);
        let sim = simulate_walk(&plan, &GaitConfig::default(), 21);
        let turns = detect_turns(&align(&sim.imu), &TurnsConfig::default());
        assert_eq!(turns.len(), 1, "turns: {turns:?}");
        let t = turns[0];
        assert!((t.angle - FRAC_PI_2).abs() < 0.12, "angle {:.3}", t.angle);
        assert!(
            (t.gyro_angle - FRAC_PI_2).abs() < 0.15,
            "gyro {:.3}",
            t.gyro_angle
        );
        // Bump boundaries bracket the true turn.
        let truth = sim.true_turns[0];
        assert!(t.t_start >= truth.t_start - 0.5 && t.t_end <= truth.t_end + 0.5);
    }

    #[test]
    fn mean_angle_error_matches_paper_regime() {
        // Paper: "the average angle estimation error is 3.45°".
        let mut errs = Vec::new();
        for seed in 0..12 {
            let plan = WalkPlan::l_shape(Pose2::IDENTITY, 4.0, 3.0);
            let sim = simulate_walk(&plan, &GaitConfig::default(), 100 + seed);
            let turns = detect_turns(&align(&sim.imu), &TurnsConfig::default());
            if let Some(t) = turns.first() {
                errs.push((t.angle - FRAC_PI_2).abs().to_degrees());
            }
        }
        assert!(errs.len() >= 10, "detected {} of 12 turns", errs.len());
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean < 6.0, "mean angle error {mean:.2}°");
    }

    #[test]
    fn right_turns_have_negative_angle() {
        let plan = WalkPlan {
            start: Pose2::IDENTITY,
            legs: vec![
                locble_sensors::WalkLeg { distance_m: 3.0 },
                locble_sensors::WalkLeg { distance_m: 3.0 },
            ],
            turn_angles: vec![-FRAC_PI_2],
        };
        let sim = simulate_walk(&plan, &GaitConfig::default(), 23);
        let turns = detect_turns(&align(&sim.imu), &TurnsConfig::default());
        assert_eq!(turns.len(), 1);
        assert!(
            (turns[0].angle + FRAC_PI_2).abs() < 0.12,
            "angle {:.3}",
            turns[0].angle
        );
    }

    #[test]
    fn straight_walk_has_no_turns() {
        let plan = WalkPlan::straight(Pose2::IDENTITY, 6.0);
        let sim = simulate_walk(&plan, &GaitConfig::default(), 24);
        let turns = detect_turns(&align(&sim.imu), &TurnsConfig::default());
        assert!(turns.is_empty(), "phantom turns: {turns:?}");
    }

    #[test]
    fn multiple_turns_all_found() {
        // A Z-shaped walk: left 90°, then right 90°.
        let plan = WalkPlan {
            start: Pose2::IDENTITY,
            legs: vec![
                locble_sensors::WalkLeg { distance_m: 3.0 },
                locble_sensors::WalkLeg { distance_m: 3.0 },
                locble_sensors::WalkLeg { distance_m: 3.0 },
            ],
            turn_angles: vec![FRAC_PI_2, -FRAC_PI_2],
        };
        let sim = simulate_walk(&plan, &GaitConfig::default(), 25);
        let turns = detect_turns(&align(&sim.imu), &TurnsConfig::default());
        assert_eq!(turns.len(), 2, "turns: {turns:?}");
        assert!(turns[0].angle > 0.0 && turns[1].angle < 0.0);
    }

    #[test]
    fn circular_mean_handles_wraparound() {
        let angles = [3.1, -3.1, 3.05, -3.05]; // all near ±π
        let m = circular_mean(&angles).unwrap();
        assert!(m.abs() > 3.0, "mean {m} should stay near π");
        assert!(circular_mean(&[]).is_none());
    }

    #[test]
    fn empty_input_is_graceful() {
        assert!(detect_turns(&align(&[]), &TurnsConfig::default()).is_empty());
    }
}
