//! Property tests for motion tracking: posture invariance and bounded
//! reconstruction error across random walk geometries.

use locble_geom::{Pose2, Vec2};
use locble_motion::{align, detect_steps, track, StepsConfig, TrackerConfig};
use locble_sensors::{simulate_walk, GaitConfig, WalkPlan};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reconstruction error stays bounded relative to the walk length for
    /// arbitrary L geometries and phone postures.
    #[test]
    fn reconstruction_error_bounded(
        leg1 in 2.0..5.0f64,
        leg2 in 2.0..5.0f64,
        yaw in -1.5..1.5f64,
        pitch in -0.8..0.8f64,
        roll in -0.8..0.8f64,
        seed in 0u64..300,
    ) {
        let plan = WalkPlan::l_shape(Pose2::IDENTITY, leg1, leg2);
        let cfg = GaitConfig { phone_ypr: [yaw, pitch, roll], ..Default::default() };
        let sim = simulate_walk(&plan, &cfg, seed);
        let tr = track(&sim.imu, &TrackerConfig::default());
        let end = tr.trajectory.points().last().expect("non-empty").pos;
        let truth = Vec2::new(leg1, leg2); // local frame of an L
        let err = end.distance(truth);
        prop_assert!(
            err < 0.25 * (leg1 + leg2),
            "end error {err:.2} m on a {:.1} m walk (posture {yaw:.2}/{pitch:.2}/{roll:.2})",
            leg1 + leg2
        );
    }

    /// The step detector's count never exceeds the physical bound
    /// (refractory period) and its distance is non-negative.
    #[test]
    fn step_counts_physical(
        leg1 in 1.0..6.0f64,
        leg2 in 1.0..6.0f64,
        seed in 0u64..300,
    ) {
        let plan = WalkPlan::l_shape(Pose2::IDENTITY, leg1, leg2);
        let sim = simulate_walk(&plan, &GaitConfig::default(), seed);
        let aligned = align(&sim.imu);
        let steps = detect_steps(&aligned, &StepsConfig::default());
        let duration = sim.imu.last().expect("imu").t;
        prop_assert!(steps.count() as f64 <= duration / 0.3 + 1.0);
        prop_assert!(steps.distance_m >= 0.0);
        for w in steps.step_times.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }

    /// Alignment recovers a unit gravity direction for any posture.
    #[test]
    fn gravity_direction_unit(
        yaw in -3.0..3.0f64,
        pitch in -1.2..1.2f64,
        roll in -1.2..1.2f64,
        seed in 0u64..300,
    ) {
        let plan = WalkPlan::straight(Pose2::IDENTITY, 3.0);
        let cfg = GaitConfig { phone_ypr: [yaw, pitch, roll], ..Default::default() };
        let sim = simulate_walk(&plan, &cfg, seed);
        let aligned = align(&sim.imu);
        let g = aligned.gravity_dir;
        let norm = (g[0] * g[0] + g[1] * g[1] + g[2] * g[2]).sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-9);
    }
}
