//! Blocking client for the wire protocol.
//!
//! One [`Client`] is one TCP connection. Every public method is a
//! request/reply exchange: a typed server-side failure comes back as
//! [`ClientError::Server`] with the wire's [`WireError`], transport
//! problems as [`ClientError::Io`]. The raw [`Client::send_raw`] /
//! [`Client::read_frame`] pair exists for protocol tests that need to
//! put arbitrary bytes on the wire.

use crate::wire::{
    decode_frame_with_limit, encode_frame, ClusterSummary, DecodeError, FinishSummary, Frame,
    IngestSummary, NodeEntry, TracedAck, WireAdvert, WireError, WireMetrics, WirePartitionMap,
    WireStats, DEFAULT_MAX_FRAME_LEN,
};
use locble_ble::BeaconId;
use locble_core::LocationEstimate;
use locble_engine::Advert;
use locble_obs::{TraceCtx, TraceRecord};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server's bytes did not decode to a frame.
    Decode(DecodeError),
    /// The server answered with a typed error frame.
    Server(WireError),
    /// The server answered with a frame of the wrong kind.
    UnexpectedFrame(&'static str),
    /// The server closed the connection mid-reply.
    ConnectionClosed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Decode(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::UnexpectedFrame(want) => {
                write!(f, "unexpected reply frame ({want} expected)")
            }
            ClientError::ConnectionClosed => write!(f, "connection closed by server"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One blocking protocol connection.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    max_frame_len: usize,
}

impl Client {
    /// Connects with 5-second read/write timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, Duration::from_secs(5), Duration::from_secs(5))
    }

    /// Connects with explicit timeouts.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(write_timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        })
    }

    /// Sends one frame.
    pub fn send_frame(&mut self, frame: &Frame) -> Result<(), ClientError> {
        self.send_raw(&encode_frame(frame))
    }

    /// Puts raw bytes on the wire (protocol-test escape hatch).
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Reads the next frame, blocking up to the read timeout per read.
    pub fn read_frame(&mut self) -> Result<Frame, ClientError> {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            match decode_frame_with_limit(&self.buf, self.max_frame_len) {
                Ok((frame, used)) => {
                    self.buf.drain(..used);
                    return Ok(frame);
                }
                Err(DecodeError::Incomplete { .. }) => {}
                Err(e) => return Err(ClientError::Decode(e)),
            }
            match self.stream.read(&mut scratch)? {
                0 => return Err(ClientError::ConnectionClosed),
                n => self.buf.extend_from_slice(&scratch[..n]),
            }
        }
    }

    fn request(&mut self, frame: &Frame) -> Result<Frame, ClientError> {
        self.send_frame(frame)?;
        match self.read_frame()? {
            Frame::Error(e) => Err(ClientError::Server(e)),
            reply => Ok(reply),
        }
    }

    /// Ships a batch of adverts; returns the server's exact accounting.
    pub fn ingest(&mut self, adverts: &[Advert]) -> Result<IngestSummary, ClientError> {
        let batch: Vec<WireAdvert> = adverts.iter().map(|a| WireAdvert::from(*a)).collect();
        match self.request(&Frame::AdvertBatch(batch))? {
            Frame::IngestAck(s) => Ok(s),
            _ => Err(ClientError::UnexpectedFrame("IngestAck")),
        }
    }

    /// Ships a batch under a trace context (mint one with
    /// [`TraceCtx::mint`]); the ack carries the context plus every
    /// server-side lap closed before the ack was written. The estimates
    /// the server computes are bit-identical to an untraced
    /// [`Client::ingest`] of the same adverts.
    pub fn ingest_traced(
        &mut self,
        adverts: &[Advert],
        ctx: TraceCtx,
    ) -> Result<TracedAck, ClientError> {
        let batch: Vec<WireAdvert> = adverts.iter().map(|a| WireAdvert::from(*a)).collect();
        match self.request(&Frame::TracedAdvertBatch(ctx, batch))? {
            Frame::TracedIngestAck(ack) => Ok(ack),
            _ => Err(ClientError::UnexpectedFrame("TracedIngestAck")),
        }
    }

    /// The server's live metrics snapshot (counters, gauges, latency
    /// histograms), bit-exact over the wire.
    pub fn metrics(&mut self) -> Result<WireMetrics, ClientError> {
        match self.request(&Frame::MetricsQuery)? {
            Frame::MetricsReport(m) => Ok(m),
            _ => Err(ClientError::UnexpectedFrame("MetricsReport")),
        }
    }

    /// Recent trace records from the server's trace table: all of them
    /// (`None`) or one trace id's record (`Some`).
    pub fn traces(&mut self, id: Option<u64>) -> Result<Vec<TraceRecord>, ClientError> {
        match self.request(&Frame::TraceQuery(id))? {
            Frame::TraceReport(records) => Ok(records),
            _ => Err(ClientError::UnexpectedFrame("TraceReport")),
        }
    }

    /// Every live estimate, in ascending beacon-id order.
    pub fn snapshot(&mut self) -> Result<Vec<(BeaconId, LocationEstimate)>, ClientError> {
        match self.request(&Frame::QuerySnapshot)? {
            Frame::Snapshot(estimates) => Ok(estimates.iter().map(|e| e.to_estimate()).collect()),
            _ => Err(ClientError::UnexpectedFrame("Snapshot")),
        }
    }

    /// One beacon's estimate, if its session has one.
    pub fn query(&mut self, beacon: BeaconId) -> Result<Option<LocationEstimate>, ClientError> {
        match self.request(&Frame::QueryBeacon(beacon.0))? {
            Frame::BeaconReply(est) => Ok(est.map(|e| e.to_estimate().1)),
            _ => Err(ClientError::UnexpectedFrame("BeaconReply")),
        }
    }

    /// Engine statistics plus the live queue depth.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.request(&Frame::QueryStats)? {
            Frame::Stats(s) => Ok(s),
            _ => Err(ClientError::UnexpectedFrame("Stats")),
        }
    }

    /// Ends the stream: drains queues, flushes partial batches, refits
    /// stale sessions (the engine's `finish`).
    pub fn finish(&mut self) -> Result<FinishSummary, ClientError> {
        match self.request(&Frame::Finish)? {
            Frame::FinishAck(s) => Ok(s),
            _ => Err(ClientError::UnexpectedFrame("FinishAck")),
        }
    }

    /// Announces `entry` to a cluster peer; returns the membership view
    /// the peer holds after admitting it.
    pub fn join(&mut self, entry: NodeEntry) -> Result<WirePartitionMap, ClientError> {
        match self.request(&Frame::Join(entry))? {
            Frame::JoinAck(map) => Ok(map),
            _ => Err(ClientError::UnexpectedFrame("JoinAck")),
        }
    }

    /// Installs a membership view on the peer (stale epochs are
    /// refused); returns the view the peer actually holds afterwards.
    /// This is the call that promotes a follower or demotes an owner.
    pub fn install_map(&mut self, map: WirePartitionMap) -> Result<WirePartitionMap, ClientError> {
        match self.request(&Frame::PartitionMap(map))? {
            Frame::JoinAck(map) => Ok(map),
            _ => Err(ClientError::UnexpectedFrame("JoinAck")),
        }
    }

    /// Forwards one partition of a client batch to its owning node. A
    /// `ctx.trace_id` of 0 means untraced. Returns the ingest summary
    /// plus how many records the owner's follower had acked durable
    /// when the ack left (0 with no follower).
    pub fn forward(
        &mut self,
        seq: u64,
        ctx: TraceCtx,
        adverts: Vec<WireAdvert>,
    ) -> Result<(IngestSummary, u64), ClientError> {
        match self.request(&Frame::Forward { seq, ctx, adverts })? {
            Frame::ForwardAck {
                seq: echoed,
                summary,
                replica_durable,
            } => {
                if echoed != seq {
                    return Err(ClientError::UnexpectedFrame("ForwardAck seq echo"));
                }
                Ok((summary, replica_durable))
            }
            _ => Err(ClientError::UnexpectedFrame("ForwardAck")),
        }
    }

    /// Streams WAL records to a follower. `base` is the sender's
    /// durable record count before these records (the follower refuses
    /// a mismatch); returns the follower's durable count after the
    /// append.
    pub fn replicate(
        &mut self,
        seq: u64,
        base: u64,
        records: &[Advert],
    ) -> Result<u64, ClientError> {
        let adverts: Vec<WireAdvert> = records.iter().map(|a| WireAdvert::from(*a)).collect();
        match self.request(&Frame::Replicate { seq, base, adverts })? {
            Frame::ReplicateAck {
                seq: echoed,
                durable,
            } => {
                if echoed != seq {
                    return Err(ClientError::UnexpectedFrame("ReplicateAck seq echo"));
                }
                Ok(durable)
            }
            _ => Err(ClientError::UnexpectedFrame("ReplicateAck")),
        }
    }

    /// The node's cluster identity, membership view, and cluster-path
    /// counters (standalone servers answer with node id 0 and an empty
    /// map).
    pub fn cluster(&mut self) -> Result<ClusterSummary, ClientError> {
        match self.request(&Frame::ClusterQuery)? {
            Frame::ClusterReport(s) => Ok(s),
            _ => Err(ClientError::UnexpectedFrame("ClusterReport")),
        }
    }

    /// Exports the peer's complete engine state for a rebalance
    /// handoff: `(sessions, store-codec bytes)`. Feed the bytes to
    /// [`Client::handoff`] unmodified — they are bit-exact.
    pub fn export_state(&mut self) -> Result<(u64, Vec<u8>), ClientError> {
        match self.request(&Frame::ExportState)? {
            Frame::StateExport { sessions, state } => Ok((sessions, state)),
            _ => Err(ClientError::UnexpectedFrame("StateExport")),
        }
    }

    /// Hands an exported engine state to an empty peer; returns how
    /// many sessions it restored.
    pub fn handoff(&mut self, epoch: u64, state: Vec<u8>) -> Result<u64, ClientError> {
        match self.request(&Frame::Handoff { epoch, state })? {
            Frame::HandoffAck {
                epoch: echoed,
                sessions,
            } => {
                if echoed != epoch {
                    return Err(ClientError::UnexpectedFrame("HandoffAck epoch echo"));
                }
                Ok(sessions)
            }
            _ => Err(ClientError::UnexpectedFrame("HandoffAck")),
        }
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}
