//! Per-connection state machines for the reactor server.
//!
//! Three pieces, each independently testable:
//!
//! * [`FrameAssembler`] — carries partial frames across readiness
//!   events. Bytes go in at any split the transport produces; complete
//!   frames come out in order, with the same
//!   recoverable-vs-framing-lost distinction the blocking read loop
//!   drew: a framed-but-malformed payload is skipped and reported
//!   ([`Assembled::Skipped`]), an unusable length prefix is fatal
//!   (`Err`). The property suite proves any byte-boundary split decodes
//!   to the identical frame list as one contiguous feed.
//! * [`Conn`] — one nonblocking connection: the assembler plus a
//!   buffered write half. Replies queue into a write buffer that is
//!   flushed opportunistically and on write readiness; a peer that
//!   stops reading its acks fills the buffer until the reactor pauses
//!   reading from it (backpressure), never blocking the event loop.
//! * [`TimerWheel`] — hashed-wheel deadlines for the slow-loris
//!   defence: a connection holding a *partial* frame arms a deadline
//!   that is re-armed on every byte of progress and disarmed when the
//!   buffer empties, so idle connections still wait forever.

use crate::wire::{decode_frame_with_limit, frame_size, DecodeError, Frame};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One unit of progress out of a [`FrameAssembler`].
#[derive(Debug)]
pub enum Assembled {
    /// A complete frame decoded.
    Frame(Frame),
    /// A framed-but-malformed payload (trusted length prefix, broken
    /// body): the bytes were skipped and the connection stays usable.
    Skipped(DecodeError),
}

/// Incremental frame decoder: feed bytes as they arrive, pull frames as
/// they complete. Wraps the wire module's total decoder, so no input —
/// however split or corrupted — can panic it.
#[derive(Debug)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    pos: usize,
    max_frame_len: usize,
}

impl FrameAssembler {
    /// An empty assembler accepting payloads up to `max_frame_len`.
    pub fn new(max_frame_len: usize) -> FrameAssembler {
        FrameAssembler {
            buf: Vec::new(),
            pos: 0,
            max_frame_len,
        }
    }

    /// Appends bytes read off the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.pos > 0 {
            // Compact before growing: consumed frames never accumulate.
            self.buf.copy_within(self.pos.., 0);
            self.buf.truncate(self.buf.len() - self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded frame. Non-zero
    /// after [`FrameAssembler::next_frame`] returns `Ok(None)` means a partial
    /// frame is pending — the slow-loris timer's arming condition.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decodes the next complete frame, if the buffer holds one.
    ///
    /// * `Ok(Some(_))` — progress: a frame, or a skipped malformed one.
    /// * `Ok(None)` — need more bytes (call [`FrameAssembler::feed`]).
    /// * `Err(_)` — the length prefix itself is unusable (oversized):
    ///   framing is lost and the connection must close. The buffer is
    ///   left untouched; further calls repeat the error.
    pub fn next_frame(&mut self) -> Result<Option<Assembled>, DecodeError> {
        let pending = &self.buf[self.pos..];
        let total = match frame_size(pending, self.max_frame_len) {
            Err(DecodeError::Incomplete { .. }) => return Ok(None),
            Err(e) => return Err(e),
            Ok(total) => total,
        };
        if pending.len() < total {
            return Ok(None);
        }
        let result = match decode_frame_with_limit(&pending[..total], self.max_frame_len) {
            Ok((frame, _)) => Assembled::Frame(frame),
            // Recoverable by construction: frame_size accepted the
            // prefix, so exactly `total` bytes are skippable.
            Err(e) => Assembled::Skipped(e),
        };
        self.pos += total;
        Ok(Some(result))
    }
}

/// How far a [`Conn::flush`] got.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flush {
    /// The write buffer is empty.
    Drained,
    /// The socket would block with bytes still queued; write readiness
    /// will resume the flush.
    Pending,
}

/// Reply bytes queued per connection before the reactor pauses reading
/// from it (a peer that never reads its acks must not grow the buffer
/// unboundedly).
pub(crate) const WRITE_BACKPRESSURE_BYTES: usize = 256 * 1024;

/// One nonblocking connection: read-side assembler + buffered write
/// half + the reactor's per-connection bookkeeping.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    pub(crate) assembler: FrameAssembler,
    wbuf: Vec<u8>,
    wpos: usize,
    /// The peer closed its write half; close once buffered work is done.
    pub(crate) peer_eof: bool,
    /// Close as soon as the write buffer drains (framing lost, or
    /// graceful shutdown).
    pub(crate) close_after_flush: bool,
    /// Reading is paused until the write buffer drains (backpressure
    /// from a peer that does not read its acks).
    pub(crate) paused: bool,
    /// Bumped on every timer arm/disarm; stale wheel entries carry an
    /// old generation and are ignored when they fire.
    pub(crate) timer_gen: u64,
    /// The live slow-loris deadline, if a partial frame is pending.
    pub(crate) deadline: Option<Instant>,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, max_frame_len: usize) -> Conn {
        Conn {
            stream,
            assembler: FrameAssembler::new(max_frame_len),
            wbuf: Vec::new(),
            wpos: 0,
            peer_eof: false,
            close_after_flush: false,
            paused: false,
            timer_gen: 0,
            deadline: None,
        }
    }

    /// Reads until the socket would block (bounded per event for
    /// fairness; level-triggered epoll re-notifies), feeding the
    /// assembler. Returns bytes read; EOF sets [`Conn::peer_eof`]. An
    /// `Err` is a transport failure — close the connection.
    pub(crate) fn read_ready(&mut self, scratch: &mut [u8]) -> std::io::Result<usize> {
        let mut total = 0;
        for _ in 0..8 {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    self.assembler.feed(&scratch[..n]);
                    total += n;
                    if n < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }

    /// Queues reply bytes for writing.
    pub(crate) fn queue(&mut self, bytes: &[u8]) {
        self.wbuf.extend_from_slice(bytes);
    }

    /// Reply bytes queued and not yet accepted by the socket.
    pub(crate) fn write_backlog(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Writes queued bytes until the socket blocks or the buffer drains.
    pub(crate) fn flush(&mut self) -> std::io::Result<Flush> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
            return Ok(Flush::Drained);
        }
        if self.wpos > 64 * 1024 {
            self.wbuf.copy_within(self.wpos.., 0);
            self.wbuf.truncate(self.wbuf.len() - self.wpos);
            self.wpos = 0;
        }
        Ok(Flush::Pending)
    }
}

/// Hashed timer wheel: O(1) arm, O(slots touched) advance. Slots are
/// coarse on purpose — entries past the horizon clamp to the last slot
/// and deadlines are validated against the connection's own state when
/// they fire, so coarseness only delays a fire, never loses one.
pub(crate) struct TimerWheel {
    slots: Vec<Vec<(usize, u64)>>,
    granularity: Duration,
    cursor: usize,
    /// The instant slot `cursor` began.
    epoch: Instant,
}

impl TimerWheel {
    pub(crate) fn new(granularity: Duration, slots: usize, now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..slots.max(2)).map(|_| Vec::new()).collect(),
            granularity: granularity.max(Duration::from_millis(1)),
            cursor: 0,
            epoch: now,
        }
    }

    /// Schedules `(conn, gen)` to fire at `deadline` (clamped into the
    /// wheel's horizon; the reactor re-arms early fires).
    pub(crate) fn arm(&mut self, conn: usize, gen: u64, deadline: Instant) {
        let n = self.slots.len();
        let ahead = deadline
            .saturating_duration_since(self.epoch)
            .as_nanos()
            .checked_div(self.granularity.as_nanos())
            .unwrap_or(0) as usize;
        let idx = (self.cursor + ahead.clamp(1, n - 1)) % n;
        self.slots[idx].push((conn, gen));
    }

    /// Advances the wheel to `now`, returning every entry whose slot
    /// elapsed. The caller validates each against the connection's live
    /// deadline/generation (stale or early entries are re-armed or
    /// dropped there).
    pub(crate) fn advance(&mut self, now: Instant) -> Vec<(usize, u64)> {
        let mut fired = Vec::new();
        while now.saturating_duration_since(self.epoch) >= self.granularity {
            fired.append(&mut self.slots[self.cursor]);
            self.cursor = (self.cursor + 1) % self.slots.len();
            self.epoch += self.granularity;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode_frame;

    #[test]
    fn assembler_reassembles_byte_by_byte() {
        let frames = vec![Frame::QueryStats, Frame::QueryBeacon(9), Frame::Finish];
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&encode_frame(f));
        }
        let mut asm = FrameAssembler::new(1024);
        let mut out = Vec::new();
        for b in bytes {
            asm.feed(&[b]);
            while let Some(a) = asm.next_frame().expect("framing intact") {
                match a {
                    Assembled::Frame(f) => out.push(f),
                    Assembled::Skipped(e) => panic!("unexpected skip: {e}"),
                }
            }
        }
        assert_eq!(out, frames);
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn assembler_skips_malformed_and_recovers() {
        let mut asm = FrameAssembler::new(1024);
        // Unknown tag (recoverable), then a valid frame.
        asm.feed(&[0, 0, 0, 2, crate::wire::WIRE_VERSION, 200]);
        asm.feed(&encode_frame(&Frame::Finish));
        match asm.next_frame().expect("recoverable") {
            Some(Assembled::Skipped(DecodeError::BadTag { got: 200 })) => {}
            other => panic!("expected skipped bad tag, got {other:?}"),
        }
        match asm.next_frame().expect("frame after skip") {
            Some(Assembled::Frame(Frame::Finish)) => {}
            other => panic!("expected Finish, got {other:?}"),
        }
    }

    #[test]
    fn assembler_loses_framing_on_oversized_prefix() {
        let mut asm = FrameAssembler::new(64);
        asm.feed(&u32::MAX.to_be_bytes());
        assert!(matches!(
            asm.next_frame(),
            Err(DecodeError::Oversized { .. })
        ));
        // The error is sticky: framing cannot be recovered.
        assert!(matches!(
            asm.next_frame(),
            Err(DecodeError::Oversized { .. })
        ));
    }

    #[test]
    fn wheel_fires_after_deadline_not_before() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 16, t0);
        wheel.arm(3, 1, t0 + Duration::from_millis(45));
        assert!(wheel.advance(t0 + Duration::from_millis(30)).is_empty());
        let fired = wheel.advance(t0 + Duration::from_millis(60));
        assert_eq!(fired, vec![(3, 1)]);
    }

    #[test]
    fn wheel_clamps_past_horizon_rather_than_dropping() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8, t0);
        wheel.arm(1, 7, t0 + Duration::from_secs(3600));
        // Fires within one horizon; the reactor's validation re-arms it.
        let fired = wheel.advance(t0 + Duration::from_millis(100));
        assert_eq!(fired, vec![(1, 7)]);
    }
}
