//! `locble-net`: the wire protocol and TCP ingest/query server in
//! front of the tracking engine.
//!
//! The paper's deployment story — and the ROADMAP's north star — is a
//! central service collecting advert streams from many phones. This
//! crate is that service boundary, built on `std` alone (no async
//! runtime, no serialization framework):
//!
//! * [`wire`] — a versioned, length-prefixed binary protocol
//!   ([`Frame`]) with a total encoder/decoder: any byte sequence
//!   decodes to a frame or a typed [`DecodeError`], never a panic.
//!   Floats travel bit-exactly, so served snapshots are bit-identical
//!   to in-process reads.
//! * [`poll`] — a minimal epoll wrapper over raw syscalls
//!   ([`Poller`]): the readiness source for the server's reactor and
//!   for the load generator's multiplexed client driver.
//! * [`conn`] — per-connection state machines: the
//!   [`FrameAssembler`] carries partial frames across readiness
//!   events (any byte-boundary split decodes identically to one
//!   contiguous feed), and a timer wheel drives slow-loris deadlines.
//! * [`server`] — a single-threaded epoll reactor owning an
//!   [`Engine`](locble_engine::Engine): nonblocking connections at 10k
//!   scale, slow-loris timeouts via the timer wheel, typed error
//!   replies for malformed frames, exact per-batch ingest accounting,
//!   cross-connection ingest coalescing (one engine pass per tick
//!   drains every client's queued batches), and an ordered graceful
//!   shutdown that drains every queued shard before returning the
//!   engine. (The original thread-per-connection server this reactor
//!   replaced lives only in git history; the wire semantics are
//!   unchanged and its whole test wall runs against the reactor.)
//!   [`Server::bind_durable`] attaches a `locble-store`
//!   [`SessionStore`](locble_store::SessionStore): every offered batch
//!   is WAL-logged before ingest and snapshots are written on a record
//!   cadence and at shutdown, so a crashed server recovers
//!   bit-identically.
//! * [`client`] — a blocking request/reply client used by the loadgen
//!   binary, the bench harness's `serve` experiment, and the loopback
//!   differential suite.
//!
//! ```no_run
//! use locble_core::{Estimator, EstimatorConfig};
//! use locble_engine::{Advert, Engine, EngineConfig};
//! use locble_net::{Client, Server, ServerConfig};
//! use locble_obs::Obs;
//!
//! let engine = Engine::new(
//!     EngineConfig::default(),
//!     Estimator::new(EstimatorConfig::default()),
//!     Obs::noop(),
//! );
//! let handle = Server::bind(engine, ServerConfig::default(), Obs::noop()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let ack = client
//!     .ingest(&[Advert { beacon: locble_ble::BeaconId(7), t: 0.0, rssi_dbm: -58.0 }])
//!     .unwrap();
//! assert_eq!(ack.routed, 1);
//! client.finish().unwrap();
//! let engine = handle.shutdown(); // drained; nothing acked is lost
//! assert_eq!(engine.stats().samples_routed, 1);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod conn;
pub mod poll;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError};
pub use conn::{Assembled, FrameAssembler};
pub use poll::{Event, Interest, Poller};
pub use server::{ClusterConfig, ReplicationPolicy, Server, ServerConfig, ServerHandle};
pub use wire::{
    decode_frame, decode_frame_with_limit, encode_frame, frame_size, ClusterSummary, DecodeError,
    ErrorCode, FinishSummary, Frame, IngestSummary, NodeEntry, NodeRole, TracedAck, WireAdvert,
    WireError, WireEstimate, WireMetrics, WirePartitionMap, WireStats, DEFAULT_MAX_FRAME_LEN,
    MIN_WIRE_VERSION, WIRE_VERSION,
};
