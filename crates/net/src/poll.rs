//! Minimal epoll wrapper over raw syscalls — the readiness source for
//! the reactor server (and for the load generator's multiplexed client
//! driver, which is why it is public).
//!
//! `std` exposes no readiness API, and this workspace links no async
//! runtime and no `libc` crate; like the server's SIGTERM handler, the
//! three epoll entry points are declared `extern "C"` against the C
//! runtime `std` already links. Level-triggered only: a registration
//! stays ready until its condition clears, so a reactor that leaves
//! bytes unread is re-notified on the next wait — simpler to reason
//! about than edge-triggering and plenty for loopback scale.
//!
//! One [`Poller`] owns one epoll instance. Registrations carry a caller
//! token (an index into the reactor's connection slab) that comes back
//! verbatim in every [`Event`].

use std::io;
use std::os::unix::io::RawFd;

/// The kernel's `struct epoll_event`. x86_64 packs it (wire ABI of the
/// syscall); other architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;

// From the C runtime std links; declaring them here avoids a libc
// dependency (the server's signal handler uses the same trick).
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// Which readiness conditions a registration asks to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Notify when the fd has bytes to read (or the peer shut down its
    /// write half).
    pub readable: bool,
    /// Notify when the fd can accept more bytes.
    pub writable: bool,
}

impl Interest {
    /// Read readiness only — the resting state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read and write readiness — a connection with queued reply bytes.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    /// Write readiness only — a connection paused for backpressure.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut mask = EPOLLRDHUP;
        if self.readable {
            mask |= EPOLLIN;
        }
        if self.writable {
            mask |= EPOLLOUT;
        }
        mask
    }
}

/// One readiness notification, with the registration's token.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token passed at [`Poller::add`] / [`Poller::modify`].
    pub token: u64,
    /// Bytes are readable, or the peer closed its write half.
    pub readable: bool,
    /// The socket can accept more bytes.
    pub writable: bool,
    /// Error or hangup: the connection is dead or dying. Delivered even
    /// when not asked for (epoll always reports these).
    pub hangup: bool,
}

/// One epoll instance. Closed on drop.
pub struct Poller {
    epfd: RawFd,
    /// Kernel-event scratch, reused across waits (no per-tick
    /// allocation).
    raw: Vec<EpollEvent>,
}

impl Poller {
    /// Creates an epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller {
            epfd,
            raw: vec![EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, event: *mut EpollEvent) -> io::Result<()> {
        if unsafe { epoll_ctl(self.epfd, op, fd, event) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given interest; `token` comes back in
    /// every [`Event`] for this fd.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.mask(),
            data: token,
        };
        self.ctl(EPOLL_CTL_ADD, fd, &mut ev)
    }

    /// Replaces an existing registration's interest (and token).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.mask(),
            data: token,
        };
        self.ctl(EPOLL_CTL_MOD, fd, &mut ev)
    }

    /// Removes a registration. Harmless to call for an fd the kernel
    /// already dropped (closing an fd deregisters it implicitly).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // The event argument is ignored for DEL on every kernel this
        // crate targets (pre-2.6.9 required a non-null dummy; so pass
        // one anyway).
        let mut ev = EpollEvent { events: 0, data: 0 };
        self.ctl(EPOLL_CTL_DEL, fd, &mut ev)
    }

    /// Blocks until at least one registration is ready or `timeout_ms`
    /// elapses (`-1` = forever, `0` = poll), filling `events` with what
    /// fired. Returns the number of events; an interrupting signal
    /// (EINTR) returns `Ok(0)` like a timeout, so callers poll their
    /// shutdown flags on a bounded cadence either way.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        events.clear();
        let cap = self.raw.len();
        let n = unsafe { epoll_wait(self.epfd, self.raw.as_mut_ptr(), cap as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in &self.raw[..n as usize] {
            let mask = ev.events;
            events.push(Event {
                token: ev.data,
                readable: mask & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: mask & EPOLLOUT != 0,
                hangup: mask & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn readiness_round_trip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut poller = Poller::new().expect("epoll");
        poller
            .add(listener.as_raw_fd(), 1, Interest::READ)
            .expect("register listener");

        // Nothing pending: a zero timeout returns no events.
        let mut events = Vec::with_capacity(64);
        poller.wait(&mut events, 0).expect("empty wait");
        assert!(events.is_empty());

        // A connect makes the listener readable.
        let mut client = TcpStream::connect(addr).expect("connect");
        poller.wait(&mut events, 2_000).expect("wait accept");
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        let (mut server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        poller
            .add(server_side.as_raw_fd(), 2, Interest::READ)
            .expect("register conn");

        // Level-triggered: the registration stays readable until the
        // bytes are consumed.
        client.write_all(b"ping").expect("write");
        for _ in 0..2 {
            poller.wait(&mut events, 2_000).expect("wait bytes");
            assert!(events.iter().any(|e| e.token == 2 && e.readable));
        }
        let mut buf = [0u8; 8];
        assert_eq!(server_side.read(&mut buf).expect("read"), 4);

        // Peer close reports readable (EOF) on the registration.
        drop(client);
        poller.wait(&mut events, 2_000).expect("wait close");
        let ev = events
            .iter()
            .find(|e| e.token == 2)
            .expect("close notifies");
        assert!(ev.readable || ev.hangup);

        poller.delete(server_side.as_raw_fd()).expect("deregister");
    }

    #[test]
    fn write_interest_fires_and_modify_clears_it() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        client.set_nonblocking(true).expect("nonblocking");
        let _server_side = listener.accept().expect("accept");

        let mut poller = Poller::new().expect("epoll");
        poller
            .add(client.as_raw_fd(), 7, Interest::READ_WRITE)
            .expect("register");
        let mut events = Vec::with_capacity(64);
        poller.wait(&mut events, 2_000).expect("wait writable");
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        // Dropping write interest stops the notifications.
        poller
            .modify(client.as_raw_fd(), 7, Interest::READ)
            .expect("modify");
        poller.wait(&mut events, 0).expect("empty wait");
        assert!(!events.iter().any(|e| e.token == 7 && e.writable));
    }
}
