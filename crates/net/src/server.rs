//! The TCP ingest/query server.
//!
//! One [`Server::bind`] call owns an [`Engine`] behind a mutex and
//! serves the wire protocol to any number of connections:
//!
//! * each connection runs a bounded read loop — frames are decoded out
//!   of a growing buffer, and a *partial* frame that stalls longer than
//!   the read timeout closes the connection (slow-loris defence), while
//!   an idle connection between frames may wait indefinitely;
//! * recoverable decode errors (bad tag, bad version, malformed body)
//!   are answered with a typed [`Frame::Error`] and the connection
//!   stays usable — only a lost framing (oversized length prefix) or a
//!   transport error closes it;
//! * engine admission outcomes are mapped to typed frames: per-advert
//!   `AdmitError` rejections travel as exact counts in the
//!   [`Frame::IngestAck`], and shard-queue `Backpressure` is drained
//!   in-line by interleaving `Engine::process` (never by dropping the
//!   connection);
//! * [`ServerHandle::shutdown`] is graceful and ordered: stop
//!   accepting, let every connection finish (and ack) its buffered
//!   frames, join all threads, then drain every queued shard before
//!   handing the [`Engine`] back to the caller.

use crate::wire::{
    decode_frame_with_limit, encode_frame, frame_size, DecodeError, ErrorCode, FinishSummary,
    Frame, IngestSummary, TracedAck, WireError, WireEstimate, WireMetrics, WireStats,
    DEFAULT_MAX_FRAME_LEN,
};
use locble_ble::BeaconId;
use locble_engine::{Advert, Engine, IngestReport};
use locble_obs::{Obs, Stage, TraceCtx};
use locble_store::SessionStore;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks a free one (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// How long a *partial* frame may stall before the connection is
    /// closed. Also bounds shutdown latency for idle connections.
    pub read_timeout: Duration,
    /// Per-write timeout on replies.
    pub write_timeout: Duration,
    /// Maximum accepted frame payload, bytes.
    pub max_frame_len: usize,
    /// Where flight-recorder dumps go (JSON Lines, written atomically
    /// via tmp + rename). `None` disables every dump trigger.
    pub flight_dump_path: Option<PathBuf>,
    /// Dump once after this many recoverable decode errors accumulate
    /// across all connections (a *decode storm* — a confused or hostile
    /// peer). 0 disables the trigger.
    pub decode_storm_threshold: u64,
    /// Dump on SIGTERM (handler installed at bind; the accept loop
    /// performs the dump and begins shutdown on its next poll tick).
    pub dump_on_sigterm: bool,
    /// Dump on panic (chains onto the existing panic hook; the hook
    /// holds a clone of the server's obs handle for the process
    /// lifetime, which is why this is opt-in).
    pub dump_on_panic: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            flight_dump_path: None,
            decode_storm_threshold: 0,
            dump_on_sigterm: false,
            dump_on_panic: false,
        }
    }
}

/// An attached durability store plus its checkpoint cadence.
struct DurableStore {
    store: SessionStore,
    /// Checkpoint once this many new WAL records accumulate since the
    /// last snapshot; 0 = checkpoint only at shutdown.
    checkpoint_every: u64,
    last_checkpoint: u64,
}

/// State shared by the accept loop and every connection handler.
struct Shared {
    engine: Mutex<Engine>,
    /// Lock ordering: always `engine` first, then `store` — WAL order
    /// must equal offer order, and both are serialized by the engine
    /// lock.
    store: Option<Mutex<DurableStore>>,
    obs: Obs,
    config: ServerConfig,
    shutdown: AtomicBool,
    /// Recoverable decode errors across all connections (decode-storm
    /// trigger).
    decode_errors: AtomicU64,
    /// One flight dump per server lifetime, whichever trigger fires
    /// first.
    dumped: AtomicBool,
}

/// Set by the SIGTERM handler; polled by every accept loop. A signal
/// handler may only do async-signal-safe work, so the dump itself runs
/// on the accept thread.
static SIGTERM_FLAG: AtomicBool = AtomicBool::new(false);

extern "C" fn sigterm_handler(_signum: i32) {
    SIGTERM_FLAG.store(true, Ordering::SeqCst);
}

/// SIGTERM's number on every platform this crate targets.
const SIGTERM: i32 = 15;

fn install_sigterm_handler() {
    // `signal` comes from the C runtime std already links; declaring it
    // here avoids a libc dependency. The return value (the previous
    // handler) is pointer-sized and unused.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGTERM, sigterm_handler);
    }
}

/// Writes the recent event history (JSON Lines) to the configured dump
/// path — atomically, so a crash mid-dump never leaves a torn file — at
/// most once per server. Returns whether this call performed the dump.
fn flight_dump(shared: &Shared, trigger: &'static str) -> bool {
    let Some(path) = &shared.config.flight_dump_path else {
        return false;
    };
    if shared.dumped.swap(true, Ordering::SeqCst) {
        return false;
    }
    shared
        .obs
        .event("net", "flight_dump", &[("trigger", trigger.into())]);
    shared.obs.counter_add("net.flight_dumps", 1);
    let ok = locble_obs::atomic_write(path, shared.obs.events_to_jsonl().as_bytes()).is_ok();
    if !ok {
        shared.obs.counter_add("net.flight_dump_failures", 1);
    }
    ok
}

/// Counts a recoverable decode error toward the decode-storm trigger:
/// crossing the configured threshold dumps the flight recorder once.
fn note_decode_error(shared: &Shared) {
    let threshold = shared.config.decode_storm_threshold;
    if threshold == 0 {
        return;
    }
    if shared.decode_errors.fetch_add(1, Ordering::SeqCst) + 1 == threshold {
        flight_dump(shared, "decode_storm");
    }
}

/// Namespace for [`Server::bind`].
pub struct Server;

impl Server {
    /// Binds a listener, takes ownership of `engine`, and starts
    /// serving. Instrumentation (connection/frame counters, ingest
    /// latency histograms) goes through `obs`.
    pub fn bind(engine: Engine, config: ServerConfig, obs: Obs) -> std::io::Result<ServerHandle> {
        Server::bind_inner(engine, None, config, obs)
    }

    /// [`Server::bind`] with crash-safe durability attached: every
    /// offered advert batch is WAL-logged (under the engine lock,
    /// *before* ingest) through `store`, a snapshot is taken every
    /// `checkpoint_every` WAL records (0 = shutdown only), and shutdown
    /// writes a final checkpoint after the drain. Recover the session
    /// with [`SessionStore::recover`] and pass the engine + store back
    /// here to resume after a crash.
    ///
    /// If a WAL append fails (e.g. disk full) the batch is refused with
    /// a typed `Internal` error and the engine never sees it; records
    /// already durable from the failed append are replayed on recovery
    /// even though the live engine refused the batch — recovery trusts
    /// the log.
    pub fn bind_durable(
        engine: Engine,
        store: SessionStore,
        checkpoint_every: u64,
        config: ServerConfig,
        obs: Obs,
    ) -> std::io::Result<ServerHandle> {
        let last_checkpoint = store.wal_records();
        Server::bind_inner(
            engine,
            Some(DurableStore {
                store,
                checkpoint_every,
                last_checkpoint,
            }),
            config,
            obs,
        )
    }

    fn bind_inner(
        engine: Engine,
        store: Option<DurableStore>,
        config: ServerConfig,
        obs: Obs,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        if config.dump_on_sigterm && config.flight_dump_path.is_some() {
            install_sigterm_handler();
        }
        if config.dump_on_panic {
            if let Some(path) = config.flight_dump_path.clone() {
                let hook_obs = obs.clone();
                let prev = std::panic::take_hook();
                std::panic::set_hook(Box::new(move |info| {
                    let _ = locble_obs::atomic_write(&path, hook_obs.events_to_jsonl().as_bytes());
                    prev(info);
                }));
            }
        }
        let shared = Arc::new(Shared {
            engine: Mutex::new(engine),
            store: store.map(Mutex::new),
            obs: obs.clone(),
            config,
            shutdown: AtomicBool::new(false),
            decode_errors: AtomicU64::new(0),
            dumped: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(ServerHandle {
            addr,
            obs,
            inner: Some(HandleInner { shared, accept }),
        })
    }
}

/// Control handle for a running server. Dropping it without calling
/// [`ServerHandle::shutdown`] still shuts the server down (the drained
/// engine is discarded).
pub struct ServerHandle {
    addr: SocketAddr,
    obs: Obs,
    inner: Option<HandleInner>,
}

struct HandleInner {
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Graceful shutdown. Ordering guarantee: (1) stop accepting, (2)
    /// every connection finishes and acks the frames it has buffered,
    /// (3) all threads join, (4) every still-queued shard sample is
    /// processed — only then is the engine returned, so nothing a
    /// client was ever acked for is lost.
    pub fn shutdown(mut self) -> Engine {
        self.shutdown_inner()
            .expect("shutdown consumes the handle; inner state is present")
    }

    fn shutdown_inner(&mut self) -> Option<Engine> {
        let inner = self.inner.take()?;
        inner.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = inner.accept.join();
        let shared = Arc::try_unwrap(inner.shared)
            .ok()
            .expect("all server threads joined; no other handle owners remain");
        let mut engine = shared
            .engine
            .into_inner()
            .expect("engine mutex not poisoned");
        engine.drain();
        if let Some(store) = shared.store {
            // Final checkpoint: the snapshot captures the fully drained
            // state, so a restart recovers without replaying anything.
            let mut durable = store.into_inner().expect("store mutex not poisoned");
            if durable.store.checkpoint(&engine).is_err() {
                self.obs.counter_add("net.checkpoint_failures", 1);
            }
        }
        Some(engine)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("running", &self.inner.is_some())
            .finish()
    }
}

/// Accepts connections until shutdown, then joins every handler.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        if shared.config.dump_on_sigterm && SIGTERM_FLAG.load(Ordering::SeqCst) {
            // Dump the recent history while it's still warm, then begin
            // the normal graceful shutdown (connections finish and ack
            // their buffered frames; the handle's shutdown still owns
            // the final drain).
            flight_dump(&shared, "sigterm");
            shared.shutdown.store(true, Ordering::SeqCst);
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(&conn_shared, stream)
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
        // Reap finished handlers so a long-lived server does not grow.
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// One connection's read → decode → handle → reply loop.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let obs = &shared.obs;
    obs.counter_add("net.connections_opened", 1);
    let max = shared.config.max_frame_len;
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 16 * 1024];
    'conn: loop {
        // Decode and answer every complete frame in the buffer.
        loop {
            let total = match frame_size(&buf, max) {
                Err(DecodeError::Incomplete { .. }) => break,
                Err(e) => {
                    // Length prefix itself is unusable: framing is lost.
                    obs.counter_add("net.framing_lost", 1);
                    let _ = write_frame(
                        shared,
                        &mut stream,
                        &Frame::Error(WireError {
                            code: ErrorCode::BadFrame,
                            message: e.to_string(),
                        }),
                    );
                    break 'conn;
                }
                Ok(total) => total,
            };
            if buf.len() < total {
                break;
            }
            let decode_t0 = obs.enabled().then(Instant::now);
            let reply = match decode_frame_with_limit(&buf[..total], max) {
                Ok((frame, _)) => {
                    obs.counter_add("net.frames_rx", 1);
                    // A traced batch's decode lap: measured here, where
                    // the trace id first becomes known.
                    if let (Frame::TracedAdvertBatch(ctx, _), Some(t0)) = (&frame, decode_t0) {
                        let duration_us = t0.elapsed().as_micros() as u64;
                        let ctx = ctx.with_stage(Stage::Decode);
                        obs.trace_begin(ctx);
                        obs.trace_stage(
                            ctx.trace_id,
                            Stage::Decode,
                            obs.now_us().saturating_sub(duration_us),
                            duration_us,
                        );
                    }
                    handle_frame(shared, frame)
                }
                Err(e) => {
                    // Recoverable by construction: frame_size accepted
                    // the prefix, so the frame is skippable.
                    obs.counter_add("net.frame_errors", 1);
                    note_decode_error(shared);
                    Frame::Error(WireError {
                        code: match e {
                            DecodeError::BadVersion { .. } => ErrorCode::UnsupportedVersion,
                            _ => ErrorCode::BadFrame,
                        },
                        message: e.to_string(),
                    })
                }
            };
            buf.drain(..total);
            // The ack lap covers encoding + writing the reply; recorded
            // after the write, it lands in the trace table (served via
            // TraceQuery), not in the ack frame itself.
            let traced_ack = match &reply {
                Frame::TracedIngestAck(ack) if obs.enabled() => {
                    Some((ack.ctx.trace_id, obs.now_us(), Instant::now()))
                }
                _ => None,
            };
            if write_frame(shared, &mut stream, &reply).is_err() {
                break 'conn;
            }
            if let Some((trace_id, start_us, t0)) = traced_ack {
                obs.trace_stage(
                    trace_id,
                    Stage::Ack,
                    start_us,
                    t0.elapsed().as_micros() as u64,
                );
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) && buf.is_empty() {
            break;
        }
        match stream.read(&mut scratch) {
            Ok(0) => break,
            Ok(n) => {
                obs.counter_add("net.bytes_rx", n as u64);
                buf.extend_from_slice(&scratch[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if !buf.is_empty() {
                    // A partial frame stalled for a whole read timeout:
                    // slow-loris. Close rather than hold the thread.
                    obs.counter_add("net.read_timeouts", 1);
                    break;
                }
                // Idle between frames: keep waiting (re-checks shutdown).
            }
            Err(_) => break,
        }
    }
    obs.counter_add("net.connections_closed", 1);
}

/// Encodes and writes one reply frame.
fn write_frame(shared: &Shared, stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    let bytes = encode_frame(frame);
    stream.write_all(&bytes)?;
    stream.flush()?;
    shared.obs.counter_add("net.frames_tx", 1);
    shared.obs.counter_add("net.bytes_tx", bytes.len() as u64);
    Ok(())
}

/// Executes one request frame against the engine, producing the reply.
fn handle_frame(shared: &Shared, frame: Frame) -> Frame {
    match frame {
        Frame::AdvertBatch(batch) => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Frame::Error(WireError {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining; ingest refused".to_string(),
                });
            }
            ingest_batch(shared, &batch, None)
        }
        Frame::TracedAdvertBatch(ctx, batch) => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Frame::Error(WireError {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining; ingest refused".to_string(),
                });
            }
            ingest_batch(shared, &batch, Some(ctx))
        }
        Frame::MetricsQuery => {
            Frame::MetricsReport(WireMetrics::from_snapshot(&shared.obs.metrics()))
        }
        Frame::TraceQuery(id) => Frame::TraceReport(match id {
            None => shared.obs.traces(),
            Some(id) => shared.obs.trace_lookup(id).into_iter().collect(),
        }),
        Frame::QuerySnapshot => {
            let engine = shared.engine.lock().expect("engine mutex not poisoned");
            let mut span = shared.obs.span("net", "query_snapshot");
            let estimates: Vec<WireEstimate> = engine
                .snapshot()
                .iter()
                .map(|(b, e)| WireEstimate::from_estimate(*b, e))
                .collect();
            span.field("estimates", estimates.len());
            Frame::Snapshot(estimates)
        }
        Frame::QueryBeacon(beacon) => {
            let engine = shared.engine.lock().expect("engine mutex not poisoned");
            Frame::BeaconReply(
                engine
                    .estimate_of(BeaconId(beacon))
                    .map(|e| WireEstimate::from_estimate(BeaconId(beacon), &e)),
            )
        }
        Frame::QueryStats => {
            let engine = shared.engine.lock().expect("engine mutex not poisoned");
            Frame::Stats(WireStats::from_engine(engine.stats(), engine.queued()))
        }
        Frame::Finish => {
            let mut engine = shared.engine.lock().expect("engine mutex not poisoned");
            let mut span = shared.obs.span("net", "finish");
            let report = engine.finish();
            span.field("samples", report.samples_processed);
            Frame::FinishAck(FinishSummary {
                samples_processed: report.samples_processed as u64,
                batches_pushed: report.batches_pushed as u64,
            })
        }
        Frame::IngestAck(_)
        | Frame::TracedIngestAck(_)
        | Frame::MetricsReport(_)
        | Frame::TraceReport(_)
        | Frame::Snapshot(_)
        | Frame::BeaconReply(_)
        | Frame::Stats(_)
        | Frame::FinishAck(_)
        | Frame::Error(_) => Frame::Error(WireError {
            code: ErrorCode::BadFrame,
            message: "reply frame sent as a request".to_string(),
        }),
    }
}

/// Ingests one batch, draining shard-queue backpressure in-line so the
/// whole batch is always consumed (mirrors `Engine::ingest_all`, with
/// per-drain instrumentation). With a trace context the batch's WAL,
/// route, shard-queue and refit laps are recorded and the reply is a
/// [`Frame::TracedIngestAck`] carrying the laps closed so far — the
/// estimates themselves are identical either way (telemetry never
/// feeds the math).
fn ingest_batch(
    shared: &Shared,
    batch: &[crate::wire::WireAdvert],
    ctx: Option<TraceCtx>,
) -> Frame {
    let adverts: Vec<Advert> = batch.iter().map(|a| Advert::from(*a)).collect();
    let mut span = shared.obs.span("net", "ingest_batch");
    span.field("adverts", adverts.len());
    let mut engine = shared.engine.lock().expect("engine mutex not poisoned");
    if let Some(store) = &shared.store {
        // Write-ahead: the batch must be durable before the engine can
        // see it, in offer order (both serialized by the engine lock).
        let mut durable = store.lock().expect("store mutex not poisoned");
        let wal_t0 = ctx.and_then(|_| shared.obs.enabled().then(Instant::now));
        if let Err(e) = durable.store.append(&adverts) {
            shared.obs.counter_add("net.wal_failures", 1);
            span.field("wal_failed", true);
            return Frame::Error(WireError {
                code: ErrorCode::Internal,
                message: format!("durability append failed; batch refused: {e}"),
            });
        }
        if let (Some(ctx), Some(t0)) = (ctx, wal_t0) {
            let duration_us = t0.elapsed().as_micros() as u64;
            shared.obs.trace_stage(
                ctx.trace_id,
                Stage::Wal,
                shared.obs.now_us().saturating_sub(duration_us),
                duration_us,
            );
        }
    }
    let mut total = IngestReport::default();
    let mut offset = 0;
    while offset < adverts.len() {
        let report = match ctx {
            Some(ctx) => engine.ingest_traced(&adverts[offset..], ctx, &shared.obs),
            None => engine.ingest(&adverts[offset..]),
        };
        offset += report.consumed;
        total.absorb(report);
        if offset < adverts.len() {
            // Backpressure: a shard queue is full. Drain and re-offer
            // instead of surfacing an error or dropping the connection.
            shared.obs.counter_add("net.backpressure_drains", 1);
            engine.process();
            if report.consumed == 0 && engine.queued() > 0 {
                // Defensive: draining freed nothing, so no progress is
                // possible. Unreachable with the current engine, but a
                // stuck loop must never hold the engine lock forever.
                span.field("stalled", true);
                return Frame::Error(WireError {
                    code: ErrorCode::Backpressure,
                    message: format!(
                        "ingest stalled with {} samples queued after a drain",
                        engine.queued()
                    ),
                });
            }
        }
    }
    if let Some(store) = &shared.store {
        // Checkpoint after ingest, so the snapshot's WAL position and
        // the engine state agree (a snapshot taken between append and
        // ingest would skip records the state doesn't contain).
        let mut durable = store.lock().expect("store mutex not poisoned");
        let records = durable.store.wal_records();
        if durable.checkpoint_every > 0
            && records - durable.last_checkpoint >= durable.checkpoint_every
        {
            match durable.store.checkpoint(&engine) {
                Ok(_) => durable.last_checkpoint = records,
                Err(_) => shared.obs.counter_add("net.checkpoint_failures", 1),
            }
        }
    }
    if ctx.is_some() {
        // Close the batch's pending trace marks (shard-queue wait +
        // refit laps) before acking, so the ack can carry them. Extra
        // process calls are safe: they never perturb estimates.
        engine.process();
    }
    drop(engine);
    let summary = IngestSummary::from(total);
    span.field("routed", summary.routed);
    span.field("rejected", summary.rejected());
    shared.obs.counter_add("net.adverts_rx", summary.consumed);
    shared.obs.counter_add("net.adverts_routed", summary.routed);
    if summary.rejected() > 0 {
        shared
            .obs
            .counter_add("net.adverts_rejected", summary.rejected());
    }
    match ctx {
        Some(ctx) => {
            // Laps closed so far travel in the ack; the ack lap itself
            // is recorded after the write and lands only in the server's
            // trace table (fetch it with a TraceQuery).
            let (ctx, laps) = match shared.obs.trace_lookup(ctx.trace_id) {
                Some(record) => (record.ctx, record.laps),
                None => (ctx, Vec::new()),
            };
            Frame::TracedIngestAck(TracedAck { summary, ctx, laps })
        }
        None => Frame::IngestAck(summary),
    }
}
