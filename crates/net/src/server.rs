//! The TCP ingest/query server — a single-threaded epoll reactor.
//!
//! One [`Server::bind`] call owns an [`Engine`] behind a mutex and
//! serves the wire protocol to any number of connections from one
//! readiness-driven event loop (no thread per connection):
//!
//! * every connection is nonblocking; a [`crate::conn::FrameAssembler`]
//!   carries partial frames across readiness events, and a *partial*
//!   frame that stalls longer than the read timeout closes the
//!   connection via the timer wheel (slow-loris defence), while an idle
//!   connection between frames may wait indefinitely;
//! * recoverable decode errors (bad tag, bad version, malformed body)
//!   are answered with a typed [`Frame::Error`] and the connection
//!   stays usable — only a lost framing (oversized length prefix) or a
//!   transport error closes it;
//! * requests decoded during a tick are *coalesced*: the reactor locks
//!   the engine once at tick end, executes every connection's queued
//!   requests in arrival order, then runs a single `Engine::process`
//!   pass that drains what all of them enqueued — one engine pass
//!   serves many clients;
//! * engine admission outcomes are mapped to typed frames: per-advert
//!   `AdmitError` rejections travel as exact counts in the
//!   [`Frame::IngestAck`], and shard-queue `Backpressure` is drained
//!   in-line by interleaving `Engine::process` (never by dropping the
//!   connection);
//! * replies queue into per-connection write buffers flushed on write
//!   readiness; a peer that never reads its acks trips write
//!   backpressure, which pauses *reading* from that peer until the
//!   buffer drains — the event loop itself never blocks;
//! * [`ServerHandle::shutdown`] is graceful and ordered: stop
//!   accepting, execute + ack every complete frame connections have
//!   buffered (ingest is refused with `ShuttingDown`), flush within the
//!   write-timeout grace, join the reactor, then drain every queued
//!   shard before handing the [`Engine`] back to the caller.

use crate::client::{Client, ClientError};
use crate::conn::{Assembled, Conn, Flush, TimerWheel, WRITE_BACKPRESSURE_BYTES};
use crate::poll::{Event, Interest, Poller};
use crate::wire::{
    encode_frame, ClusterSummary, DecodeError, ErrorCode, FinishSummary, Frame, IngestSummary,
    NodeRole, TracedAck, WireError, WireEstimate, WireMetrics, WirePartitionMap, WireStats,
    DEFAULT_MAX_FRAME_LEN,
};
use locble_ble::BeaconId;
use locble_engine::{Advert, Engine, IngestReport};
use locble_obs::{Obs, Stage, TraceCtx};
use locble_store::{SessionStore, WalTailer, WAL_FILE};
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::io::AsRawFd;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks a free one (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// How long a *partial* frame may stall before the connection is
    /// closed. Also sets the timer wheel's granularity (1/32 of this).
    pub read_timeout: Duration,
    /// Grace period for flushing replies to a peer that has stopped
    /// reading (lingering close, shutdown flush).
    pub write_timeout: Duration,
    /// Maximum accepted frame payload, bytes.
    pub max_frame_len: usize,
    /// Where flight-recorder dumps go (JSON Lines, written atomically
    /// via tmp + rename). `None` disables every dump trigger.
    pub flight_dump_path: Option<PathBuf>,
    /// Dump once after this many recoverable decode errors accumulate
    /// across all connections (a *decode storm* — a confused or hostile
    /// peer). 0 disables the trigger.
    pub decode_storm_threshold: u64,
    /// Dump on SIGTERM (handler installed at bind; the reactor performs
    /// the dump and begins shutdown on its next tick).
    pub dump_on_sigterm: bool,
    /// Dump on panic (chains onto the existing panic hook; the hook
    /// holds a clone of the server's obs handle for the process
    /// lifetime, which is why this is opt-in).
    pub dump_on_panic: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            flight_dump_path: None,
            decode_storm_threshold: 0,
            dump_on_sigterm: false,
            dump_on_panic: false,
        }
    }
}

/// When an owner may ack a batch relative to WAL replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationPolicy {
    /// Ack once the local WAL holds the batch. Records still stream to
    /// the follower on the ingest path, but a replication failure is
    /// tolerated: it is counted (`net.replication_failures`), the link
    /// is dropped, and the node keeps serving unreplicated.
    LocalOnly,
    /// Ack only after the follower has acked the batch's records
    /// durable. A replication failure refuses the batch with a typed
    /// `Internal` error (the local WAL keeps the records — recovery
    /// trusts the log, as with a failed append) and then degrades the
    /// node to unreplicated serving, so a dead follower cannot wedge
    /// the owner.
    SyncAck,
}

/// What a reactor needs to take part in a cluster
/// ([`Server::bind_cluster`]).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Stable node id — the rendezvous-hash identity. It must survive
    /// restarts *and* failover: a promoted follower keeps its dead
    /// owner's id, which is what keeps the partition assignment fixed.
    pub node_id: u64,
    /// Role at startup ([`NodeRole::Owner`] or [`NodeRole::Follower`];
    /// the front role lives in `locble-cluster`, not in this reactor).
    pub role: NodeRole,
    /// Initial membership view.
    pub map: WirePartitionMap,
    /// Follower to stream WAL records to (owners only). The follower
    /// must already be listening: the link attaches at bind.
    pub replica_addr: Option<String>,
    /// When a batch may be acked.
    pub replication: ReplicationPolicy,
}

/// How many WAL records one `Replicate` frame carries at most.
const REPLICATE_CHUNK: usize = 4096;

/// Flattens a client-layer failure into the io error the replication
/// path reports.
fn client_io(e: ClientError) -> std::io::Error {
    std::io::Error::other(e.to_string())
}

/// The owner → follower replication link: a blocking protocol client
/// plus a [`WalTailer`] over the owner's *own* WAL file. The WAL is the
/// replication stream — whatever the ingest path made durable locally
/// is exactly what the tailer emits, so the follower's log is a byte
/// prefix of the owner's by construction.
struct ReplicaLink {
    client: Client,
    tailer: WalTailer,
    /// Records the follower has acked durable.
    durable: u64,
    /// Per-link replication sequence number.
    seq: u64,
}

impl ReplicaLink {
    /// Connects to the follower, asks how many records it already holds
    /// (a crash-recovered follower resumes mid-log), and positions the
    /// tailer past them.
    fn attach(replica_addr: &str, wal_path: &Path) -> std::io::Result<ReplicaLink> {
        let mut client = Client::connect(replica_addr).map_err(client_io)?;
        let summary = client.cluster().map_err(client_io)?;
        let durable = summary.replicated_records;
        let mut tailer = WalTailer::open(wal_path);
        let skipped = tailer.skip(durable)?;
        if skipped != durable {
            return Err(std::io::Error::other(format!(
                "follower already holds {durable} records but the local WAL has only {skipped}"
            )));
        }
        Ok(ReplicaLink {
            client,
            tailer,
            durable,
            seq: 0,
        })
    }

    /// Streams every WAL record appended since the last call and waits
    /// for the follower's durable ack; returns its new durable count.
    fn pump(&mut self) -> std::io::Result<u64> {
        loop {
            let records = self.tailer.poll(REPLICATE_CHUNK)?;
            if records.is_empty() {
                return Ok(self.durable);
            }
            let sent = records.len() as u64;
            self.seq += 1;
            let durable = self
                .client
                .replicate(self.seq, self.durable, &records)
                .map_err(client_io)?;
            if durable != self.durable + sent {
                return Err(std::io::Error::other(format!(
                    "follower acked {durable} durable records, expected {}",
                    self.durable + sent
                )));
            }
            self.durable = durable;
        }
    }
}

/// A node's live cluster state (absent on standalone servers).
struct ClusterState {
    node_id: u64,
    role: NodeRole,
    map: WirePartitionMap,
    /// The address peers reach this node at (the bound listener) —
    /// compared against the node's own map entry to detect promotion
    /// and demotion when a new map is installed.
    listen_addr: String,
    replication: ReplicationPolicy,
    /// Live link to this owner's follower (owners that have one).
    link: Option<ReplicaLink>,
}

/// An attached durability store plus its checkpoint cadence.
struct DurableStore {
    store: SessionStore,
    /// Checkpoint once this many new WAL records accumulate since the
    /// last snapshot; 0 = checkpoint only at shutdown.
    checkpoint_every: u64,
    last_checkpoint: u64,
}

/// State shared by the reactor thread and the control handle.
struct Shared {
    engine: Mutex<Engine>,
    /// Lock ordering: always `engine` first, then `store` — WAL order
    /// must equal offer order, and both are serialized by the engine
    /// lock.
    store: Option<Mutex<DurableStore>>,
    /// Cluster attachment; locked after `engine` (and never while
    /// `store` is held — the replication stream reads the WAL *file*,
    /// not the store).
    cluster: Option<Mutex<ClusterState>>,
    obs: Obs,
    config: ServerConfig,
    shutdown: AtomicBool,
    /// Recoverable decode errors across all connections (decode-storm
    /// trigger).
    decode_errors: AtomicU64,
    /// One flight dump per server lifetime, whichever trigger fires
    /// first.
    dumped: AtomicBool,
}

/// Set by the SIGTERM handler; polled by every reactor tick. A signal
/// handler may only do async-signal-safe work, so the dump itself runs
/// on the reactor thread.
static SIGTERM_FLAG: AtomicBool = AtomicBool::new(false);

extern "C" fn sigterm_handler(_signum: i32) {
    SIGTERM_FLAG.store(true, Ordering::SeqCst);
}

/// SIGTERM's number on every platform this crate targets.
const SIGTERM: i32 = 15;

fn install_sigterm_handler() {
    // `signal` comes from the C runtime std already links; declaring it
    // here avoids a libc dependency. The return value (the previous
    // handler) is pointer-sized and unused.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGTERM, sigterm_handler);
    }
}

/// Writes the recent event history (JSON Lines) to the configured dump
/// path — atomically, so a crash mid-dump never leaves a torn file — at
/// most once per server. Returns whether this call performed the dump.
fn flight_dump(shared: &Shared, trigger: &'static str) -> bool {
    let Some(path) = &shared.config.flight_dump_path else {
        return false;
    };
    if shared.dumped.swap(true, Ordering::SeqCst) {
        return false;
    }
    shared
        .obs
        .event("net", "flight_dump", &[("trigger", trigger.into())]);
    shared.obs.counter_add("net.flight_dumps", 1);
    let ok = locble_obs::atomic_write(path, shared.obs.events_to_jsonl().as_bytes()).is_ok();
    if !ok {
        shared.obs.counter_add("net.flight_dump_failures", 1);
    }
    ok
}

/// Counts a recoverable decode error toward the decode-storm trigger:
/// crossing the configured threshold dumps the flight recorder once.
fn note_decode_error(shared: &Shared) {
    let threshold = shared.config.decode_storm_threshold;
    if threshold == 0 {
        return;
    }
    if shared.decode_errors.fetch_add(1, Ordering::SeqCst) + 1 == threshold {
        flight_dump(shared, "decode_storm");
    }
}

/// Namespace for [`Server::bind`].
pub struct Server;

impl Server {
    /// Binds a listener, takes ownership of `engine`, and starts the
    /// reactor. Instrumentation (connection/frame counters, ingest
    /// latency histograms, reactor pass metrics) goes through `obs`.
    pub fn bind(engine: Engine, config: ServerConfig, obs: Obs) -> std::io::Result<ServerHandle> {
        Server::bind_inner(engine, None, None, config, obs)
    }

    /// [`Server::bind`] with crash-safe durability attached: every
    /// offered advert batch is WAL-logged (under the engine lock,
    /// *before* ingest) through `store`, a snapshot is taken every
    /// `checkpoint_every` WAL records (0 = shutdown only), and shutdown
    /// writes a final checkpoint after the drain. Recover the session
    /// with [`SessionStore::recover`] and pass the engine + store back
    /// here to resume after a crash.
    ///
    /// If a WAL append fails (e.g. disk full) the batch is refused with
    /// a typed `Internal` error and the engine never sees it; records
    /// already durable from the failed append are replayed on recovery
    /// even though the live engine refused the batch — recovery trusts
    /// the log.
    pub fn bind_durable(
        engine: Engine,
        store: SessionStore,
        checkpoint_every: u64,
        config: ServerConfig,
        obs: Obs,
    ) -> std::io::Result<ServerHandle> {
        let last_checkpoint = store.wal_records();
        Server::bind_inner(
            engine,
            Some(DurableStore {
                store,
                checkpoint_every,
                last_checkpoint,
            }),
            None,
            config,
            obs,
        )
    }

    /// [`Server::bind_durable`] with a cluster attachment: the node
    /// serves the cluster frames (`Forward`/`Replicate`/`PartitionMap`/
    /// `ClusterQuery`/`Handoff`/…) alongside the ordinary protocol and —
    /// when `cluster.replica_addr` is set — streams every WAL record to
    /// that follower on the ingest path, acking clients per
    /// `cluster.replication`. The follower must already be listening:
    /// the link attaches here, querying how many records the follower
    /// holds and positioning the WAL tailer past them, so a recovered
    /// pair resumes mid-log without re-sending.
    ///
    /// A follower-role node refuses direct `AdvertBatch` ingest (only
    /// its owner's `Replicate` stream may feed its engine — the
    /// divergence guard that makes promotion lossless); it flips to
    /// serving when a newer [`Frame::PartitionMap`] lists this node's
    /// own address under its node id.
    pub fn bind_cluster(
        engine: Engine,
        store: SessionStore,
        checkpoint_every: u64,
        config: ServerConfig,
        cluster: ClusterConfig,
        obs: Obs,
    ) -> std::io::Result<ServerHandle> {
        let last_checkpoint = store.wal_records();
        Server::bind_inner(
            engine,
            Some(DurableStore {
                store,
                checkpoint_every,
                last_checkpoint,
            }),
            Some(cluster),
            config,
            obs,
        )
    }

    fn bind_inner(
        engine: Engine,
        store: Option<DurableStore>,
        cluster: Option<ClusterConfig>,
        config: ServerConfig,
        obs: Obs,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let cluster = match cluster {
            None => None,
            Some(cfg) => {
                let link = match (&cfg.replica_addr, &store) {
                    (Some(replica), Some(durable)) => {
                        let wal_path = durable.store.dir().join(WAL_FILE);
                        Some(ReplicaLink::attach(replica, &wal_path)?)
                    }
                    (Some(_), None) => {
                        return Err(std::io::Error::other(
                            "a replica link requires a durability store \
                             (the WAL is the replication stream)",
                        ));
                    }
                    (None, _) => None,
                };
                Some(ClusterState {
                    node_id: cfg.node_id,
                    role: cfg.role,
                    map: cfg.map,
                    listen_addr: addr.to_string(),
                    replication: cfg.replication,
                    link,
                })
            }
        };
        if config.dump_on_sigterm && config.flight_dump_path.is_some() {
            install_sigterm_handler();
        }
        if config.dump_on_panic {
            if let Some(path) = config.flight_dump_path.clone() {
                let hook_obs = obs.clone();
                let prev = std::panic::take_hook();
                std::panic::set_hook(Box::new(move |info| {
                    let _ = locble_obs::atomic_write(&path, hook_obs.events_to_jsonl().as_bytes());
                    prev(info);
                }));
            }
        }
        let shared = Arc::new(Shared {
            engine: Mutex::new(engine),
            store: store.map(Mutex::new),
            cluster: cluster.map(Mutex::new),
            obs: obs.clone(),
            config,
            shutdown: AtomicBool::new(false),
            decode_errors: AtomicU64::new(0),
            dumped: AtomicBool::new(false),
        });
        let reactor_shared = Arc::clone(&shared);
        let reactor = std::thread::spawn(move || reactor_loop(listener, reactor_shared));
        Ok(ServerHandle {
            addr,
            obs,
            inner: Some(HandleInner { shared, reactor }),
        })
    }
}

/// Control handle for a running server. Dropping it without calling
/// [`ServerHandle::shutdown`] still shuts the server down (the drained
/// engine is discarded).
pub struct ServerHandle {
    addr: SocketAddr,
    obs: Obs,
    inner: Option<HandleInner>,
}

struct HandleInner {
    shared: Arc<Shared>,
    reactor: JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Graceful shutdown. Ordering guarantee: (1) stop accepting, (2)
    /// every connection's buffered complete frames are executed and
    /// acked, (3) the reactor joins, (4) every still-queued shard
    /// sample is processed — only then is the engine returned, so
    /// nothing a client was ever acked for is lost.
    pub fn shutdown(mut self) -> Engine {
        self.shutdown_inner()
            .expect("shutdown consumes the handle; inner state is present")
    }

    fn shutdown_inner(&mut self) -> Option<Engine> {
        let inner = self.inner.take()?;
        inner.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = inner.reactor.join();
        let shared = Arc::try_unwrap(inner.shared)
            .ok()
            .expect("the reactor joined; no other handle owners remain");
        let mut engine = shared
            .engine
            .into_inner()
            .expect("engine mutex not poisoned");
        engine.drain();
        if let Some(store) = shared.store {
            // Final checkpoint: the snapshot captures the fully drained
            // state, so a restart recovers without replaying anything.
            let mut durable = store.into_inner().expect("store mutex not poisoned");
            if durable.store.checkpoint(&engine).is_err() {
                self.obs.counter_add("net.checkpoint_failures", 1);
            }
        }
        Some(engine)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("running", &self.inner.is_some())
            .finish()
    }
}

/// The listener's registration token; connections use their slab index.
const LISTENER_TOKEN: u64 = u64::MAX;

/// Epoll wait bound per tick, so the shutdown/SIGTERM flags and timer
/// deadlines are polled on the same cadence the old accept loop used.
const TICK_MS: i32 = 2;

/// Timer wheel slots: with granularity `read_timeout / 32` the horizon
/// is two read timeouts, so a freshly armed deadline always fits.
const WHEEL_SLOTS: usize = 64;

/// One unit of work queued on a connection between its readiness event
/// and the tick-end engine pass.
enum Op {
    /// A decoded request awaiting execution. `decoded_us` is nonzero
    /// for traced batches: when decode finished, the start of the
    /// coalesce lap.
    Request { frame: Frame, decoded_us: u64 },
    /// A preformed reply (recoverable decode error) that skips the
    /// engine.
    Reply(Frame),
}

/// One slab entry: the connection plus the reactor's per-tick state.
struct Slot {
    conn: Conn,
    /// Work decoded this tick, executed in arrival order at tick end.
    ops: VecDeque<Op>,
    /// Already on the tick's dirty list.
    dirty: bool,
    /// The interest currently registered with the poller.
    interest: Interest,
}

/// The event loop: owns the poller, the connection slab, and the timer
/// wheel; shares the engine with the control handle.
struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    listener: TcpListener,
    slots: Vec<Option<Slot>>,
    /// Free slab indices, reusable by accepts.
    free: Vec<usize>,
    /// Indices freed during the current tick. Merged into `free` only
    /// at tick end, so a stale event later in the same batch finds
    /// `None` instead of an unrelated new connection.
    freed_this_tick: Vec<usize>,
    /// Connections with queued ops, in first-dirtied order.
    dirty: Vec<usize>,
    wheel: TimerWheel,
    scratch: Vec<u8>,
}

/// Runs the reactor until shutdown, then drains and closes everything.
fn reactor_loop(listener: TcpListener, shared: Arc<Shared>) {
    let poller = match Poller::new() {
        Ok(p) => p,
        // Without a readiness source the loop cannot serve; exiting
        // leaves the handle's shutdown path fully functional.
        Err(_) => return,
    };
    if poller
        .add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
        .is_err()
    {
        return;
    }
    let wheel = TimerWheel::new(shared.config.read_timeout / 32, WHEEL_SLOTS, Instant::now());
    let mut reactor = Reactor {
        shared,
        poller,
        listener,
        slots: Vec::new(),
        free: Vec::new(),
        freed_this_tick: Vec::new(),
        dirty: Vec::new(),
        wheel,
        scratch: vec![0u8; 64 * 1024],
    };
    reactor.run();
}

impl Reactor {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::with_capacity(1024);
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            if self.shared.config.dump_on_sigterm && SIGTERM_FLAG.load(Ordering::SeqCst) {
                // Dump the recent history while it's still warm, then
                // begin the normal graceful shutdown.
                flight_dump(&self.shared, "sigterm");
                self.shared.shutdown.store(true, Ordering::SeqCst);
                break;
            }
            if self.poller.wait(&mut events, TICK_MS).is_err() {
                // EINTR already folds into Ok(0); any other failure of
                // the readiness source is unrecoverable for this loop.
                break;
            }
            for &ev in &events {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready();
                } else {
                    self.conn_ready(ev);
                }
            }
            self.execute_dirty();
            self.fire_timers(Instant::now());
            let freed = std::mem::take(&mut self.freed_this_tick);
            self.free.extend(freed);
        }
        self.shutdown_drain();
    }

    /// Accepts until the listener would block.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let idx = match self.free.pop() {
                        Some(idx) => idx,
                        None => {
                            self.slots.push(None);
                            self.slots.len() - 1
                        }
                    };
                    if self.poller.add(fd, idx as u64, Interest::READ).is_err() {
                        // Cannot watch it: drop the connection, keep
                        // the slot.
                        self.free.push(idx);
                        continue;
                    }
                    self.slots[idx] = Some(Slot {
                        conn: Conn::new(stream, self.shared.config.max_frame_len),
                        ops: VecDeque::new(),
                        dirty: false,
                        interest: Interest::READ,
                    });
                    self.shared.obs.counter_add("net.connections_opened", 1);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    /// Dispatches one connection readiness event.
    fn conn_ready(&mut self, ev: Event) {
        let idx = ev.token as usize;
        if self.slots.get(idx).is_none_or(|s| s.is_none()) {
            // Closed earlier in this same tick; stale event.
            return;
        }
        if ev.writable && !self.flush_ready(idx) {
            return;
        }
        if ev.readable || ev.hangup {
            self.read_ready(idx);
        }
    }

    /// Write readiness: drain the buffer; a drained lingering close
    /// completes here. Returns whether the connection is still open.
    fn flush_ready(&mut self, idx: usize) -> bool {
        let slot = self.slots[idx].as_mut().expect("caller checked");
        match slot.conn.flush() {
            Ok(Flush::Drained) => {
                if slot.conn.close_after_flush {
                    self.close(idx);
                    return false;
                }
                slot.conn.paused = false;
                self.sync_interest(idx);
                true
            }
            Ok(Flush::Pending) => true,
            Err(_) => {
                self.close(idx);
                false
            }
        }
    }

    /// Read readiness: pull bytes, assemble frames into ops, manage the
    /// slow-loris deadline.
    fn read_ready(&mut self, idx: usize) {
        {
            let slot = self.slots[idx].as_ref().expect("caller checked");
            if slot.conn.paused {
                // Backpressure: leave the bytes in the kernel buffer
                // until the peer drains its replies.
                return;
            }
        }
        let read = {
            let slot = self.slots[idx].as_mut().expect("caller checked");
            slot.conn.read_ready(&mut self.scratch)
        };
        let n = match read {
            Ok(n) => n,
            Err(_) => {
                self.close(idx);
                return;
            }
        };
        if n > 0 {
            self.shared.obs.counter_add("net.bytes_rx", n as u64);
        }
        self.drain_assembler(idx);
        let slot = self.slots[idx].as_mut().expect("still open");
        if !slot.ops.is_empty() && !slot.dirty {
            slot.dirty = true;
            self.dirty.push(idx);
        }
        if slot.conn.peer_eof {
            // Execute what arrived before EOF, flush the replies, then
            // close (the blocking server answered pre-EOF frames too).
            slot.conn.close_after_flush = true;
        }
        // Slow-loris deadline: armed while a partial frame is pending,
        // re-armed on every byte of progress, disarmed when the buffer
        // empties — an idle connection waits forever.
        if slot.conn.assembler.buffered() > 0 && !slot.conn.close_after_flush {
            if n > 0 || slot.conn.deadline.is_none() {
                slot.conn.timer_gen += 1;
                let deadline = Instant::now() + self.shared.config.read_timeout;
                slot.conn.deadline = Some(deadline);
                let gen = slot.conn.timer_gen;
                self.wheel.arm(idx, gen, deadline);
            }
        } else if slot.conn.deadline.is_some() {
            slot.conn.timer_gen += 1;
            slot.conn.deadline = None;
        }
        let idle_close =
            slot.conn.close_after_flush && slot.ops.is_empty() && slot.conn.write_backlog() == 0;
        if idle_close {
            self.close(idx);
        }
    }

    /// Pulls every completed frame out of the assembler into the op
    /// queue, drawing the recoverable-vs-framing-lost line.
    fn drain_assembler(&mut self, idx: usize) {
        let shared = Arc::clone(&self.shared);
        let obs = &shared.obs;
        let Some(slot) = self.slots[idx].as_mut() else {
            return;
        };
        if slot.conn.close_after_flush {
            // Framing already lost (or EOF already seen): whatever else
            // is buffered is not trusted.
            return;
        }
        loop {
            let decode_t0 = obs.enabled().then(Instant::now);
            match slot.conn.assembler.next_frame() {
                Ok(Some(Assembled::Frame(frame))) => {
                    obs.counter_add("net.frames_rx", 1);
                    let mut decoded_us = 0;
                    // A traced batch's decode lap: measured here, where
                    // the trace id first becomes known.
                    if let (Frame::TracedAdvertBatch(ctx, _), Some(t0)) = (&frame, decode_t0) {
                        let duration_us = t0.elapsed().as_micros() as u64;
                        let ctx = ctx.with_stage(Stage::Decode);
                        obs.trace_begin(ctx);
                        let now_us = obs.now_us();
                        obs.trace_stage(
                            ctx.trace_id,
                            Stage::Decode,
                            now_us.saturating_sub(duration_us),
                            duration_us,
                        );
                        decoded_us = now_us;
                    }
                    slot.ops.push_back(Op::Request { frame, decoded_us });
                }
                Ok(Some(Assembled::Skipped(e))) => {
                    // Recoverable by construction: the length prefix
                    // was accepted, so the frame was skippable.
                    obs.counter_add("net.frame_errors", 1);
                    note_decode_error(&shared);
                    slot.ops.push_back(Op::Reply(Frame::Error(WireError {
                        code: match e {
                            DecodeError::BadVersion { .. } => ErrorCode::UnsupportedVersion,
                            _ => ErrorCode::BadFrame,
                        },
                        message: e.to_string(),
                    })));
                }
                Ok(None) => break,
                Err(e) => {
                    // Length prefix itself is unusable: framing is
                    // lost. Report once, then close after the reply
                    // flushes.
                    obs.counter_add("net.framing_lost", 1);
                    slot.ops.push_back(Op::Reply(Frame::Error(WireError {
                        code: ErrorCode::BadFrame,
                        message: e.to_string(),
                    })));
                    slot.conn.close_after_flush = true;
                    break;
                }
            }
        }
    }

    /// The tick-end engine pass: one lock, every dirty connection's ops
    /// in order, then a single coalesced `process` that drains what all
    /// of them enqueued.
    fn execute_dirty(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        let dirty = std::mem::take(&mut self.dirty);
        let shared = Arc::clone(&self.shared);
        let obs = &shared.obs;
        let mut engine = shared.engine.lock().expect("engine mutex not poisoned");
        let mut executed: u64 = 0;
        for idx in dirty {
            if self.slots[idx].is_none() {
                continue;
            }
            let mut close_now = false;
            {
                let slot = self.slots[idx].as_mut().expect("checked above");
                slot.dirty = false;
                while let Some(op) = slot.ops.pop_front() {
                    let reply = match op {
                        Op::Reply(frame) => frame,
                        Op::Request { frame, decoded_us } => {
                            if decoded_us > 0 {
                                if let Frame::TracedAdvertBatch(ctx, _) = &frame {
                                    // Coalesce lap: how long the decoded
                                    // batch waited for this engine pass.
                                    let now_us = obs.now_us();
                                    obs.trace_stage(
                                        ctx.trace_id,
                                        Stage::Coalesce,
                                        decoded_us,
                                        now_us.saturating_sub(decoded_us),
                                    );
                                }
                            }
                            handle_frame(&shared, &mut engine, frame)
                        }
                    };
                    executed += 1;
                    // The ack lap covers encoding + handing the reply to
                    // the transport; recorded after the flush attempt,
                    // it lands in the trace table (served via
                    // TraceQuery), not in the ack frame itself.
                    let traced_ack = match &reply {
                        Frame::TracedIngestAck(ack) if obs.enabled() => {
                            Some((ack.ctx.trace_id, obs.now_us(), Instant::now()))
                        }
                        _ => None,
                    };
                    let bytes = encode_frame(&reply);
                    slot.conn.queue(&bytes);
                    obs.counter_add("net.frames_tx", 1);
                    obs.counter_add("net.bytes_tx", bytes.len() as u64);
                    if slot.conn.flush().is_err() {
                        close_now = true;
                        break;
                    }
                    if let Some((trace_id, start_us, t0)) = traced_ack {
                        obs.trace_stage(
                            trace_id,
                            Stage::Ack,
                            start_us,
                            t0.elapsed().as_micros() as u64,
                        );
                    }
                }
                if !close_now {
                    // A peer that never reads its acks: pause reading
                    // until write readiness drains the backlog.
                    slot.conn.paused = slot.conn.write_backlog() > WRITE_BACKPRESSURE_BYTES;
                    if slot.conn.close_after_flush && slot.conn.write_backlog() == 0 {
                        close_now = true;
                    }
                }
            }
            if close_now {
                self.close(idx);
                continue;
            }
            self.sync_interest(idx);
            // A lingering close (framing lost / EOF) with replies still
            // queued must not outlive a peer that never drains them:
            // bound it by the write timeout. `close_after_flush` means
            // reads stopped, so the slow-loris deadline is free.
            let arm = {
                let slot = self.slots[idx].as_mut().expect("open");
                if slot.conn.close_after_flush && slot.conn.deadline.is_none() {
                    slot.conn.timer_gen += 1;
                    let deadline = Instant::now() + self.shared.config.write_timeout;
                    slot.conn.deadline = Some(deadline);
                    Some((slot.conn.timer_gen, deadline))
                } else {
                    None
                }
            };
            if let Some((gen, deadline)) = arm {
                self.wheel.arm(idx, gen, deadline);
            }
        }
        if engine.queued() > 0 {
            // The coalesced drain: one pass serves every connection
            // that ingested this tick.
            obs.counter_add("net.reactor.coalesced_passes", 1);
            engine.process();
        }
        drop(engine);
        obs.histogram_observe("net.reactor.ops_per_tick", executed as f64);
    }

    /// Fires elapsed timer-wheel entries, validating each against the
    /// connection's live deadline and generation.
    fn fire_timers(&mut self, now: Instant) {
        for (idx, gen) in self.wheel.advance(now) {
            let Some(slot) = self.slots.get_mut(idx).and_then(|s| s.as_mut()) else {
                continue;
            };
            if slot.conn.timer_gen != gen {
                continue;
            }
            match slot.conn.deadline {
                Some(deadline) if now >= deadline => {
                    if !slot.conn.close_after_flush {
                        // A partial frame stalled a full read timeout:
                        // slow-loris. (Lingering closes reuse the
                        // deadline but are not read timeouts.)
                        self.shared.obs.counter_add("net.read_timeouts", 1);
                    }
                    self.close(idx);
                }
                Some(deadline) => {
                    // Clamped or coarse wheel slot fired early: re-arm
                    // at the real deadline.
                    self.wheel.arm(idx, gen, deadline);
                }
                None => {}
            }
        }
    }

    /// Reconciles the registered poller interest with the connection's
    /// state: paused/lingering → write only; backlog → read + write;
    /// otherwise read only.
    fn sync_interest(&mut self, idx: usize) {
        let Some(slot) = self.slots[idx].as_mut() else {
            return;
        };
        let desired = if slot.conn.paused || slot.conn.close_after_flush {
            Interest::WRITE
        } else if slot.conn.write_backlog() > 0 {
            Interest::READ_WRITE
        } else {
            Interest::READ
        };
        if desired != slot.interest
            && self
                .poller
                .modify(slot.conn.stream.as_raw_fd(), idx as u64, desired)
                .is_ok()
        {
            slot.interest = desired;
        }
    }

    /// Closes and frees one connection. The slot stays unreusable until
    /// tick end so stale events in the same batch miss.
    fn close(&mut self, idx: usize) {
        if let Some(slot) = self.slots[idx].take() {
            let _ = self.poller.delete(slot.conn.stream.as_raw_fd());
            self.shared.obs.counter_add("net.connections_closed", 1);
            self.freed_this_tick.push(idx);
        }
    }

    /// Graceful shutdown: execute + ack every buffered complete frame
    /// (ingest is refused with `ShuttingDown` by `handle_frame`), flush
    /// within the write-timeout grace, close everything.
    fn shutdown_drain(&mut self) {
        let _ = self.poller.delete(self.listener.as_raw_fd());
        for idx in 0..self.slots.len() {
            if self.slots[idx].is_none() {
                continue;
            }
            self.drain_assembler(idx);
            let slot = self.slots[idx].as_mut().expect("open");
            if !slot.ops.is_empty() && !slot.dirty {
                slot.dirty = true;
                self.dirty.push(idx);
            }
        }
        self.execute_dirty();
        let grace = Instant::now() + self.shared.config.write_timeout;
        loop {
            let mut pending = false;
            for idx in 0..self.slots.len() {
                let Some(slot) = self.slots[idx].as_mut() else {
                    continue;
                };
                if slot.conn.write_backlog() == 0 {
                    continue;
                }
                match slot.conn.flush() {
                    Ok(Flush::Pending) => pending = true,
                    Ok(Flush::Drained) => {}
                    Err(_) => self.close(idx),
                }
            }
            if !pending || Instant::now() >= grace {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        for idx in 0..self.slots.len() {
            self.close(idx);
        }
    }
}

/// Executes one request frame against the (already locked) engine,
/// producing the reply.
fn handle_frame(shared: &Shared, engine: &mut Engine, frame: Frame) -> Frame {
    match frame {
        Frame::AdvertBatch(batch) => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Frame::Error(WireError {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining; ingest refused".to_string(),
                });
            }
            if let Some(refusal) = follower_refusal(shared) {
                return refusal;
            }
            ingest_batch(shared, engine, &batch, None)
        }
        Frame::TracedAdvertBatch(ctx, batch) => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Frame::Error(WireError {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining; ingest refused".to_string(),
                });
            }
            if let Some(refusal) = follower_refusal(shared) {
                return refusal;
            }
            ingest_batch(shared, engine, &batch, Some(ctx))
        }
        Frame::MetricsQuery => {
            Frame::MetricsReport(WireMetrics::from_snapshot(&shared.obs.metrics()))
        }
        Frame::TraceQuery(id) => Frame::TraceReport(match id {
            None => shared.obs.traces(),
            Some(id) => shared.obs.trace_lookup(id).into_iter().collect(),
        }),
        Frame::QuerySnapshot => {
            let mut span = shared.obs.span("net", "query_snapshot");
            let estimates: Vec<WireEstimate> = engine
                .snapshot()
                .iter()
                .map(|(b, e)| WireEstimate::from_estimate(*b, e))
                .collect();
            span.field("estimates", estimates.len());
            Frame::Snapshot(estimates)
        }
        Frame::QueryBeacon(beacon) => Frame::BeaconReply(
            engine
                .estimate_of(BeaconId(beacon))
                .map(|e| WireEstimate::from_estimate(BeaconId(beacon), &e)),
        ),
        Frame::QueryStats => Frame::Stats(WireStats::from_engine(engine.stats(), engine.queued())),
        Frame::Finish => {
            let mut span = shared.obs.span("net", "finish");
            let report = engine.finish();
            span.field("samples", report.samples_processed);
            Frame::FinishAck(FinishSummary {
                samples_processed: report.samples_processed as u64,
                batches_pushed: report.batches_pushed as u64,
            })
        }
        Frame::Join(_) => match &shared.cluster {
            Some(cluster) => {
                let c = cluster.lock().expect("cluster mutex not poisoned");
                Frame::JoinAck(c.map.clone())
            }
            None => not_clustered(),
        },
        Frame::PartitionMap(map) => {
            let Some(cluster) = &shared.cluster else {
                return not_clustered();
            };
            let mut c = cluster.lock().expect("cluster mutex not poisoned");
            if map.epoch < c.map.epoch {
                return Frame::Error(WireError {
                    code: ErrorCode::BadFrame,
                    message: format!(
                        "stale partition map: epoch {} < held epoch {}",
                        map.epoch, c.map.epoch
                    ),
                });
            }
            c.map = map;
            // Role reconciliation: the map says who serves each node id.
            // Listing this node's own address under its id makes it the
            // owner; anything else makes it a follower.
            let mine = c
                .map
                .nodes
                .iter()
                .find(|n| n.node_id == c.node_id)
                .map(|n| n.addr.clone());
            match mine {
                Some(addr) if addr == c.listen_addr => {
                    if c.role == NodeRole::Follower {
                        // Promotion. The replicated stream already
                        // warmed this engine; drain whatever it still
                        // has queued so the first served query sees the
                        // full replicated history.
                        engine.drain();
                        c.role = NodeRole::Owner;
                        shared.obs.counter_add("net.cluster.promotions", 1);
                    }
                }
                _ => {
                    if c.role == NodeRole::Owner {
                        c.role = NodeRole::Follower;
                        c.link = None;
                        shared.obs.counter_add("net.cluster.demotions", 1);
                    }
                }
            }
            Frame::JoinAck(c.map.clone())
        }
        Frame::Forward { seq, ctx, adverts } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Frame::Error(WireError {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining; ingest refused".to_string(),
                });
            }
            if let Some(refusal) = follower_refusal(shared) {
                return refusal;
            }
            let ctx = (ctx.trace_id != 0).then_some(ctx);
            let summary = match ingest_batch(shared, engine, &adverts, ctx) {
                Frame::IngestAck(s) => s,
                Frame::TracedIngestAck(ack) => ack.summary,
                err => return err,
            };
            let replica_durable = shared
                .cluster
                .as_ref()
                .and_then(|cluster| {
                    let c = cluster.lock().expect("cluster mutex not poisoned");
                    c.link.as_ref().map(|l| l.durable)
                })
                .unwrap_or(0);
            Frame::ForwardAck {
                seq,
                summary,
                replica_durable,
            }
        }
        Frame::Replicate { seq, base, adverts } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Frame::Error(WireError {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining; replication refused".to_string(),
                });
            }
            let is_follower = shared.cluster.as_ref().is_some_and(|cluster| {
                cluster.lock().expect("cluster mutex not poisoned").role == NodeRole::Follower
            });
            if !is_follower {
                return Frame::Error(WireError {
                    code: ErrorCode::BadFrame,
                    message: "only a follower absorbs Replicate".to_string(),
                });
            }
            let Some(store) = &shared.store else {
                return Frame::Error(WireError {
                    code: ErrorCode::Internal,
                    message: "follower has no durability store".to_string(),
                });
            };
            let held = {
                let durable = store.lock().expect("store mutex not poisoned");
                durable.store.wal_records()
            };
            if base != held {
                // A gap or a replay: refusing keeps the follower's WAL a
                // byte prefix of the owner's instead of silently
                // diverging. The owner treats this as a dead link.
                return Frame::Error(WireError {
                    code: ErrorCode::Internal,
                    message: format!("replication gap: owner base {base}, follower holds {held}"),
                });
            }
            match ingest_batch(shared, engine, &adverts, None) {
                Frame::IngestAck(_) => {
                    let durable = {
                        let durable = store.lock().expect("store mutex not poisoned");
                        durable.store.wal_records()
                    };
                    Frame::ReplicateAck { seq, durable }
                }
                err => err,
            }
        }
        Frame::ClusterQuery => {
            let wal_records = shared
                .store
                .as_ref()
                .map(|s| {
                    s.lock()
                        .expect("store mutex not poisoned")
                        .store
                        .wal_records()
                })
                .unwrap_or(0);
            let owned_sessions = engine.stats().sessions_live as u64;
            let summary = match &shared.cluster {
                Some(cluster) => {
                    let c = cluster.lock().expect("cluster mutex not poisoned");
                    ClusterSummary {
                        node_id: c.node_id,
                        role: c.role,
                        map: c.map.clone(),
                        owned_sessions,
                        forwarded_batches: 0,
                        forwarded_adverts: 0,
                        replicated_records: match c.role {
                            // What the follower acked durable.
                            NodeRole::Owner => c.link.as_ref().map(|l| l.durable).unwrap_or(0),
                            // What this node absorbed — its whole WAL,
                            // which is what a re-attaching owner skips.
                            NodeRole::Follower => wal_records,
                            NodeRole::Front => 0,
                        },
                    }
                }
                // A standalone server answers too (node id 0, empty
                // map), so tooling can probe any node uniformly.
                None => ClusterSummary {
                    node_id: 0,
                    role: NodeRole::Owner,
                    map: WirePartitionMap {
                        epoch: 0,
                        nodes: Vec::new(),
                    },
                    owned_sessions,
                    forwarded_batches: 0,
                    forwarded_adverts: 0,
                    replicated_records: 0,
                },
            };
            Frame::ClusterReport(summary)
        }
        Frame::ExportState => {
            let mut span = shared.obs.span("net", "export_state");
            let state = engine.export_state();
            let sessions = state.sessions.len() as u64;
            span.field("sessions", sessions);
            let mut bytes = Vec::new();
            locble_store::codec::put_engine_state(&mut bytes, &state);
            Frame::StateExport {
                sessions,
                state: bytes,
            }
        }
        Frame::Handoff { epoch, state } => {
            if engine.stats().sessions_live > 0 || engine.queued() > 0 {
                return Frame::Error(WireError {
                    code: ErrorCode::Internal,
                    message: "handoff refused: receiving engine is not empty".to_string(),
                });
            }
            let mut reader = locble_store::codec::Reader::new(&state);
            let decoded = reader
                .engine_state()
                .ok()
                .filter(|_| reader.remaining() == 0);
            let Some(decoded) = decoded else {
                return Frame::Error(WireError {
                    code: ErrorCode::BadFrame,
                    message: "handoff state did not decode".to_string(),
                });
            };
            let sessions = decoded.sessions.len() as u64;
            match Engine::restore(
                engine.config().clone(),
                engine.prototype().clone(),
                shared.obs.clone(),
                decoded,
                &[],
            ) {
                Ok((restored, _)) => {
                    *engine = restored;
                    shared.obs.counter_add("net.cluster.handoffs", 1);
                    Frame::HandoffAck { epoch, sessions }
                }
                Err(e) => Frame::Error(WireError {
                    code: ErrorCode::Internal,
                    message: format!("handoff restore failed: {e:?}"),
                }),
            }
        }
        Frame::IngestAck(_)
        | Frame::TracedIngestAck(_)
        | Frame::MetricsReport(_)
        | Frame::TraceReport(_)
        | Frame::Snapshot(_)
        | Frame::BeaconReply(_)
        | Frame::Stats(_)
        | Frame::FinishAck(_)
        | Frame::JoinAck(_)
        | Frame::ForwardAck { .. }
        | Frame::ReplicateAck { .. }
        | Frame::ClusterReport(_)
        | Frame::HandoffAck { .. }
        | Frame::StateExport { .. }
        | Frame::Error(_) => Frame::Error(WireError {
            code: ErrorCode::BadFrame,
            message: "reply frame sent as a request".to_string(),
        }),
    }
}

/// The reply for a cluster frame sent to a server with no cluster
/// attachment.
fn not_clustered() -> Frame {
    Frame::Error(WireError {
        code: ErrorCode::BadFrame,
        message: "server has no cluster attachment".to_string(),
    })
}

/// `Some(refusal)` when this node is a follower: only its owner's
/// `Replicate` stream may feed a follower's engine — the divergence
/// guard that makes promotion lossless.
fn follower_refusal(shared: &Shared) -> Option<Frame> {
    let cluster = shared.cluster.as_ref()?;
    let c = cluster.lock().expect("cluster mutex not poisoned");
    (c.role == NodeRole::Follower).then(|| {
        Frame::Error(WireError {
            code: ErrorCode::BadFrame,
            message: "node is a follower; it accepts only its owner's Replicate stream".to_string(),
        })
    })
}

/// Ingests one batch, draining shard-queue backpressure in-line so the
/// whole batch is always consumed (mirrors `Engine::ingest_all`, with
/// per-drain instrumentation). With a trace context the batch's WAL,
/// route, shard-queue and refit laps are recorded and the reply is a
/// [`Frame::TracedIngestAck`] carrying the laps closed so far — the
/// estimates themselves are identical either way (telemetry never
/// feeds the math).
fn ingest_batch(
    shared: &Shared,
    engine: &mut Engine,
    batch: &[crate::wire::WireAdvert],
    ctx: Option<TraceCtx>,
) -> Frame {
    let adverts: Vec<Advert> = batch.iter().map(|a| Advert::from(*a)).collect();
    let mut span = shared.obs.span("net", "ingest_batch");
    span.field("adverts", adverts.len());
    if let Some(store) = &shared.store {
        // Write-ahead: the batch must be durable before the engine can
        // see it, in offer order (both serialized by the engine lock,
        // which the reactor holds for the whole tick-end pass).
        let mut durable = store.lock().expect("store mutex not poisoned");
        let wal_t0 = ctx.and_then(|_| shared.obs.enabled().then(Instant::now));
        if let Err(e) = durable.store.append(&adverts) {
            shared.obs.counter_add("net.wal_failures", 1);
            span.field("wal_failed", true);
            return Frame::Error(WireError {
                code: ErrorCode::Internal,
                message: format!("durability append failed; batch refused: {e}"),
            });
        }
        if let (Some(ctx), Some(t0)) = (ctx, wal_t0) {
            let duration_us = t0.elapsed().as_micros() as u64;
            shared.obs.trace_stage(
                ctx.trace_id,
                Stage::Wal,
                shared.obs.now_us().saturating_sub(duration_us),
                duration_us,
            );
        }
    }
    if let Some(cluster) = &shared.cluster {
        // Replicate before ingest, mirroring the WAL-before-ingest rule:
        // under SyncAck a batch the follower never acked is refused
        // before the engine sees it. The tailer reads the WAL file the
        // append above just extended, so the stream is exactly the
        // durable log, in order.
        let mut c = cluster.lock().expect("cluster mutex not poisoned");
        if c.role == NodeRole::Owner && c.link.is_some() {
            let rep_t0 = ctx.and_then(|_| shared.obs.enabled().then(Instant::now));
            let sync = c.replication == ReplicationPolicy::SyncAck;
            let pumped = c.link.as_mut().expect("checked above").pump();
            if let (Some(ctx), Some(t0)) = (ctx, rep_t0) {
                let duration_us = t0.elapsed().as_micros() as u64;
                shared.obs.trace_stage(
                    ctx.trace_id,
                    Stage::Replicate,
                    shared.obs.now_us().saturating_sub(duration_us),
                    duration_us,
                );
            }
            match pumped {
                Ok(durable) => span.field("replica_durable", durable),
                Err(e) => {
                    shared.obs.counter_add("net.replication_failures", 1);
                    span.field("replication_failed", true);
                    c.link = None;
                    if sync {
                        return Frame::Error(WireError {
                            code: ErrorCode::Internal,
                            message: format!("replication failed; batch refused: {e}"),
                        });
                    }
                }
            }
        }
    }
    let mut total = IngestReport::default();
    let mut offset = 0;
    while offset < adverts.len() {
        let report = match ctx {
            Some(ctx) => engine.ingest_traced(&adverts[offset..], ctx, &shared.obs),
            None => engine.ingest(&adverts[offset..]),
        };
        offset += report.consumed;
        total.absorb(report);
        if offset < adverts.len() {
            // Backpressure: a shard queue is full. Drain and re-offer
            // instead of surfacing an error or dropping the connection.
            shared.obs.counter_add("net.backpressure_drains", 1);
            engine.process();
            if report.consumed == 0 && engine.queued() > 0 {
                // Defensive: draining freed nothing, so no progress is
                // possible. Unreachable with the current engine, but a
                // stuck loop must never hold the engine lock forever.
                span.field("stalled", true);
                return Frame::Error(WireError {
                    code: ErrorCode::Backpressure,
                    message: format!(
                        "ingest stalled with {} samples queued after a drain",
                        engine.queued()
                    ),
                });
            }
        }
    }
    if let Some(store) = &shared.store {
        // Checkpoint after ingest, so the snapshot's WAL position and
        // the engine state agree (a snapshot taken between append and
        // ingest would skip records the state doesn't contain).
        let mut durable = store.lock().expect("store mutex not poisoned");
        let records = durable.store.wal_records();
        if durable.checkpoint_every > 0
            && records - durable.last_checkpoint >= durable.checkpoint_every
        {
            match durable.store.checkpoint(engine) {
                Ok(_) => durable.last_checkpoint = records,
                Err(_) => shared.obs.counter_add("net.checkpoint_failures", 1),
            }
        }
    }
    if ctx.is_some() {
        // Close the batch's pending trace marks (shard-queue wait +
        // refit laps) before acking, so the ack can carry them. Extra
        // process calls are safe: they never perturb estimates.
        engine.process();
    }
    let summary = IngestSummary::from(total);
    span.field("routed", summary.routed);
    span.field("rejected", summary.rejected());
    shared.obs.counter_add("net.adverts_rx", summary.consumed);
    shared.obs.counter_add("net.adverts_routed", summary.routed);
    if summary.rejected() > 0 {
        shared
            .obs
            .counter_add("net.adverts_rejected", summary.rejected());
    }
    match ctx {
        Some(ctx) => {
            // Laps closed so far travel in the ack; the ack lap itself
            // is recorded after the write and lands only in the server's
            // trace table (fetch it with a TraceQuery).
            let (ctx, laps) = match shared.obs.trace_lookup(ctx.trace_id) {
                Some(record) => (record.ctx, record.laps),
                None => (ctx, Vec::new()),
            };
            Frame::TracedIngestAck(TracedAck { summary, ctx, laps })
        }
        None => Frame::IngestAck(summary),
    }
}
