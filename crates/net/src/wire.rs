//! The versioned, length-prefixed binary wire protocol.
//!
//! Every frame on the wire is:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length N (u32, big-endian) — bytes after this header
//! 4       1     protocol version ([`WIRE_VERSION`])
//! 5       1     frame tag
//! 6       N-2   frame body (tag-specific)
//! ```
//!
//! Integers are big-endian; `f64`s travel as their IEEE-754 bit pattern
//! in a big-endian `u64`, so estimates survive the wire **bit-exactly**
//! (the loopback differential suite depends on this). Variable-length
//! sequences carry a `u32` element count whose plausibility is checked
//! against the remaining body before any allocation.
//!
//! The decoder is total: for *any* byte slice it returns a frame or a
//! typed [`DecodeError`] — it never panics and never allocates
//! proportionally to untrusted length fields. Truncated input is the
//! non-fatal [`DecodeError::Incomplete`]; a length prefix above the
//! limit is [`DecodeError::Oversized`] (unrecoverable — framing is
//! lost); bad version / tag / body errors are recoverable because the
//! length prefix still delimits the frame.
//!
//! **Versioning rule:** [`WIRE_VERSION`] bumps on any change to the
//! header or to an existing body layout. New frame tags may be added
//! without a bump — old decoders reject them as
//! [`DecodeError::BadTag`], which servers answer with a typed
//! [`ErrorCode::BadFrame`] reply rather than a disconnect.
//!
//! Version 2 added the cluster frames (`Join` … `HandoffAck`) *and*
//! extended an existing body's value range — stage laps may now carry
//! the `Forward`/`Replicate` discriminants, which a v1 decoder would
//! reject as malformed — hence the bump rather than tags alone. The
//! decoder stays backward compatible: any version in
//! [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`] is accepted, so v1 frames
//! (every pre-cluster tag) still decode bit-for-bit.

use locble_ble::BeaconId;
use locble_core::{FitMethod, LocationEstimate};
use locble_engine::{EngineStats, IngestReport};
use locble_geom::{EnvClass, Vec2};
use locble_obs::{HistogramSnapshot, MetricsSnapshot, Stage, StageLap, TraceCtx, TraceRecord};

/// Current protocol version byte.
pub const WIRE_VERSION: u8 = 2;

/// Oldest protocol version this decoder still accepts.
pub const MIN_WIRE_VERSION: u8 = 1;

/// Bytes of the fixed header (length prefix).
pub const HEADER_LEN: usize = 4;

/// Minimum payload: version + tag.
pub const MIN_PAYLOAD_LEN: usize = 2;

/// Default cap on the payload length a decoder will accept.
pub const DEFAULT_MAX_FRAME_LEN: usize = 1 << 20;

/// One advertisement sample as it travels the wire.
#[derive(Debug, Clone, Copy)]
pub struct WireAdvert {
    /// Advertising beacon id.
    pub beacon: u32,
    /// Capture timestamp, seconds.
    pub t: f64,
    /// Received signal strength, dBm.
    pub rssi_dbm: f64,
}

impl PartialEq for WireAdvert {
    fn eq(&self, other: &WireAdvert) -> bool {
        self.beacon == other.beacon
            && self.t.to_bits() == other.t.to_bits()
            && self.rssi_dbm.to_bits() == other.rssi_dbm.to_bits()
    }
}

impl Eq for WireAdvert {}

impl From<locble_engine::Advert> for WireAdvert {
    fn from(a: locble_engine::Advert) -> WireAdvert {
        WireAdvert {
            beacon: a.beacon.0,
            t: a.t,
            rssi_dbm: a.rssi_dbm,
        }
    }
}

impl From<WireAdvert> for locble_engine::Advert {
    fn from(a: WireAdvert) -> locble_engine::Advert {
        locble_engine::Advert {
            beacon: BeaconId(a.beacon),
            t: a.t,
            rssi_dbm: a.rssi_dbm,
        }
    }
}

/// One beacon's location estimate as it travels the wire. Field-for-
/// field image of [`LocationEstimate`]; floats are compared and
/// transported by bit pattern so a snapshot served over loopback is
/// indistinguishable from one read in-process.
#[derive(Debug, Clone, Copy)]
pub struct WireEstimate {
    /// Beacon the estimate belongs to.
    pub beacon: u32,
    /// Estimated x, metres (observer-local frame).
    pub x: f64,
    /// Estimated y, metres.
    pub y: f64,
    /// Unresolved mirror candidate, if the walk was collinear.
    pub mirror: Option<(f64, f64)>,
    /// Estimation confidence in `[0, 1]`.
    pub confidence: f64,
    /// Fitted path-loss exponent.
    pub exponent: f64,
    /// Fitted reference power, dBm.
    pub gamma_dbm: f64,
    /// Environment regime, when EnvAware ran.
    pub env: Option<EnvClass>,
    /// Samples fused in the final regression.
    pub points_used: u64,
    /// Regression rung that produced the estimate.
    pub method: FitMethod,
    /// RMS residual of the final fit, dB.
    pub residual_db: f64,
}

impl PartialEq for WireEstimate {
    fn eq(&self, other: &WireEstimate) -> bool {
        let floats = |e: &WireEstimate| {
            [
                e.x.to_bits(),
                e.y.to_bits(),
                e.confidence.to_bits(),
                e.exponent.to_bits(),
                e.gamma_dbm.to_bits(),
                e.residual_db.to_bits(),
            ]
        };
        self.beacon == other.beacon
            && floats(self) == floats(other)
            && self.mirror.map(|(x, y)| (x.to_bits(), y.to_bits()))
                == other.mirror.map(|(x, y)| (x.to_bits(), y.to_bits()))
            && self.env == other.env
            && self.points_used == other.points_used
            && self.method == other.method
    }
}

impl Eq for WireEstimate {}

impl WireEstimate {
    /// Packs one engine estimate for the wire.
    pub fn from_estimate(beacon: BeaconId, est: &LocationEstimate) -> WireEstimate {
        WireEstimate {
            beacon: beacon.0,
            x: est.position.x,
            y: est.position.y,
            mirror: est.mirror.map(|m| (m.x, m.y)),
            confidence: est.confidence,
            exponent: est.exponent,
            gamma_dbm: est.gamma_dbm,
            env: est.env,
            points_used: est.points_used as u64,
            method: est.method,
            residual_db: est.residual_db,
        }
    }

    /// Unpacks back into the engine's estimate type.
    pub fn to_estimate(&self) -> (BeaconId, LocationEstimate) {
        (
            BeaconId(self.beacon),
            LocationEstimate {
                position: Vec2::new(self.x, self.y),
                mirror: self.mirror.map(|(x, y)| Vec2::new(x, y)),
                confidence: self.confidence,
                exponent: self.exponent,
                gamma_dbm: self.gamma_dbm,
                env: self.env,
                points_used: self.points_used as usize,
                method: self.method,
                residual_db: self.residual_db,
            },
        )
    }
}

/// Exact accounting for one [`Frame::AdvertBatch`]: the server's
/// [`IngestReport`], widened to `u64` for the wire. Rejections are the
/// typed image of the engine's `AdmitError`s — a capacity-full or
/// out-of-order advert shows up here per-cause instead of killing the
/// connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestSummary {
    /// Adverts taken from the batch (always the whole batch: the server
    /// drains backpressure internally).
    pub consumed: u64,
    /// Adverts routed into shard queues.
    pub routed: u64,
    /// Sessions created by first-contact adverts.
    pub sessions_created: u64,
    /// Dropped: NaN/infinite timestamp or RSSI.
    pub rejected_non_finite: u64,
    /// Dropped: violated per-beacon time order.
    pub rejected_out_of_order: u64,
    /// Dropped: session table at capacity.
    pub rejected_capacity: u64,
}

impl IngestSummary {
    /// Total dropped adverts.
    pub fn rejected(&self) -> u64 {
        self.rejected_non_finite + self.rejected_out_of_order + self.rejected_capacity
    }

    /// Folds another summary (e.g. per-batch acks) into this one.
    pub fn absorb(&mut self, other: IngestSummary) {
        self.consumed += other.consumed;
        self.routed += other.routed;
        self.sessions_created += other.sessions_created;
        self.rejected_non_finite += other.rejected_non_finite;
        self.rejected_out_of_order += other.rejected_out_of_order;
        self.rejected_capacity += other.rejected_capacity;
    }
}

impl From<IngestReport> for IngestSummary {
    fn from(r: IngestReport) -> IngestSummary {
        IngestSummary {
            consumed: r.consumed as u64,
            routed: r.routed as u64,
            sessions_created: r.sessions_created as u64,
            rejected_non_finite: r.rejected_non_finite as u64,
            rejected_out_of_order: r.rejected_out_of_order as u64,
            rejected_capacity: r.rejected_capacity as u64,
        }
    }
}

/// What a [`Frame::Finish`] did: the terminal drain + flush accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FinishSummary {
    /// Samples drained from shard queues by the finish.
    pub samples_processed: u64,
    /// Batches (including partial trailing ones) pushed into sessions.
    pub batches_pushed: u64,
}

/// Engine statistics as served over the wire ([`EngineStats`] plus the
/// live queue depth).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Adverts routed to shards since engine construction.
    pub samples_routed: u64,
    /// Adverts rejected at the ingest boundary.
    pub samples_rejected: u64,
    /// Samples consumed by sessions.
    pub samples_processed: u64,
    /// Sessions ever created.
    pub sessions_created: u64,
    /// Sessions evicted for idleness.
    pub sessions_evicted: u64,
    /// Currently live sessions.
    pub sessions_live: u64,
    /// Completed batches pushed into sessions.
    pub batches_pushed: u64,
    /// Batches refused by the validation boundary.
    pub batches_rejected: u64,
    /// `Engine::process` calls.
    pub processes: u64,
    /// Samples sitting in shard queues right now.
    pub queued: u64,
}

impl WireStats {
    /// Packs engine statistics plus the current queue depth.
    pub fn from_engine(stats: EngineStats, queued: usize) -> WireStats {
        WireStats {
            samples_routed: stats.samples_routed,
            samples_rejected: stats.samples_rejected,
            samples_processed: stats.samples_processed,
            sessions_created: stats.sessions_created,
            sessions_evicted: stats.sessions_evicted,
            sessions_live: stats.sessions_live as u64,
            batches_pushed: stats.batches_pushed,
            batches_rejected: stats.batches_rejected,
            processes: stats.processes,
            queued: queued as u64,
        }
    }
}

/// Reply to a [`Frame::TracedAdvertBatch`]: the ingest accounting plus
/// every stage lap known at ack time. Laps recorded *after* the ack is
/// encoded (the `ack` write itself, and any shard drain that runs
/// later) land in the server's trace table instead — fetch them with
/// [`Frame::TraceQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedAck {
    /// Exact accounting, as in [`Frame::IngestAck`].
    pub summary: IngestSummary,
    /// The batch's context with every server-side stage bit the batch
    /// accumulated by ack time.
    pub ctx: TraceCtx,
    /// Stage laps known at ack time, in arrival order.
    pub laps: Vec<StageLap>,
}

/// A whole metrics registry as served over the wire: the flattened
/// image of [`MetricsSnapshot`], name-sorted. Floats travel by bit
/// pattern, so a scraped histogram is indistinguishable from the
/// server-side snapshot.
#[derive(Debug, Clone, Default)]
pub struct WireMetrics {
    /// Monotonic counters, by name.
    pub counters: Vec<(String, u64)>,
    /// Latest gauge values, by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl PartialEq for WireMetrics {
    fn eq(&self, other: &WireMetrics) -> bool {
        // Bit-level float equality, like every wire type: a NaN gauge
        // must still round-trip as "equal to itself".
        fn hist_bits(h: &HistogramSnapshot) -> (Vec<u64>, &[u64], u64, u64, u64, u64) {
            (
                h.bounds.iter().map(|b| b.to_bits()).collect(),
                &h.counts,
                h.sum.to_bits(),
                h.count,
                h.min.to_bits(),
                h.max.to_bits(),
            )
        }
        self.counters == other.counters
            && self.gauges.len() == other.gauges.len()
            && self
                .gauges
                .iter()
                .zip(&other.gauges)
                .all(|((an, av), (bn, bv))| an == bn && av.to_bits() == bv.to_bits())
            && self.histograms.len() == other.histograms.len()
            && self
                .histograms
                .iter()
                .zip(&other.histograms)
                .all(|((an, av), (bn, bv))| an == bn && hist_bits(av) == hist_bits(bv))
    }
}

impl Eq for WireMetrics {}

impl WireMetrics {
    /// Flattens a snapshot for the wire (already name-sorted: the
    /// snapshot's maps are BTree-ordered).
    pub fn from_snapshot(snap: &MetricsSnapshot) -> WireMetrics {
        WireMetrics {
            counters: snap.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: snap.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: snap
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.clone()))
                .collect(),
        }
    }

    /// Rebuilds the map-shaped snapshot client-side.
    pub fn to_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().cloned().collect(),
            gauges: self.gauges.iter().cloned().collect(),
            histograms: self.histograms.iter().cloned().collect(),
        }
    }
}

/// One cluster member: its stable id plus the address peers dial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeEntry {
    /// Stable node id (feeds the rendezvous hash, so it must not change
    /// across restarts of the same logical node).
    pub node_id: u64,
    /// `host:port` the node listens on.
    pub addr: String,
}

/// What a cluster process does with the frames it receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum NodeRole {
    /// Accepts client batches and forwards them to owning nodes.
    Front = 1,
    /// Owns a beacon partition: ingests, persists, replicates.
    Owner = 2,
    /// Tails an owner's WAL stream, ready to promote.
    Follower = 3,
}

impl NodeRole {
    fn from_u8(v: u8) -> Option<NodeRole> {
        Some(match v {
            1 => NodeRole::Front,
            2 => NodeRole::Owner,
            3 => NodeRole::Follower,
            _ => return None,
        })
    }

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            NodeRole::Front => "front",
            NodeRole::Owner => "owner",
            NodeRole::Follower => "follower",
        }
    }
}

/// An epoch-stamped membership view: the owner set the rendezvous hash
/// partitions beacons over. Epochs are totally ordered; a node installs
/// a map only if its epoch exceeds the one it holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePartitionMap {
    /// Monotonic membership epoch.
    pub epoch: u64,
    /// Owner nodes, any order (the rendezvous hash is order-free).
    pub nodes: Vec<NodeEntry>,
}

/// A node's answer to [`Frame::ClusterQuery`]: identity, membership
/// view, and the cluster-path counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSummary {
    /// The answering node's id.
    pub node_id: u64,
    /// Its current role.
    pub role: NodeRole,
    /// The membership view it holds.
    pub map: WirePartitionMap,
    /// Live sessions it owns (0 on a front).
    pub owned_sessions: u64,
    /// Batches it forwarded to owners (front only).
    pub forwarded_batches: u64,
    /// Adverts it forwarded to owners (front only).
    pub forwarded_adverts: u64,
    /// WAL records it streamed to its follower (owner) or absorbed from
    /// its owner (follower).
    pub replicated_records: u64,
}

/// Why the server sent a [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame failed to decode (bad tag or malformed body) or was a
    /// reply tag sent as a request. The connection stays usable.
    BadFrame = 1,
    /// The frame's protocol version is not [`WIRE_VERSION`].
    UnsupportedVersion = 2,
    /// Shard-queue backpressure that interleaved draining could not
    /// clear (defensive; the drain loop normally absorbs it).
    Backpressure = 3,
    /// The engine's session table is full and the whole batch was
    /// refused (per-advert capacity rejects travel in the ack instead).
    Capacity = 4,
    /// The server is shutting down and no longer accepts ingest.
    ShuttingDown = 5,
    /// Unexpected server-side failure.
    Internal = 6,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::Backpressure,
            4 => ErrorCode::Capacity,
            5 => ErrorCode::ShuttingDown,
            6 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A typed error reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable cause.
    pub code: ErrorCode,
    /// Human-readable detail (capped at `u16::MAX` bytes on the wire).
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

/// Every frame of the protocol. Requests flow client→server, replies
/// server→client; each request gets exactly one reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Request: ingest a batch of adverts. Reply: [`Frame::IngestAck`]
    /// (or [`Frame::Error`] when shutting down).
    AdvertBatch(Vec<WireAdvert>),
    /// Reply: exact accounting for one advert batch.
    IngestAck(IngestSummary),
    /// Request: every live estimate. Reply: [`Frame::Snapshot`].
    QuerySnapshot,
    /// Reply: live estimates in ascending beacon-id order.
    Snapshot(Vec<WireEstimate>),
    /// Request: one beacon's estimate. Reply: [`Frame::BeaconReply`].
    QueryBeacon(u32),
    /// Reply: the beacon's estimate, if its session has one.
    BeaconReply(Option<WireEstimate>),
    /// Request: engine statistics. Reply: [`Frame::Stats`].
    QueryStats,
    /// Reply: engine statistics.
    Stats(WireStats),
    /// Request: drain queues, flush partial batches, refit stale
    /// sessions (the engine's end-of-stream `finish`). Reply:
    /// [`Frame::FinishAck`].
    Finish,
    /// Reply: what the finish did.
    FinishAck(FinishSummary),
    /// Reply: a typed error. The connection stays open unless the
    /// transport itself is broken.
    Error(WireError),
    /// Request: [`Frame::AdvertBatch`] carrying a client-minted trace
    /// context. Reply: [`Frame::TracedIngestAck`]. New tag, not a
    /// version bump: old decoders reject it as
    /// [`DecodeError::BadTag`] and the client can fall back to the
    /// untraced batch.
    TracedAdvertBatch(TraceCtx, Vec<WireAdvert>),
    /// Reply: ingest accounting plus the stage laps known at ack time.
    TracedIngestAck(TracedAck),
    /// Request: the server's metrics registry. Reply:
    /// [`Frame::MetricsReport`].
    MetricsQuery,
    /// Reply: the server's counters, gauges, and histograms.
    MetricsReport(WireMetrics),
    /// Request: retained trace records — all of them (`None`) or one
    /// trace id. Reply: [`Frame::TraceReport`].
    TraceQuery(Option<u64>),
    /// Reply: the matching trace records, oldest first (empty when the
    /// id is unknown or the server records nothing).
    TraceReport(Vec<TraceRecord>),
    /// Request: a node announces itself to the cluster (front or a
    /// peer). Reply: [`Frame::JoinAck`] with the membership view the
    /// receiver holds after admitting it.
    Join(NodeEntry),
    /// Reply: the receiver's current (possibly updated) partition map.
    JoinAck(WirePartitionMap),
    /// Request: install this membership view if its epoch is newer than
    /// the one held. The frame that drives both failover (follower
    /// promoted into the owner set) and planned rebalance. Reply:
    /// [`Frame::JoinAck`] with the view actually held afterwards.
    PartitionMap(WirePartitionMap),
    /// Request (front → owner): ingest this partition of a client
    /// batch. `ctx.trace_id == 0` means untraced. `seq` is a
    /// per-connection sequence number echoed in the ack so a pipelined
    /// front can match replies. Reply: [`Frame::ForwardAck`].
    Forward {
        /// Per-connection forward sequence number.
        seq: u64,
        /// Trace context carried through the hop (`trace_id` 0 when the
        /// client batch was untraced).
        ctx: TraceCtx,
        /// The adverts owned by the receiving node.
        adverts: Vec<WireAdvert>,
    },
    /// Reply: accounting for one forwarded partition, plus how deep the
    /// owner's follower was when the ack was sent (equal to the owner's
    /// durable count under a synchronous policy; 0 with no follower).
    ForwardAck {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Exact ingest accounting, as in [`Frame::IngestAck`].
        summary: IngestSummary,
        /// Records the follower had acked durably when this ack left.
        replica_durable: u64,
    },
    /// Request (owner → follower): append these WAL records. `base` is
    /// the owner's durable record count *before* the batch; the
    /// follower refuses a mismatch, which makes gaps and duplicates
    /// loud instead of silently divergent. Reply:
    /// [`Frame::ReplicateAck`].
    Replicate {
        /// Per-link replication sequence number.
        seq: u64,
        /// Owner's durable record count before these records.
        base: u64,
        /// The records, in WAL order.
        adverts: Vec<WireAdvert>,
    },
    /// Reply: the follower's durable record count after the append.
    ReplicateAck {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Follower's durable record count (fsynced per its policy).
        durable: u64,
    },
    /// Request: the node's cluster identity, membership view, and
    /// cluster-path counters. Reply: [`Frame::ClusterReport`].
    ClusterQuery,
    /// Reply: the node's cluster summary.
    ClusterReport(ClusterSummary),
    /// Request: absorb this engine state (the locble-store snapshot
    /// codec's bytes, opaque to the wire layer) as part of an
    /// epoch-stamped rebalance handoff. Reply: [`Frame::HandoffAck`].
    Handoff {
        /// Epoch of the membership change driving the handoff.
        epoch: u64,
        /// Engine state, encoded by the store snapshot codec
        /// (bit-exact, same bytes as an on-disk checkpoint).
        state: Vec<u8>,
    },
    /// Reply: how many sessions the receiver restored from the handoff.
    HandoffAck {
        /// Echo of the handoff epoch.
        epoch: u64,
        /// Sessions restored into the receiving engine.
        sessions: u64,
    },
    /// Request: export the engine's complete state for a rebalance
    /// handoff. Valid mid-stream — queued-but-unprocessed adverts
    /// travel inside the state and replay on restore. Reply:
    /// [`Frame::StateExport`].
    ExportState,
    /// Reply: the engine state, encoded by the store snapshot codec
    /// (bit-exact; feed it to [`Frame::Handoff`] unmodified).
    StateExport {
        /// Sessions contained in the state.
        sessions: u64,
        /// Store-codec-encoded engine state.
        state: Vec<u8>,
    },
}

const TAG_ADVERT_BATCH: u8 = 1;
const TAG_INGEST_ACK: u8 = 2;
const TAG_QUERY_SNAPSHOT: u8 = 3;
const TAG_SNAPSHOT: u8 = 4;
const TAG_QUERY_BEACON: u8 = 5;
const TAG_BEACON_REPLY: u8 = 6;
const TAG_QUERY_STATS: u8 = 7;
const TAG_STATS: u8 = 8;
const TAG_FINISH: u8 = 9;
const TAG_FINISH_ACK: u8 = 10;
const TAG_ERROR: u8 = 11;
const TAG_TRACED_ADVERT_BATCH: u8 = 12;
const TAG_TRACED_INGEST_ACK: u8 = 13;
const TAG_METRICS_QUERY: u8 = 14;
const TAG_METRICS_REPORT: u8 = 15;
const TAG_TRACE_QUERY: u8 = 16;
const TAG_TRACE_REPORT: u8 = 17;
const TAG_JOIN: u8 = 18;
const TAG_JOIN_ACK: u8 = 19;
const TAG_PARTITION_MAP: u8 = 20;
const TAG_FORWARD: u8 = 21;
const TAG_FORWARD_ACK: u8 = 22;
const TAG_REPLICATE: u8 = 23;
const TAG_REPLICATE_ACK: u8 = 24;
const TAG_CLUSTER_QUERY: u8 = 25;
const TAG_CLUSTER_REPORT: u8 = 26;
const TAG_HANDOFF: u8 = 27;
const TAG_HANDOFF_ACK: u8 = 28;
const TAG_EXPORT_STATE: u8 = 29;
const TAG_STATE_EXPORT: u8 = 30;

/// Smallest possible encoded advert (beacon + t + rssi).
const ADVERT_WIRE_LEN: usize = 4 + 8 + 8;

/// Smallest possible encoded estimate (mirror absent).
const ESTIMATE_MIN_WIRE_LEN: usize = 4 + 8 + 8 + 1 + 8 + 8 + 8 + 1 + 8 + 1 + 8;

/// Encoded stage lap (stage byte + start + duration).
const LAP_WIRE_LEN: usize = 1 + 8 + 8;

/// Smallest possible encoded trace record (id + path + empty lap list).
const TRACE_RECORD_MIN_WIRE_LEN: usize = 8 + 2 + 2;

/// Smallest named counter/gauge entry (empty name + value).
const METRIC_ENTRY_MIN_WIRE_LEN: usize = 2 + 8;

/// Smallest encoded node entry (node id + empty address).
const NODE_ENTRY_MIN_WIRE_LEN: usize = 8 + 2;

/// Smallest encoded histogram (empty name, no buckets, 4 summary
/// fields).
const HISTOGRAM_MIN_WIRE_LEN: usize = 2 + 4 + 4 + 8 + 8 + 8 + 8;

/// Why a byte slice did not decode to a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The slice ends before the frame does; `needed` more bytes would
    /// allow progress. Non-fatal: buffer more input and retry.
    Incomplete {
        /// Additional bytes required for the next decode step.
        needed: usize,
    },
    /// The length prefix exceeds the configured cap. Fatal for a
    /// stream: the frame cannot be buffered, so framing is lost.
    Oversized {
        /// Declared payload length.
        len: usize,
        /// The decoder's cap.
        max: usize,
    },
    /// The version byte is outside
    /// [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`]. Recoverable: the
    /// length prefix still delimits the frame.
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// Unknown frame tag. Recoverable.
    BadTag {
        /// The tag byte received.
        got: u8,
    },
    /// The body contradicts its own layout (bad counts, bad enum
    /// discriminants, trailing bytes, invalid UTF-8). Recoverable.
    Malformed {
        /// What the decoder was parsing when it gave up.
        context: &'static str,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Incomplete { needed } => {
                write!(f, "incomplete frame: {needed} more bytes needed")
            }
            DecodeError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max} byte cap")
            }
            DecodeError::BadVersion { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (want {MIN_WIRE_VERSION}..={WIRE_VERSION})"
                )
            }
            DecodeError::BadTag { got } => write!(f, "unknown frame tag {got}"),
            DecodeError::Malformed { context } => write!(f, "malformed frame body: {context}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl DecodeError {
    /// `true` when the error still leaves the stream delimited (the
    /// length prefix was trusted), so a server can skip the frame,
    /// answer with [`ErrorCode::BadFrame`], and keep the connection.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            DecodeError::BadVersion { .. }
                | DecodeError::BadTag { .. }
                | DecodeError::Malformed { .. }
        )
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_advert(out: &mut Vec<u8>, a: &WireAdvert) {
    put_u32(out, a.beacon);
    put_f64(out, a.t);
    put_f64(out, a.rssi_dbm);
}

fn put_estimate(out: &mut Vec<u8>, e: &WireEstimate) {
    put_u32(out, e.beacon);
    put_f64(out, e.x);
    put_f64(out, e.y);
    match e.mirror {
        Some((mx, my)) => {
            out.push(1);
            put_f64(out, mx);
            put_f64(out, my);
        }
        None => out.push(0),
    }
    put_f64(out, e.confidence);
    put_f64(out, e.exponent);
    put_f64(out, e.gamma_dbm);
    out.push(match e.env {
        None => 0,
        Some(EnvClass::Los) => 1,
        Some(EnvClass::PartialLos) => 2,
        Some(EnvClass::NonLos) => 3,
    });
    put_u64(out, e.points_used);
    out.push(match e.method {
        FitMethod::FreeJoint => 1,
        FitMethod::Anchored => 2,
        FitMethod::Leg => 3,
        FitMethod::Gradient => 4,
        FitMethod::Particle => 5,
        FitMethod::Fingerprint => 6,
    });
    put_f64(out, e.residual_db);
}

/// Short string (metric names, &c): u16 length prefix + UTF-8 bytes,
/// truncated on a char boundary past 64 KiB.
fn put_string(out: &mut Vec<u8>, s: &str) {
    let bytes = utf8_prefix(s, u16::MAX as usize);
    put_u16(out, bytes.len() as u16);
    out.extend_from_slice(bytes);
}

fn put_lap(out: &mut Vec<u8>, lap: &StageLap) {
    out.push(lap.stage as u8);
    put_u64(out, lap.start_us);
    put_u64(out, lap.duration_us);
}

fn put_trace_record(out: &mut Vec<u8>, rec: &TraceRecord) {
    put_u64(out, rec.ctx.trace_id);
    put_u16(out, rec.ctx.path);
    put_u16(out, rec.laps.len() as u16);
    for lap in &rec.laps {
        put_lap(out, lap);
    }
}

fn put_node_entry(out: &mut Vec<u8>, e: &NodeEntry) {
    put_u64(out, e.node_id);
    put_string(out, &e.addr);
}

fn put_partition_map(out: &mut Vec<u8>, map: &WirePartitionMap) {
    put_u64(out, map.epoch);
    put_u32(out, map.nodes.len() as u32);
    for e in &map.nodes {
        put_node_entry(out, e);
    }
}

fn put_histogram(out: &mut Vec<u8>, name: &str, h: &HistogramSnapshot) {
    put_string(out, name);
    put_u32(out, h.bounds.len() as u32);
    for &b in &h.bounds {
        put_f64(out, b);
    }
    put_u32(out, h.counts.len() as u32);
    for &c in &h.counts {
        put_u64(out, c);
    }
    put_f64(out, h.sum);
    put_u64(out, h.count);
    put_f64(out, h.min);
    put_f64(out, h.max);
}

/// Encodes one frame, header included.
///
/// # Panics
/// Only if the payload would exceed `u32::MAX` bytes (a frame of over
/// 4 GiB), which the [`DEFAULT_MAX_FRAME_LEN`]-bounded protocol never
/// produces.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = vec![0u8; HEADER_LEN];
    out.push(WIRE_VERSION);
    match frame {
        Frame::AdvertBatch(adverts) => {
            out.push(TAG_ADVERT_BATCH);
            put_u32(&mut out, adverts.len() as u32);
            for a in adverts {
                put_advert(&mut out, a);
            }
        }
        Frame::IngestAck(s) => {
            out.push(TAG_INGEST_ACK);
            for v in [
                s.consumed,
                s.routed,
                s.sessions_created,
                s.rejected_non_finite,
                s.rejected_out_of_order,
                s.rejected_capacity,
            ] {
                put_u64(&mut out, v);
            }
        }
        Frame::QuerySnapshot => out.push(TAG_QUERY_SNAPSHOT),
        Frame::Snapshot(estimates) => {
            out.push(TAG_SNAPSHOT);
            put_u32(&mut out, estimates.len() as u32);
            for e in estimates {
                put_estimate(&mut out, e);
            }
        }
        Frame::QueryBeacon(beacon) => {
            out.push(TAG_QUERY_BEACON);
            put_u32(&mut out, *beacon);
        }
        Frame::BeaconReply(est) => {
            out.push(TAG_BEACON_REPLY);
            match est {
                Some(e) => {
                    out.push(1);
                    put_estimate(&mut out, e);
                }
                None => out.push(0),
            }
        }
        Frame::QueryStats => out.push(TAG_QUERY_STATS),
        Frame::Stats(s) => {
            out.push(TAG_STATS);
            for v in [
                s.samples_routed,
                s.samples_rejected,
                s.samples_processed,
                s.sessions_created,
                s.sessions_evicted,
                s.sessions_live,
                s.batches_pushed,
                s.batches_rejected,
                s.processes,
                s.queued,
            ] {
                put_u64(&mut out, v);
            }
        }
        Frame::Finish => out.push(TAG_FINISH),
        Frame::FinishAck(s) => {
            out.push(TAG_FINISH_ACK);
            put_u64(&mut out, s.samples_processed);
            put_u64(&mut out, s.batches_pushed);
        }
        Frame::Error(e) => {
            out.push(TAG_ERROR);
            out.push(e.code as u8);
            let bytes = utf8_prefix(&e.message, u16::MAX as usize);
            put_u16(&mut out, bytes.len() as u16);
            out.extend_from_slice(bytes);
        }
        Frame::TracedAdvertBatch(ctx, adverts) => {
            out.push(TAG_TRACED_ADVERT_BATCH);
            put_u64(&mut out, ctx.trace_id);
            put_u16(&mut out, ctx.path);
            put_u32(&mut out, adverts.len() as u32);
            for a in adverts {
                put_advert(&mut out, a);
            }
        }
        Frame::TracedIngestAck(ack) => {
            out.push(TAG_TRACED_INGEST_ACK);
            for v in [
                ack.summary.consumed,
                ack.summary.routed,
                ack.summary.sessions_created,
                ack.summary.rejected_non_finite,
                ack.summary.rejected_out_of_order,
                ack.summary.rejected_capacity,
            ] {
                put_u64(&mut out, v);
            }
            put_u64(&mut out, ack.ctx.trace_id);
            put_u16(&mut out, ack.ctx.path);
            put_u16(&mut out, ack.laps.len() as u16);
            for lap in &ack.laps {
                put_lap(&mut out, lap);
            }
        }
        Frame::MetricsQuery => out.push(TAG_METRICS_QUERY),
        Frame::MetricsReport(m) => {
            out.push(TAG_METRICS_REPORT);
            put_u32(&mut out, m.counters.len() as u32);
            for (name, v) in &m.counters {
                put_string(&mut out, name);
                put_u64(&mut out, *v);
            }
            put_u32(&mut out, m.gauges.len() as u32);
            for (name, v) in &m.gauges {
                put_string(&mut out, name);
                put_f64(&mut out, *v);
            }
            put_u32(&mut out, m.histograms.len() as u32);
            for (name, h) in &m.histograms {
                put_histogram(&mut out, name, h);
            }
        }
        Frame::TraceQuery(id) => {
            out.push(TAG_TRACE_QUERY);
            match id {
                Some(id) => {
                    out.push(1);
                    put_u64(&mut out, *id);
                }
                None => out.push(0),
            }
        }
        Frame::TraceReport(records) => {
            out.push(TAG_TRACE_REPORT);
            put_u32(&mut out, records.len() as u32);
            for rec in records {
                put_trace_record(&mut out, rec);
            }
        }
        Frame::Join(entry) => {
            out.push(TAG_JOIN);
            put_node_entry(&mut out, entry);
        }
        Frame::JoinAck(map) => {
            out.push(TAG_JOIN_ACK);
            put_partition_map(&mut out, map);
        }
        Frame::PartitionMap(map) => {
            out.push(TAG_PARTITION_MAP);
            put_partition_map(&mut out, map);
        }
        Frame::Forward { seq, ctx, adverts } => {
            out.push(TAG_FORWARD);
            put_u64(&mut out, *seq);
            put_u64(&mut out, ctx.trace_id);
            put_u16(&mut out, ctx.path);
            put_u32(&mut out, adverts.len() as u32);
            for a in adverts {
                put_advert(&mut out, a);
            }
        }
        Frame::ForwardAck {
            seq,
            summary,
            replica_durable,
        } => {
            out.push(TAG_FORWARD_ACK);
            put_u64(&mut out, *seq);
            for v in [
                summary.consumed,
                summary.routed,
                summary.sessions_created,
                summary.rejected_non_finite,
                summary.rejected_out_of_order,
                summary.rejected_capacity,
            ] {
                put_u64(&mut out, v);
            }
            put_u64(&mut out, *replica_durable);
        }
        Frame::Replicate { seq, base, adverts } => {
            out.push(TAG_REPLICATE);
            put_u64(&mut out, *seq);
            put_u64(&mut out, *base);
            put_u32(&mut out, adverts.len() as u32);
            for a in adverts {
                put_advert(&mut out, a);
            }
        }
        Frame::ReplicateAck { seq, durable } => {
            out.push(TAG_REPLICATE_ACK);
            put_u64(&mut out, *seq);
            put_u64(&mut out, *durable);
        }
        Frame::ClusterQuery => out.push(TAG_CLUSTER_QUERY),
        Frame::ClusterReport(s) => {
            out.push(TAG_CLUSTER_REPORT);
            put_u64(&mut out, s.node_id);
            out.push(s.role as u8);
            put_partition_map(&mut out, &s.map);
            for v in [
                s.owned_sessions,
                s.forwarded_batches,
                s.forwarded_adverts,
                s.replicated_records,
            ] {
                put_u64(&mut out, v);
            }
        }
        Frame::Handoff { epoch, state } => {
            out.push(TAG_HANDOFF);
            put_u64(&mut out, *epoch);
            put_u32(&mut out, state.len() as u32);
            out.extend_from_slice(state);
        }
        Frame::HandoffAck { epoch, sessions } => {
            out.push(TAG_HANDOFF_ACK);
            put_u64(&mut out, *epoch);
            put_u64(&mut out, *sessions);
        }
        Frame::ExportState => out.push(TAG_EXPORT_STATE),
        Frame::StateExport { sessions, state } => {
            out.push(TAG_STATE_EXPORT);
            put_u64(&mut out, *sessions);
            put_u32(&mut out, state.len() as u32);
            out.extend_from_slice(state);
        }
    }
    let payload = u32::try_from(out.len() - HEADER_LEN).expect("frame payload fits in u32");
    out[..HEADER_LEN].copy_from_slice(&payload.to_be_bytes());
    out
}

/// The longest prefix of `s` that is at most `max` bytes and ends on a
/// char boundary.
fn utf8_prefix(s: &str, max: usize) -> &[u8] {
    if s.len() <= max {
        return s.as_bytes();
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    &s.as_bytes()[..end]
}

/// Total size (header + payload) of the frame starting at `buf[0]`,
/// from its length prefix alone. [`DecodeError::Incomplete`] while the
/// prefix itself is short; [`DecodeError::Oversized`] /
/// [`DecodeError::Malformed`] when the declared length cannot be valid.
pub fn frame_size(buf: &[u8], max_len: usize) -> Result<usize, DecodeError> {
    if buf.len() < HEADER_LEN {
        return Err(DecodeError::Incomplete {
            needed: HEADER_LEN - buf.len(),
        });
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len < MIN_PAYLOAD_LEN {
        return Err(DecodeError::Malformed {
            context: "payload length below version+tag minimum",
        });
    }
    if len > max_len {
        return Err(DecodeError::Oversized { len, max: max_len });
    }
    Ok(HEADER_LEN + len)
}

/// Decodes the frame at the front of `buf` with the default length cap.
/// On success returns the frame and the bytes it occupied.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), DecodeError> {
    decode_frame_with_limit(buf, DEFAULT_MAX_FRAME_LEN)
}

/// [`decode_frame`] with an explicit payload-length cap.
pub fn decode_frame_with_limit(buf: &[u8], max_len: usize) -> Result<(Frame, usize), DecodeError> {
    let total = frame_size(buf, max_len)?;
    if buf.len() < total {
        return Err(DecodeError::Incomplete {
            needed: total - buf.len(),
        });
    }
    let version = buf[HEADER_LEN];
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(DecodeError::BadVersion { got: version });
    }
    let tag = buf[HEADER_LEN + 1];
    let mut r = Reader {
        buf: &buf[HEADER_LEN + MIN_PAYLOAD_LEN..total],
        pos: 0,
    };
    let frame = match tag {
        TAG_ADVERT_BATCH => {
            let n = r.counted(ADVERT_WIRE_LEN, "advert batch count")?;
            let mut adverts = Vec::with_capacity(n);
            for _ in 0..n {
                adverts.push(r.advert()?);
            }
            Frame::AdvertBatch(adverts)
        }
        TAG_INGEST_ACK => Frame::IngestAck(IngestSummary {
            consumed: r.u64()?,
            routed: r.u64()?,
            sessions_created: r.u64()?,
            rejected_non_finite: r.u64()?,
            rejected_out_of_order: r.u64()?,
            rejected_capacity: r.u64()?,
        }),
        TAG_QUERY_SNAPSHOT => Frame::QuerySnapshot,
        TAG_SNAPSHOT => {
            let n = r.counted(ESTIMATE_MIN_WIRE_LEN, "snapshot count")?;
            let mut estimates = Vec::with_capacity(n);
            for _ in 0..n {
                estimates.push(r.estimate()?);
            }
            Frame::Snapshot(estimates)
        }
        TAG_QUERY_BEACON => Frame::QueryBeacon(r.u32()?),
        TAG_BEACON_REPLY => Frame::BeaconReply(match r.u8()? {
            0 => None,
            1 => Some(r.estimate()?),
            _ => {
                return Err(DecodeError::Malformed {
                    context: "beacon reply presence flag",
                })
            }
        }),
        TAG_QUERY_STATS => Frame::QueryStats,
        TAG_STATS => Frame::Stats(WireStats {
            samples_routed: r.u64()?,
            samples_rejected: r.u64()?,
            samples_processed: r.u64()?,
            sessions_created: r.u64()?,
            sessions_evicted: r.u64()?,
            sessions_live: r.u64()?,
            batches_pushed: r.u64()?,
            batches_rejected: r.u64()?,
            processes: r.u64()?,
            queued: r.u64()?,
        }),
        TAG_FINISH => Frame::Finish,
        TAG_FINISH_ACK => Frame::FinishAck(FinishSummary {
            samples_processed: r.u64()?,
            batches_pushed: r.u64()?,
        }),
        TAG_ERROR => {
            let code = ErrorCode::from_u8(r.u8()?).ok_or(DecodeError::Malformed {
                context: "error code",
            })?;
            let len = r.u16()? as usize;
            let bytes = r.take(len, "error message")?;
            let message =
                String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Malformed {
                    context: "error message is not UTF-8",
                })?;
            Frame::Error(WireError { code, message })
        }
        TAG_TRACED_ADVERT_BATCH => {
            let ctx = TraceCtx {
                trace_id: r.u64()?,
                path: r.u16()?,
            };
            let n = r.counted(ADVERT_WIRE_LEN, "traced advert batch count")?;
            let mut adverts = Vec::with_capacity(n);
            for _ in 0..n {
                adverts.push(r.advert()?);
            }
            Frame::TracedAdvertBatch(ctx, adverts)
        }
        TAG_TRACED_INGEST_ACK => {
            let summary = IngestSummary {
                consumed: r.u64()?,
                routed: r.u64()?,
                sessions_created: r.u64()?,
                rejected_non_finite: r.u64()?,
                rejected_out_of_order: r.u64()?,
                rejected_capacity: r.u64()?,
            };
            let ctx = TraceCtx {
                trace_id: r.u64()?,
                path: r.u16()?,
            };
            let n = r.u16()? as usize;
            if n.saturating_mul(LAP_WIRE_LEN) > r.remaining() {
                return Err(DecodeError::Malformed {
                    context: "traced ack lap count",
                });
            }
            let mut laps = Vec::with_capacity(n);
            for _ in 0..n {
                laps.push(r.lap()?);
            }
            Frame::TracedIngestAck(TracedAck { summary, ctx, laps })
        }
        TAG_METRICS_QUERY => Frame::MetricsQuery,
        TAG_METRICS_REPORT => {
            let n = r.counted(METRIC_ENTRY_MIN_WIRE_LEN, "counter count")?;
            let mut counters = Vec::with_capacity(n);
            for _ in 0..n {
                counters.push((r.string("counter name")?, r.u64()?));
            }
            let n = r.counted(METRIC_ENTRY_MIN_WIRE_LEN, "gauge count")?;
            let mut gauges = Vec::with_capacity(n);
            for _ in 0..n {
                gauges.push((r.string("gauge name")?, r.f64()?));
            }
            let n = r.counted(HISTOGRAM_MIN_WIRE_LEN, "histogram count")?;
            let mut histograms = Vec::with_capacity(n);
            for _ in 0..n {
                histograms.push(r.histogram()?);
            }
            Frame::MetricsReport(WireMetrics {
                counters,
                gauges,
                histograms,
            })
        }
        TAG_TRACE_QUERY => Frame::TraceQuery(match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            _ => {
                return Err(DecodeError::Malformed {
                    context: "trace query presence flag",
                })
            }
        }),
        TAG_TRACE_REPORT => {
            let n = r.counted(TRACE_RECORD_MIN_WIRE_LEN, "trace record count")?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push(r.trace_record()?);
            }
            Frame::TraceReport(records)
        }
        TAG_JOIN => Frame::Join(r.node_entry()?),
        TAG_JOIN_ACK => Frame::JoinAck(r.partition_map()?),
        TAG_PARTITION_MAP => Frame::PartitionMap(r.partition_map()?),
        TAG_FORWARD => {
            let seq = r.u64()?;
            let ctx = TraceCtx {
                trace_id: r.u64()?,
                path: r.u16()?,
            };
            let n = r.counted(ADVERT_WIRE_LEN, "forward batch count")?;
            let mut adverts = Vec::with_capacity(n);
            for _ in 0..n {
                adverts.push(r.advert()?);
            }
            Frame::Forward { seq, ctx, adverts }
        }
        TAG_FORWARD_ACK => Frame::ForwardAck {
            seq: r.u64()?,
            summary: IngestSummary {
                consumed: r.u64()?,
                routed: r.u64()?,
                sessions_created: r.u64()?,
                rejected_non_finite: r.u64()?,
                rejected_out_of_order: r.u64()?,
                rejected_capacity: r.u64()?,
            },
            replica_durable: r.u64()?,
        },
        TAG_REPLICATE => {
            let seq = r.u64()?;
            let base = r.u64()?;
            let n = r.counted(ADVERT_WIRE_LEN, "replicate batch count")?;
            let mut adverts = Vec::with_capacity(n);
            for _ in 0..n {
                adverts.push(r.advert()?);
            }
            Frame::Replicate { seq, base, adverts }
        }
        TAG_REPLICATE_ACK => Frame::ReplicateAck {
            seq: r.u64()?,
            durable: r.u64()?,
        },
        TAG_CLUSTER_QUERY => Frame::ClusterQuery,
        TAG_CLUSTER_REPORT => {
            let node_id = r.u64()?;
            let role = NodeRole::from_u8(r.u8()?).ok_or(DecodeError::Malformed {
                context: "node role discriminant",
            })?;
            let map = r.partition_map()?;
            Frame::ClusterReport(ClusterSummary {
                node_id,
                role,
                map,
                owned_sessions: r.u64()?,
                forwarded_batches: r.u64()?,
                forwarded_adverts: r.u64()?,
                replicated_records: r.u64()?,
            })
        }
        TAG_HANDOFF => {
            let epoch = r.u64()?;
            let n = r.counted(1, "handoff state length")?;
            let state = r.take(n, "handoff state")?.to_vec();
            Frame::Handoff { epoch, state }
        }
        TAG_HANDOFF_ACK => Frame::HandoffAck {
            epoch: r.u64()?,
            sessions: r.u64()?,
        },
        TAG_EXPORT_STATE => Frame::ExportState,
        TAG_STATE_EXPORT => {
            let sessions = r.u64()?;
            let n = r.counted(1, "state export length")?;
            let state = r.take(n, "state export bytes")?.to_vec();
            Frame::StateExport { sessions, state }
        }
        got => return Err(DecodeError::BadTag { got }),
    };
    if r.remaining() != 0 {
        return Err(DecodeError::Malformed {
            context: "trailing bytes in frame body",
        });
    }
    Ok((frame, total))
}

/// Bounds-checked body reader. Every accessor returns
/// [`DecodeError::Malformed`] on underrun — inside a complete frame a
/// short body is corruption, not truncation.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Malformed { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "u8 field")?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2, "u16 field")?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4, "u32 field")?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8, "u64 field")?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32` element count and validates it against the bytes
    /// actually present (`min_item` each), so a hostile count cannot
    /// drive allocation.
    fn counted(&mut self, min_item: usize, context: &'static str) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_item) > self.remaining() {
            return Err(DecodeError::Malformed { context });
        }
        Ok(n)
    }

    fn advert(&mut self) -> Result<WireAdvert, DecodeError> {
        Ok(WireAdvert {
            beacon: self.u32()?,
            t: self.f64()?,
            rssi_dbm: self.f64()?,
        })
    }

    fn string(&mut self, context: &'static str) -> Result<String, DecodeError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Malformed { context })
    }

    fn lap(&mut self) -> Result<StageLap, DecodeError> {
        let stage = Stage::from_u8(self.u8()?).ok_or(DecodeError::Malformed {
            context: "stage discriminant",
        })?;
        Ok(StageLap {
            stage,
            start_us: self.u64()?,
            duration_us: self.u64()?,
        })
    }

    fn trace_record(&mut self) -> Result<TraceRecord, DecodeError> {
        let ctx = TraceCtx {
            trace_id: self.u64()?,
            path: self.u16()?,
        };
        let n = self.u16()? as usize;
        if n.saturating_mul(LAP_WIRE_LEN) > self.remaining() {
            return Err(DecodeError::Malformed {
                context: "trace record lap count",
            });
        }
        let mut laps = Vec::with_capacity(n);
        for _ in 0..n {
            laps.push(self.lap()?);
        }
        Ok(TraceRecord { ctx, laps })
    }

    fn node_entry(&mut self) -> Result<NodeEntry, DecodeError> {
        Ok(NodeEntry {
            node_id: self.u64()?,
            addr: self.string("node address")?,
        })
    }

    fn partition_map(&mut self) -> Result<WirePartitionMap, DecodeError> {
        let epoch = self.u64()?;
        let n = self.counted(NODE_ENTRY_MIN_WIRE_LEN, "partition map node count")?;
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            nodes.push(self.node_entry()?);
        }
        Ok(WirePartitionMap { epoch, nodes })
    }

    fn histogram(&mut self) -> Result<(String, HistogramSnapshot), DecodeError> {
        let name = self.string("histogram name")?;
        let n = self.counted(8, "histogram bound count")?;
        let mut bounds = Vec::with_capacity(n);
        for _ in 0..n {
            bounds.push(self.f64()?);
        }
        let n = self.counted(8, "histogram bucket count")?;
        // The +1 overflow-bucket invariant travels implicitly; enforce
        // it so a scraped snapshot is safe to run quantiles over.
        if n != bounds.len() + 1 {
            return Err(DecodeError::Malformed {
                context: "histogram bucket count does not match bounds",
            });
        }
        let mut counts = Vec::with_capacity(n);
        for _ in 0..n {
            counts.push(self.u64()?);
        }
        Ok((
            name,
            HistogramSnapshot {
                bounds,
                counts,
                sum: self.f64()?,
                count: self.u64()?,
                min: self.f64()?,
                max: self.f64()?,
            },
        ))
    }

    fn estimate(&mut self) -> Result<WireEstimate, DecodeError> {
        let beacon = self.u32()?;
        let x = self.f64()?;
        let y = self.f64()?;
        let mirror = match self.u8()? {
            0 => None,
            1 => Some((self.f64()?, self.f64()?)),
            _ => {
                return Err(DecodeError::Malformed {
                    context: "mirror presence flag",
                })
            }
        };
        let confidence = self.f64()?;
        let exponent = self.f64()?;
        let gamma_dbm = self.f64()?;
        let env = match self.u8()? {
            0 => None,
            1 => Some(EnvClass::Los),
            2 => Some(EnvClass::PartialLos),
            3 => Some(EnvClass::NonLos),
            _ => {
                return Err(DecodeError::Malformed {
                    context: "env class discriminant",
                })
            }
        };
        let points_used = self.u64()?;
        let method = match self.u8()? {
            1 => FitMethod::FreeJoint,
            2 => FitMethod::Anchored,
            3 => FitMethod::Leg,
            4 => FitMethod::Gradient,
            5 => FitMethod::Particle,
            6 => FitMethod::Fingerprint,
            _ => {
                return Err(DecodeError::Malformed {
                    context: "fit method discriminant",
                })
            }
        };
        let residual_db = self.f64()?;
        Ok(WireEstimate {
            beacon,
            x,
            y,
            mirror,
            confidence,
            exponent,
            gamma_dbm,
            env,
            points_used,
            method,
            residual_db,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_estimate() -> WireEstimate {
        WireEstimate {
            beacon: 42,
            x: 1.5,
            y: -2.25,
            mirror: Some((0.5, -0.0)),
            confidence: 0.875,
            exponent: 2.1,
            gamma_dbm: -61.0,
            env: Some(EnvClass::PartialLos),
            points_used: 37,
            method: FitMethod::Anchored,
            residual_db: 3.5,
        }
    }

    #[test]
    fn every_frame_kind_round_trips() {
        let frames = [
            Frame::AdvertBatch(vec![
                WireAdvert {
                    beacon: 1,
                    t: 0.25,
                    rssi_dbm: -60.5,
                },
                WireAdvert {
                    beacon: u32::MAX,
                    t: f64::NAN,
                    rssi_dbm: f64::NEG_INFINITY,
                },
            ]),
            Frame::AdvertBatch(Vec::new()),
            Frame::IngestAck(IngestSummary {
                consumed: 10,
                routed: 7,
                sessions_created: 2,
                rejected_non_finite: 1,
                rejected_out_of_order: 1,
                rejected_capacity: 1,
            }),
            Frame::QuerySnapshot,
            Frame::Snapshot(vec![
                sample_estimate(),
                WireEstimate {
                    mirror: None,
                    env: None,
                    ..sample_estimate()
                },
            ]),
            Frame::QueryBeacon(9),
            Frame::BeaconReply(Some(sample_estimate())),
            Frame::BeaconReply(None),
            Frame::QueryStats,
            Frame::Stats(WireStats {
                samples_routed: 1,
                samples_rejected: 2,
                samples_processed: 3,
                sessions_created: 4,
                sessions_evicted: 5,
                sessions_live: 6,
                batches_pushed: 7,
                batches_rejected: 8,
                processes: 9,
                queued: 10,
            }),
            Frame::Finish,
            Frame::FinishAck(FinishSummary {
                samples_processed: 11,
                batches_pushed: 3,
            }),
            Frame::Error(WireError {
                code: ErrorCode::Capacity,
                message: "table full".to_string(),
            }),
            Frame::TracedAdvertBatch(
                TraceCtx::mint(0xDEAD_BEEF_u64),
                vec![WireAdvert {
                    beacon: 7,
                    t: 1.5,
                    rssi_dbm: -55.0,
                }],
            ),
            Frame::TracedAdvertBatch(TraceCtx::mint(0), Vec::new()),
            Frame::TracedIngestAck(TracedAck {
                summary: IngestSummary {
                    consumed: 5,
                    routed: 5,
                    ..IngestSummary::default()
                },
                ctx: TraceCtx::mint(99).with_stage(Stage::Route),
                laps: vec![
                    StageLap {
                        stage: Stage::Decode,
                        start_us: 10,
                        duration_us: 3,
                    },
                    StageLap {
                        stage: Stage::Route,
                        start_us: 14,
                        duration_us: 120,
                    },
                ],
            }),
            Frame::MetricsQuery,
            Frame::MetricsReport(WireMetrics {
                counters: vec![("net.frames_rx".to_string(), 12)],
                gauges: vec![("engine.sessions_live".to_string(), 3.0)],
                histograms: vec![(
                    "trace.refit.us".to_string(),
                    HistogramSnapshot {
                        bounds: vec![1.0, 2.0, 4.0],
                        counts: vec![0, 1, 2, 0],
                        sum: 7.5,
                        count: 3,
                        min: 1.5,
                        max: 3.5,
                    },
                )],
            }),
            Frame::MetricsReport(WireMetrics::default()),
            Frame::TraceQuery(None),
            Frame::TraceQuery(Some(0xABCD)),
            Frame::TraceReport(vec![TraceRecord {
                ctx: TraceCtx::mint(4).with_stage(Stage::Refit),
                laps: vec![StageLap {
                    stage: Stage::Refit,
                    start_us: 100,
                    duration_us: 2_000,
                }],
            }]),
            Frame::TraceReport(Vec::new()),
            Frame::Join(NodeEntry {
                node_id: 0xBEE5,
                addr: "127.0.0.1:9001".to_string(),
            }),
            Frame::JoinAck(WirePartitionMap {
                epoch: 3,
                nodes: vec![
                    NodeEntry {
                        node_id: 1,
                        addr: "127.0.0.1:9001".to_string(),
                    },
                    NodeEntry {
                        node_id: 2,
                        addr: "127.0.0.1:9002".to_string(),
                    },
                ],
            }),
            Frame::PartitionMap(WirePartitionMap {
                epoch: u64::MAX,
                nodes: Vec::new(),
            }),
            Frame::Forward {
                seq: 17,
                ctx: TraceCtx::mint(0x50C1A1).with_stage(Stage::Forward),
                adverts: vec![WireAdvert {
                    beacon: 3,
                    t: f64::INFINITY,
                    rssi_dbm: f64::NAN,
                }],
            },
            Frame::Forward {
                seq: 0,
                ctx: TraceCtx::default(),
                adverts: Vec::new(),
            },
            Frame::ForwardAck {
                seq: 17,
                summary: IngestSummary {
                    consumed: 1,
                    routed: 1,
                    ..IngestSummary::default()
                },
                replica_durable: 1,
            },
            Frame::Replicate {
                seq: 9,
                base: 4096,
                adverts: vec![WireAdvert {
                    beacon: 8,
                    t: -0.0,
                    rssi_dbm: f64::NEG_INFINITY,
                }],
            },
            Frame::ReplicateAck {
                seq: 9,
                durable: 4097,
            },
            Frame::ClusterQuery,
            Frame::ClusterReport(ClusterSummary {
                node_id: 2,
                role: NodeRole::Owner,
                map: WirePartitionMap {
                    epoch: 1,
                    nodes: vec![NodeEntry {
                        node_id: 2,
                        addr: "127.0.0.1:9002".to_string(),
                    }],
                },
                owned_sessions: 40,
                forwarded_batches: 0,
                forwarded_adverts: 0,
                replicated_records: 123_456,
            }),
            Frame::Handoff {
                epoch: 2,
                state: vec![0xDE, 0xAD, 0xBE, 0xEF],
            },
            Frame::Handoff {
                epoch: 0,
                state: Vec::new(),
            },
            Frame::HandoffAck {
                epoch: 2,
                sessions: 12,
            },
            Frame::ExportState,
            Frame::StateExport {
                sessions: 5,
                state: vec![1, 2, 3],
            },
        ];
        for frame in &frames {
            let bytes = encode_frame(frame);
            let (back, used) = decode_frame(&bytes).expect("round trip");
            assert_eq!(&back, frame);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn bad_stage_discriminant_is_malformed() {
        let frame = Frame::TraceReport(vec![TraceRecord {
            ctx: TraceCtx::mint(1),
            laps: vec![StageLap {
                stage: Stage::Ack,
                start_us: 0,
                duration_us: 1,
            }],
        }]);
        let mut bytes = encode_frame(&frame);
        // The lap's stage byte sits right after: header(4) + version +
        // tag + record count(4) + trace id(8) + path(2) + lap count(2).
        let stage_off = 4 + 1 + 1 + 4 + 8 + 2 + 2;
        bytes[stage_off] = 200;
        assert_eq!(
            decode_frame(&bytes),
            Err(DecodeError::Malformed {
                context: "stage discriminant"
            })
        );
    }

    #[test]
    fn histogram_bucket_bound_mismatch_is_malformed() {
        let frame = Frame::MetricsReport(WireMetrics {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: vec![(
                "h".to_string(),
                HistogramSnapshot {
                    bounds: vec![1.0],
                    // Violates the counts == bounds + 1 invariant.
                    counts: vec![0, 0, 0],
                    sum: 0.0,
                    count: 0,
                    min: 0.0,
                    max: 0.0,
                },
            )],
        });
        let bytes = encode_frame(&frame);
        assert_eq!(
            decode_frame(&bytes),
            Err(DecodeError::Malformed {
                context: "histogram bucket count does not match bounds"
            })
        );
    }

    #[test]
    fn old_decoders_reject_new_tags_without_a_version_bump() {
        // The versioning rule the telemetry frames rely on: a frame
        // with an unknown tag is BadTag (recoverable), not BadVersion.
        let bytes = encode_frame(&Frame::MetricsQuery);
        assert_eq!(bytes[4], WIRE_VERSION);
        let mut unknown = bytes.clone();
        unknown[5] = 250;
        let err = decode_frame(&unknown).expect_err("unknown tag");
        assert_eq!(err, DecodeError::BadTag { got: 250 });
        assert!(err.is_recoverable());
    }

    #[test]
    fn v1_frames_still_decode_under_the_v2_decoder() {
        // "Old tags still decode": every pre-cluster frame a v1 peer
        // encodes (same body layout, version byte 1) must decode.
        let old = [
            Frame::AdvertBatch(vec![WireAdvert {
                beacon: 5,
                t: 2.5,
                rssi_dbm: -70.0,
            }]),
            Frame::QuerySnapshot,
            Frame::Snapshot(vec![sample_estimate()]),
            Frame::Finish,
            Frame::MetricsQuery,
            Frame::TraceQuery(None),
        ];
        for frame in &old {
            let mut bytes = encode_frame(frame);
            bytes[HEADER_LEN] = MIN_WIRE_VERSION;
            let (back, used) = decode_frame(&bytes).expect("v1 frame decodes");
            assert_eq!(&back, frame);
            assert_eq!(used, bytes.len());
        }
        // Below the floor is still rejected.
        let mut bytes = encode_frame(&Frame::Finish);
        bytes[HEADER_LEN] = MIN_WIRE_VERSION - 1;
        assert_eq!(
            decode_frame(&bytes),
            Err(DecodeError::BadVersion {
                got: MIN_WIRE_VERSION - 1
            })
        );
    }

    #[test]
    fn truncated_input_is_incomplete_at_every_prefix() {
        let bytes = encode_frame(&Frame::QueryBeacon(3));
        for end in 0..bytes.len() {
            match decode_frame(&bytes[..end]) {
                Err(DecodeError::Incomplete { needed }) => {
                    assert!(needed > 0);
                    assert!(needed <= bytes.len() - end);
                }
                other => panic!("prefix of {end} bytes gave {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_is_fatal_and_bad_version_is_not() {
        let mut bytes = encode_frame(&Frame::QuerySnapshot);
        bytes[..4].copy_from_slice(&(DEFAULT_MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        let err = decode_frame(&bytes).expect_err("oversized");
        assert!(matches!(err, DecodeError::Oversized { .. }));
        assert!(!err.is_recoverable());

        let mut bytes = encode_frame(&Frame::QuerySnapshot);
        bytes[4] = WIRE_VERSION + 1;
        let err = decode_frame(&bytes).expect_err("bad version");
        assert_eq!(
            err,
            DecodeError::BadVersion {
                got: WIRE_VERSION + 1
            }
        );
        assert!(err.is_recoverable());
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // An advert batch claiming u32::MAX elements in a 10-byte body.
        let mut bytes = vec![0u8; 4];
        bytes.push(WIRE_VERSION);
        bytes.push(TAG_ADVERT_BATCH);
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.extend_from_slice(&[0u8; 10]);
        let payload = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&payload.to_be_bytes());
        assert_eq!(
            decode_frame(&bytes),
            Err(DecodeError::Malformed {
                context: "advert batch count"
            })
        );
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut bytes = encode_frame(&Frame::Finish);
        bytes.push(0xAB);
        let payload = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&payload.to_be_bytes());
        assert_eq!(
            decode_frame(&bytes),
            Err(DecodeError::Malformed {
                context: "trailing bytes in frame body"
            })
        );
    }

    #[test]
    fn error_message_truncates_on_char_boundary() {
        let long = "é".repeat(40_000); // 2 bytes per char: 80 000 bytes
        let bytes = encode_frame(&Frame::Error(WireError {
            code: ErrorCode::Internal,
            message: long,
        }));
        let (frame, _) = decode_frame(&bytes).expect("decodes");
        match frame {
            Frame::Error(e) => {
                assert!(e.message.len() <= u16::MAX as usize);
                assert!(e.message.chars().all(|c| c == 'é'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
