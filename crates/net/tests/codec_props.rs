//! Codec properties: `decode(encode(frame)) == frame` for every frame
//! type, and decoder totality — arbitrary bytes (random, truncated,
//! length-corrupted, version-corrupted) must yield a typed
//! [`DecodeError`], never a panic.

use locble_core::FitMethod;
use locble_geom::EnvClass;
use locble_net::wire::{
    decode_frame, decode_frame_with_limit, encode_frame, ClusterSummary, DecodeError, ErrorCode,
    FinishSummary, Frame, IngestSummary, NodeEntry, NodeRole, TracedAck, WireAdvert, WireError,
    WireEstimate, WireMetrics, WirePartitionMap, WireStats, DEFAULT_MAX_FRAME_LEN,
    MIN_WIRE_VERSION, WIRE_VERSION,
};
use locble_net::{Assembled, FrameAssembler};
use locble_obs::{HistogramSnapshot, Stage, StageLap, TraceCtx, TraceRecord};
use proptest::prelude::*;

/// All of f64, non-finite bit patterns included: estimates and adverts
/// must survive the wire bit-exactly whatever the pipeline produced.
fn any_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<f64>(),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-0.0),
        Just(f64::MIN_POSITIVE),
    ]
}

fn any_advert() -> impl Strategy<Value = WireAdvert> {
    (any::<u32>(), any_f64(), any_f64()).prop_map(|(beacon, t, rssi_dbm)| WireAdvert {
        beacon,
        t,
        rssi_dbm,
    })
}

fn any_estimate() -> impl Strategy<Value = WireEstimate> {
    let head = (
        any::<u32>(),
        any_f64(),
        any_f64(),
        prop_oneof![Just(None), (any::<f64>(), any::<f64>()).prop_map(Some),],
    );
    let tail = (
        any_f64(),
        any_f64(),
        any_f64(),
        prop_oneof![
            Just(None),
            Just(Some(EnvClass::Los)),
            Just(Some(EnvClass::PartialLos)),
            Just(Some(EnvClass::NonLos)),
        ],
        any::<u64>(),
        prop_oneof![
            Just(FitMethod::FreeJoint),
            Just(FitMethod::Anchored),
            Just(FitMethod::Leg),
            Just(FitMethod::Gradient),
            Just(FitMethod::Particle),
            Just(FitMethod::Fingerprint),
        ],
        any_f64(),
    );
    (head, tail).prop_map(
        |(
            (beacon, x, y, mirror),
            (confidence, exponent, gamma_dbm, env, points_used, method, residual_db),
        )| WireEstimate {
            beacon,
            x,
            y,
            mirror,
            confidence,
            exponent,
            gamma_dbm,
            env,
            points_used,
            method,
            residual_db,
        },
    )
}

fn any_summary() -> impl Strategy<Value = IngestSummary> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(
                consumed,
                routed,
                sessions_created,
                rejected_non_finite,
                rejected_out_of_order,
                rejected_capacity,
            )| IngestSummary {
                consumed,
                routed,
                sessions_created,
                rejected_non_finite,
                rejected_out_of_order,
                rejected_capacity,
            },
        )
}

fn any_stats() -> impl Strategy<Value = WireStats> {
    (
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
    )
        .prop_map(|((a, b, c, d, e), (f, g, h, i, j))| WireStats {
            samples_routed: a,
            samples_rejected: b,
            samples_processed: c,
            sessions_created: d,
            sessions_evicted: e,
            sessions_live: f,
            batches_pushed: g,
            batches_rejected: h,
            processes: i,
            queued: j,
        })
}

fn any_error() -> impl Strategy<Value = WireError> {
    (
        prop_oneof![
            Just(ErrorCode::BadFrame),
            Just(ErrorCode::UnsupportedVersion),
            Just(ErrorCode::Backpressure),
            Just(ErrorCode::Capacity),
            Just(ErrorCode::ShuttingDown),
            Just(ErrorCode::Internal),
        ],
        "\\PC{0,60}",
    )
        .prop_map(|(code, message)| WireError { code, message })
}

fn any_stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        Just(Stage::Client),
        Just(Stage::Forward),
        Just(Stage::Decode),
        Just(Stage::Coalesce),
        Just(Stage::Wal),
        Just(Stage::Replicate),
        Just(Stage::Route),
        Just(Stage::ShardQueue),
        Just(Stage::Refit),
        Just(Stage::Ack),
    ]
}

fn any_lap() -> impl Strategy<Value = StageLap> {
    (any_stage(), any::<u64>(), any::<u64>()).prop_map(|(stage, start_us, duration_us)| StageLap {
        stage,
        start_us,
        duration_us,
    })
}

fn any_ctx() -> impl Strategy<Value = TraceCtx> {
    (any::<u64>(), any::<u16>()).prop_map(|(trace_id, path)| TraceCtx { trace_id, path })
}

fn any_trace_record() -> impl Strategy<Value = TraceRecord> {
    (any_ctx(), prop::collection::vec(any_lap(), 0..8))
        .prop_map(|(ctx, laps)| TraceRecord { ctx, laps })
}

/// A histogram that obeys the wire invariant `counts == bounds + 1`
/// (the decoder rejects anything else as malformed).
fn any_histogram() -> impl Strategy<Value = HistogramSnapshot> {
    (
        prop::collection::vec(any_f64(), 0..6),
        prop::collection::vec(any::<u64>(), 0..8),
        any_f64(),
        any::<u64>(),
        any_f64(),
        any_f64(),
    )
        .prop_map(|(bounds, mut counts, sum, count, min, max)| {
            // Enforce the invariant rather than generating it: one
            // count per bucket plus the overflow bucket.
            counts.resize(bounds.len() + 1, 0);
            HistogramSnapshot {
                bounds,
                counts,
                sum,
                count,
                min,
                max,
            }
        })
}

fn any_metrics() -> impl Strategy<Value = WireMetrics> {
    (
        prop::collection::vec(("\\PC{0,24}", any::<u64>()), 0..6),
        prop::collection::vec(("\\PC{0,24}", any_f64()), 0..6),
        prop::collection::vec(("\\PC{0,24}", any_histogram()), 0..4),
    )
        .prop_map(|(counters, gauges, histograms)| WireMetrics {
            counters,
            gauges,
            histograms,
        })
}

fn any_node_entry() -> impl Strategy<Value = NodeEntry> {
    (any::<u64>(), "\\PC{0,24}").prop_map(|(node_id, addr)| NodeEntry { node_id, addr })
}

fn any_partition_map() -> impl Strategy<Value = WirePartitionMap> {
    (any::<u64>(), prop::collection::vec(any_node_entry(), 0..5))
        .prop_map(|(epoch, nodes)| WirePartitionMap { epoch, nodes })
}

fn any_node_role() -> impl Strategy<Value = NodeRole> {
    prop_oneof![
        Just(NodeRole::Front),
        Just(NodeRole::Owner),
        Just(NodeRole::Follower),
    ]
}

fn any_cluster_summary() -> impl Strategy<Value = ClusterSummary> {
    (
        (any::<u64>(), any_node_role(), any_partition_map()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(
                (node_id, role, map),
                (owned_sessions, forwarded_batches, forwarded_adverts, replicated_records),
            )| ClusterSummary {
                node_id,
                role,
                map,
                owned_sessions,
                forwarded_batches,
                forwarded_adverts,
                replicated_records,
            },
        )
}

/// The cluster frames wire version 2 added. Forward/Replicate carry
/// adverts through `any_advert()`, so non-finite f64s travel here too.
fn any_cluster_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        any_node_entry().prop_map(Frame::Join),
        any_partition_map().prop_map(Frame::JoinAck),
        any_partition_map().prop_map(Frame::PartitionMap),
        (
            any::<u64>(),
            any_ctx(),
            prop::collection::vec(any_advert(), 0..40)
        )
            .prop_map(|(seq, ctx, adverts)| Frame::Forward { seq, ctx, adverts }),
        (any::<u64>(), any_summary(), any::<u64>()).prop_map(|(seq, summary, replica_durable)| {
            Frame::ForwardAck {
                seq,
                summary,
                replica_durable,
            }
        }),
        (
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(any_advert(), 0..40)
        )
            .prop_map(|(seq, base, adverts)| Frame::Replicate { seq, base, adverts }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(seq, durable)| Frame::ReplicateAck { seq, durable }),
        Just(Frame::ClusterQuery),
        any_cluster_summary().prop_map(Frame::ClusterReport),
        (any::<u64>(), prop::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(epoch, state)| Frame::Handoff { epoch, state }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(epoch, sessions)| Frame::HandoffAck { epoch, sessions }),
        Just(Frame::ExportState),
        (any::<u64>(), prop::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(sessions, state)| Frame::StateExport { sessions, state }),
    ]
}

/// Every frame variant, weighted uniformly.
fn any_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        any_cluster_frame(),
        prop::collection::vec(any_advert(), 0..40).prop_map(Frame::AdvertBatch),
        any_summary().prop_map(Frame::IngestAck),
        Just(Frame::QuerySnapshot),
        prop::collection::vec(any_estimate(), 0..12).prop_map(Frame::Snapshot),
        any::<u32>().prop_map(Frame::QueryBeacon),
        prop_oneof![Just(None), any_estimate().prop_map(Some)].prop_map(Frame::BeaconReply),
        Just(Frame::QueryStats),
        any_stats().prop_map(Frame::Stats),
        Just(Frame::Finish),
        (any::<u64>(), any::<u64>()).prop_map(|(s, b)| {
            Frame::FinishAck(FinishSummary {
                samples_processed: s,
                batches_pushed: b,
            })
        }),
        any_error().prop_map(Frame::Error),
        (any_ctx(), prop::collection::vec(any_advert(), 0..40))
            .prop_map(|(ctx, batch)| Frame::TracedAdvertBatch(ctx, batch)),
        (
            any_summary(),
            any_ctx(),
            prop::collection::vec(any_lap(), 0..8)
        )
            .prop_map(|(summary, ctx, laps)| Frame::TracedIngestAck(TracedAck {
                summary,
                ctx,
                laps
            })),
        Just(Frame::MetricsQuery),
        any_metrics().prop_map(Frame::MetricsReport),
        prop_oneof![Just(None), any::<u64>().prop_map(Some)].prop_map(Frame::TraceQuery),
        prop::collection::vec(any_trace_record(), 0..6).prop_map(Frame::TraceReport),
    ]
}

/// Pulls everything currently decodable out of an assembler:
/// `(frames, skipped)`. Valid-input properties assert `skipped == 0`.
fn drain_assembler(asm: &mut FrameAssembler) -> Result<(Vec<Frame>, usize), DecodeError> {
    let mut frames = Vec::new();
    let mut skipped = 0;
    while let Some(step) = asm.next_frame()? {
        match step {
            Assembled::Frame(f) => frames.push(f),
            Assembled::Skipped(_) => skipped += 1,
        }
    }
    Ok((frames, skipped))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round trip: every frame type survives encode → decode exactly
    /// (floats bit-for-bit, non-finite values included), consuming
    /// exactly its own bytes.
    #[test]
    fn encode_decode_round_trips(frame in any_frame()) {
        let bytes = encode_frame(&frame);
        let (back, used) = match decode_frame(&bytes) {
            Ok(ok) => ok,
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(
                format!("own encoding failed to decode: {e}"),
            )),
        };
        prop_assert_eq!(&back, &frame);
        prop_assert_eq!(used, bytes.len());
    }

    /// Totality over garbage: arbitrary byte strings decode to a typed
    /// error or a frame — never a panic, and a successful decode never
    /// claims more bytes than it was given.
    #[test]
    fn decoder_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        match decode_frame(&bytes) {
            Ok((_, used)) => prop_assert!(used <= bytes.len()),
            Err(DecodeError::Incomplete { needed }) => prop_assert!(needed > 0),
            Err(_) => {}
        }
    }

    /// Totality over truncation: every strict prefix of a valid
    /// encoding is `Incomplete` with an achievable byte requirement.
    #[test]
    fn every_truncation_is_typed_incomplete(frame in any_frame(), cut in 0.0f64..1.0) {
        let bytes = encode_frame(&frame);
        let end = ((bytes.len() as f64) * cut) as usize; // < len: cut < 1
        match decode_frame(&bytes[..end]) {
            Err(DecodeError::Incomplete { needed }) => {
                prop_assert!(needed > 0);
                prop_assert!(needed <= bytes.len() - end);
            }
            other => return Err(proptest::test_runner::TestCaseError::fail(
                format!("{end}-byte prefix of a {}-byte frame gave {other:?}", bytes.len()),
            )),
        }
    }

    /// Totality over corruption: flipping any single byte of a valid
    /// encoding yields a frame or a typed error, never a panic; and a
    /// corrupted version byte either lands inside the supported range
    /// (still the same frame — bodies are version-independent) or is
    /// `BadVersion`.
    #[test]
    fn single_byte_corruption_never_panics(
        frame in any_frame(),
        pos in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_frame(&frame);
        let idx = ((bytes.len() as f64) * pos) as usize % bytes.len();
        bytes[idx] ^= flip;
        match decode_frame(&bytes) {
            Ok(_) | Err(_) => {}
        }
        // Target the version byte specifically.
        let mut bytes = encode_frame(&frame);
        let corrupted = WIRE_VERSION ^ flip;
        bytes[4] = corrupted;
        if (MIN_WIRE_VERSION..=WIRE_VERSION).contains(&corrupted) {
            let (decoded, used) = decode_frame(&bytes)
                .expect("a supported version decodes whatever the stamp");
            prop_assert_eq!(decoded, frame);
            prop_assert_eq!(used, bytes.len());
        } else {
            prop_assert_eq!(
                decode_frame(&bytes).expect_err("version byte corrupted"),
                DecodeError::BadVersion { got: corrupted }
            );
        }
    }

    /// The reactor's partial-frame state machine: any byte-boundary
    /// split of a valid frame sequence — down to one byte at a time —
    /// must reassemble into the identical frame list as one contiguous
    /// feed, with no skips, no leftovers, and no frame crossing between
    /// chunks corrupted.
    #[test]
    fn split_feed_reassembles_identically_to_contiguous(
        frames in prop::collection::vec(any_frame(), 1..6),
        chunk_sizes in prop::collection::vec(1usize..17, 1..64),
    ) {
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&encode_frame(f));
        }

        // Reference: the whole stream in one feed.
        let mut contiguous = FrameAssembler::new(DEFAULT_MAX_FRAME_LEN);
        contiguous.feed(&bytes);
        let (reference, skipped) = drain_assembler(&mut contiguous)
            .expect("valid stream never loses framing");
        prop_assert_eq!(skipped, 0);
        prop_assert_eq!(&reference, &frames);
        prop_assert_eq!(contiguous.buffered(), 0);

        // Split: feed arbitrary chunks (cycling the generated sizes),
        // draining after every feed — the readiness-event shape.
        let mut split = FrameAssembler::new(DEFAULT_MAX_FRAME_LEN);
        let mut out = Vec::new();
        let mut offset = 0;
        let mut turn = 0;
        while offset < bytes.len() {
            let take = chunk_sizes[turn % chunk_sizes.len()].min(bytes.len() - offset);
            turn += 1;
            split.feed(&bytes[offset..offset + take]);
            offset += take;
            let (mut frames_now, skipped_now) = drain_assembler(&mut split)
                .expect("valid stream never loses framing");
            prop_assert_eq!(skipped_now, 0);
            out.append(&mut frames_now);
        }
        prop_assert_eq!(&out, &frames);
        prop_assert_eq!(split.buffered(), 0);
    }

    /// Oversized length prefixes are rejected before any allocation,
    /// under both the default cap and a tiny explicit cap.
    #[test]
    fn oversized_length_is_typed(frame in any_frame(), extra in 1u32..1_000_000) {
        let mut bytes = encode_frame(&frame);
        let huge = DEFAULT_MAX_FRAME_LEN as u32 + extra;
        bytes[..4].copy_from_slice(&huge.to_be_bytes());
        prop_assert_eq!(
            decode_frame(&bytes).expect_err("oversized must not decode"),
            DecodeError::Oversized { len: huge as usize, max: DEFAULT_MAX_FRAME_LEN }
        );
        let payload = bytes.len() - 4;
        if payload > 64 {
            bytes[..4].copy_from_slice(&(payload as u32).to_be_bytes());
            prop_assert_eq!(
                decode_frame_with_limit(&bytes, 64).expect_err("cap of 64"),
                DecodeError::Oversized { len: payload, max: 64 }
            );
        }
    }
}
