//! Live introspection over loopback: one traced batch must come back
//! with per-stage latency attributable to *that* batch (decode,
//! shard-queue wait, refit, ack), the server's metrics frames must
//! expose the per-stage histograms, and a decode storm must dump the
//! flight recorder to a parseable file.

use locble_ble::BeaconId;
use locble_core::{Estimator, EstimatorConfig};
use locble_engine::{Advert, Engine, EngineConfig};
use locble_net::{Client, Server, ServerConfig};
use locble_obs::{trace_id, Obs, Stage, TraceCtx};
use std::path::PathBuf;

fn engine(obs: Obs) -> Engine {
    Engine::new(
        EngineConfig::default(),
        Estimator::new(EstimatorConfig::default()),
        obs,
    )
}

fn adverts(n: usize) -> Vec<Advert> {
    (0..n)
        .map(|i| Advert {
            beacon: BeaconId((i % 7) as u32),
            t: i as f64 * 0.1,
            rssi_dbm: -60.0,
        })
        .collect()
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("locble-introspection-{tag}-{}", std::process::id()))
}

#[test]
fn one_traced_batch_is_attributable_per_stage() {
    let obs = Obs::flight(4, 4096);
    let server = Server::bind(engine(obs.clone()), ServerConfig::default(), obs).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let id = trace_id(0xC11E47, 1);
    let ack = client
        .ingest_traced(&adverts(300), TraceCtx::mint(id))
        .expect("traced ingest");

    // The ack carries the batch's accounting plus every lap closed
    // before the ack was written.
    assert_eq!(ack.summary.consumed, 300);
    assert_eq!(ack.summary.routed, 300);
    assert_eq!(ack.ctx.trace_id, id);
    for stage in [Stage::Client, Stage::Decode, Stage::Route] {
        assert!(
            ack.ctx.has_stage(stage),
            "ack path missing {}: {:?}",
            stage.name(),
            ack.ctx.stages()
        );
    }
    for stage in [Stage::Decode, Stage::Route, Stage::ShardQueue, Stage::Refit] {
        assert!(
            ack.laps.iter().any(|l| l.stage == stage),
            "ack laps missing {}: {:?}",
            stage.name(),
            ack.laps
        );
    }

    // The ack lap is recorded after the reply hits the wire, so it
    // lives only in the server's trace table — fetch it back.
    let records = client.traces(Some(id)).expect("trace query");
    assert_eq!(records.len(), 1, "exactly one record for the traced batch");
    let record = &records[0];
    assert_eq!(record.ctx.trace_id, id);
    for stage in [Stage::Decode, Stage::ShardQueue, Stage::Refit, Stage::Ack] {
        assert!(
            record.lap(stage).is_some(),
            "trace record missing {} lap: {:?}",
            stage.name(),
            record.laps
        );
    }
    // Laps are wall-clock laps of this one batch: every start is within
    // the handle's epoch-relative timeline and durations are sane
    // (under a minute for 300 adverts on loopback).
    for lap in &record.laps {
        assert!(lap.duration_us < 60_000_000, "absurd lap: {lap:?}");
    }

    // An unknown id returns an empty report, not an error.
    assert!(client.traces(Some(id ^ 1)).expect("miss").is_empty());

    // The full-table query contains the same trace.
    let all = client.traces(None).expect("all traces");
    assert!(all.iter().any(|r| r.ctx.trace_id == id));

    // The per-stage histograms observed this batch's laps.
    let metrics = client.metrics().expect("metrics");
    let snapshot = metrics.to_snapshot();
    for stage in [
        Stage::Decode,
        Stage::Route,
        Stage::ShardQueue,
        Stage::Refit,
        Stage::Ack,
    ] {
        let hist = snapshot
            .histograms
            .get(stage.histogram_name())
            .unwrap_or_else(|| panic!("{} histogram not served", stage.histogram_name()));
        assert!(
            hist.count >= 1,
            "{} histogram is empty",
            stage.histogram_name()
        );
    }
    assert!(snapshot.counter("net.frames_rx") >= 1);

    client.finish().expect("finish");
    drop(client);
    server.shutdown();
}

#[test]
fn decode_storm_dumps_the_flight_recorder() {
    let dump = temp_path("storm");
    let _ = std::fs::remove_file(&dump);
    let obs = Obs::flight(4, 4096);
    let config = ServerConfig {
        flight_dump_path: Some(dump.clone()),
        decode_storm_threshold: 3,
        ..ServerConfig::default()
    };
    let server = Server::bind(engine(obs.clone()), config, obs).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Some real traffic first, so the dump has history to show.
    client.ingest(&adverts(50)).expect("ingest");

    // Three framed-but-malformed requests: the length prefix is valid,
    // the tag is not, so each one is a recoverable decode error.
    let mut bad = locble_net::encode_frame(&locble_net::Frame::QueryStats);
    bad[5] = 250; // corrupt the tag byte (after 4-byte length + version)
    for _ in 0..3 {
        client.send_raw(&bad).expect("send");
        match client.read_frame().expect("reply") {
            locble_net::Frame::Error(e) => {
                assert_eq!(e.code, locble_net::ErrorCode::BadFrame)
            }
            other => panic!("expected an error reply, got {other:?}"),
        }
    }

    // The third error crossed the threshold: the dump exists and every
    // line parses back into an event.
    let text = std::fs::read_to_string(&dump).expect("dump written");
    let events = locble_obs::events_from_jsonl(&text).expect("dump parses");
    assert!(!events.is_empty(), "dump has no events");
    assert!(
        events.iter().any(|e| e.name == "flight_dump"),
        "dump lacks its own trigger event"
    );

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(&dump);
}
