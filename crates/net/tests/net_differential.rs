//! End-to-end differential determinism over loopback: the accepted
//! advert stream delivered through `locble-net` must leave the engine
//! in a state **bit-identical** to calling `Engine::ingest_all` on the
//! same sequence directly — same estimates out of the wire snapshot,
//! same estimates out of the engine handed back by shutdown.

use locble_ble::BeaconId;
use locble_core::{Estimator, EstimatorConfig, LocationEstimate};
use locble_engine::{Advert, Engine, EngineConfig};
use locble_net::{Client, Server, ServerConfig};
use locble_obs::Obs;
use locble_scenario::fleet_session;
use locble_scenario::runner::track_observer;

/// Byte-level equality on every estimate field (same discipline as the
/// engine's own determinism suite).
fn assert_bit_identical(
    label: &str,
    got: &[(BeaconId, LocationEstimate)],
    want: &[(BeaconId, LocationEstimate)],
) {
    assert_eq!(
        got.iter().map(|(b, _)| *b).collect::<Vec<_>>(),
        want.iter().map(|(b, _)| *b).collect::<Vec<_>>(),
        "{label}: beacon sets differ"
    );
    for ((b, g), (_, w)) in got.iter().zip(want) {
        let pairs = [
            ("position.x", g.position.x, w.position.x),
            ("position.y", g.position.y, w.position.y),
            ("confidence", g.confidence, w.confidence),
            ("exponent", g.exponent, w.exponent),
            ("gamma_dbm", g.gamma_dbm, w.gamma_dbm),
            ("residual_db", g.residual_db, w.residual_db),
        ];
        for (field, gv, wv) in pairs {
            assert_eq!(
                gv.to_bits(),
                wv.to_bits(),
                "{label}: beacon {b} {field}: {gv} != {wv}"
            );
        }
        assert_eq!(
            g.mirror.map(|m| (m.x.to_bits(), m.y.to_bits())),
            w.mirror.map(|m| (m.x.to_bits(), m.y.to_bits())),
            "{label}: beacon {b} mirror"
        );
        assert_eq!(g.points_used, w.points_used, "{label}: beacon {b} points");
        assert_eq!(g.env, w.env, "{label}: beacon {b} env");
        assert_eq!(g.method, w.method, "{label}: beacon {b} method");
    }
}

/// Full tracing must be invisible to the math: the same stream shipped
/// with a minted [`TraceCtx`] per batch into a *recording* server (so
/// every decode/route/shard-queue/refit/ack lap actually fires) leaves
/// estimates bit-identical to the untraced noop run above.
#[test]
fn fully_traced_stream_is_bit_identical_to_noop_run() {
    use locble_obs::{trace_id, TraceCtx};

    let session = fleet_session(10, 41);
    let estimator = Estimator::new(EstimatorConfig::default());
    let motion = track_observer(&session);
    let adverts: Vec<Advert> = session
        .interleaved_rss()
        .into_iter()
        .map(Advert::from)
        .collect();
    let config = EngineConfig::default();

    // Reference: untraced wire path into a noop-instrumented server.
    let mut engine = Engine::new(config.clone(), estimator.clone(), Obs::noop());
    engine.set_motion(motion.clone());
    let server = Server::bind(engine, ServerConfig::default(), Obs::noop()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    for chunk in adverts.chunks(97) {
        client.ingest(chunk).expect("ingest");
    }
    client.finish().expect("finish");
    let want = client.snapshot().expect("snapshot");
    drop(client);
    server.shutdown();

    // Traced path: identical stream, every batch under a trace context,
    // into a recording server.
    let mut engine = Engine::new(config, estimator, Obs::flight(4, 4096));
    engine.set_motion(motion);
    let obs = Obs::flight(4, 4096);
    let server = Server::bind(engine, ServerConfig::default(), obs).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    for (batch, chunk) in adverts.chunks(97).enumerate() {
        let ctx = TraceCtx::mint(trace_id(0xD1FF, batch as u64));
        let ack = client.ingest_traced(chunk, ctx).expect("traced ingest");
        assert_eq!(ack.summary.consumed, chunk.len() as u64);
        assert_eq!(ack.ctx.trace_id, ctx.trace_id);
    }
    client.finish().expect("finish");
    let traced = client.snapshot().expect("snapshot");
    drop(client);
    server.shutdown();

    assert_bit_identical("traced vs noop", &traced, &want);
}

/// Concurrency differential: N clients stream disjoint beacon
/// partitions into the reactor at once, so their batches interleave
/// arbitrarily inside coalesced ticks — yet because each beacon's
/// stream stays in time order on its one connection, the engine must
/// end bit-identical to a sequential `ingest_all` of the same
/// per-beacon advert order. Eviction is pinned off so wall-clock
/// scheduling (which client runs ahead) cannot perturb session
/// lifetimes.
#[test]
fn concurrent_reactor_clients_match_sequential_ingest_bit_for_bit() {
    const CLIENTS: usize = 8;
    let session = fleet_session(10, 41);
    let estimator = Estimator::new(EstimatorConfig::default());
    let motion = track_observer(&session);
    let adverts: Vec<Advert> = session
        .interleaved_rss()
        .into_iter()
        .map(Advert::from)
        .collect();
    let config = EngineConfig {
        idle_evict_s: f64::INFINITY,
        ..EngineConfig::default()
    };

    // Reference: the full interleaved stream, sequentially.
    let mut reference = Engine::new(config.clone(), estimator.clone(), Obs::noop());
    reference.set_motion(motion.clone());
    let ref_report = reference.ingest_all(&adverts);
    reference.finish();
    let want = reference.snapshot();

    // Partition by beacon: each client owns some beacons outright, so
    // per-beacon time order survives any cross-client interleaving.
    let mut partitions: Vec<Vec<Advert>> = (0..CLIENTS).map(|_| Vec::new()).collect();
    for advert in &adverts {
        partitions[advert.beacon.0 as usize % CLIENTS].push(*advert);
    }

    let mut engine = Engine::new(config, estimator, Obs::noop());
    engine.set_motion(motion);
    let server = Server::bind(engine, ServerConfig::default(), Obs::ring(64)).expect("bind");
    let addr = server.addr();

    let totals: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = partitions
            .iter()
            .map(|part| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut delivered = 0u64;
                    let mut accepted = 0u64;
                    let mut rejected = 0u64;
                    for chunk in part.chunks(64) {
                        let ack = client.ingest(chunk).expect("ingest");
                        assert_eq!(ack.consumed, chunk.len() as u64);
                        delivered += ack.consumed;
                        accepted += ack.routed;
                        rejected += ack.rejected();
                    }
                    (delivered, accepted, rejected)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    let delivered: u64 = totals.iter().map(|t| t.0).sum();
    let accepted: u64 = totals.iter().map(|t| t.1).sum();
    let rejected: u64 = totals.iter().map(|t| t.2).sum();
    assert_eq!(delivered, adverts.len() as u64);
    assert_eq!(delivered, accepted + rejected, "every advert is accounted");
    assert_eq!(rejected, 0, "in-order per-beacon streams have no rejects");
    assert_eq!(accepted, ref_report.routed as u64);

    let mut control = Client::connect(addr).expect("control connect");
    control.finish().expect("finish");
    let over_wire = control.snapshot().expect("snapshot");
    assert_bit_identical("concurrent wire snapshot", &over_wire, &want);
    drop(control);

    let engine = server.shutdown();
    assert_bit_identical("engine after concurrent run", &engine.snapshot(), &want);
    assert_eq!(engine.queued(), 0);
    assert_eq!(engine.stats().samples_routed as u64, accepted);
}

#[test]
fn loopback_stream_matches_direct_ingest_bit_for_bit() {
    let session = fleet_session(10, 41);
    let estimator = Estimator::new(EstimatorConfig::default());
    let motion = track_observer(&session);
    let adverts: Vec<Advert> = session
        .interleaved_rss()
        .into_iter()
        .map(Advert::from)
        .collect();
    let config = EngineConfig::default();

    // Reference: the whole stream through ingest_all, no network.
    let mut reference = Engine::new(config.clone(), estimator.clone(), Obs::noop());
    reference.set_motion(motion.clone());
    reference.ingest_all(&adverts);
    reference.finish();
    let want = reference.snapshot();
    assert!(
        want.len() >= 6,
        "reference localized only {} of 10 beacons",
        want.len()
    );

    // Wire path: same stream in 97-advert batches over loopback.
    let mut engine = Engine::new(config, estimator, Obs::noop());
    engine.set_motion(motion);
    let server = Server::bind(engine, ServerConfig::default(), Obs::ring(64)).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut delivered = 0u64;
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for chunk in adverts.chunks(97) {
        let ack = client.ingest(chunk).expect("ingest");
        delivered += chunk.len() as u64;
        accepted += ack.routed;
        rejected += ack.rejected();
        assert_eq!(
            ack.consumed,
            chunk.len() as u64,
            "batches are never truncated"
        );
    }
    assert_eq!(delivered, accepted + rejected, "every advert is accounted");
    assert_eq!(rejected, 0, "a clean simulated stream has no rejects");
    client.finish().expect("finish");

    // The snapshot read over the wire is already bit-identical …
    let over_wire = client.snapshot().expect("snapshot");
    assert_bit_identical("wire snapshot", &over_wire, &want);

    // … and so is the engine handed back by graceful shutdown.
    let stats_wire = client.stats().expect("stats");
    drop(client);
    let engine = server.shutdown();
    assert_bit_identical("engine after shutdown", &engine.snapshot(), &want);

    // Accounting reconciles exactly between wire stats, engine stats,
    // and the reference run.
    let stats = engine.stats();
    assert_eq!(stats_wire.samples_routed, accepted);
    assert_eq!(stats.samples_routed, accepted);
    assert_eq!(stats.samples_processed, reference.stats().samples_processed);
    assert_eq!(engine.queued(), 0);
}
