//! Real-crash durability under the reactor: a child process runs a
//! `bind_durable` reactor server and streams a fleet trace into it over
//! loopback; the parent SIGKILLs the child mid-stream — no graceful
//! drain, no shutdown checkpoint, the kernel just stops the world —
//! then recovers the store directory, resumes the stream behind a fresh
//! reactor from exactly the durable record count, and requires the
//! finished engine to be bit-identical to an uninterrupted reference.
//!
//! The child is this same test binary re-executed with `--exact` on the
//! env-gated helper below (the pattern the bench crashtest binary
//! uses); without the env var the helper is a no-op.

use locble_ble::BeaconId;
use locble_core::{Estimator, EstimatorConfig, LocationEstimate};
use locble_engine::{Advert, Engine, EngineConfig};
use locble_net::{Client, Server, ServerConfig};
use locble_obs::Obs;
use locble_scenario::fleet_session;
use locble_scenario::runner::track_observer;
use locble_store::{FsyncPolicy, SessionStore};
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

const CHILD_DIR_ENV: &str = "LOCBLE_REACTOR_CRASH_DIR";
const FLEET_BEACONS: usize = 10;
const FLEET_SEED: u64 = 53;
const CHUNK: usize = 97;

fn fleet_adverts() -> Vec<Advert> {
    fleet_session(FLEET_BEACONS, FLEET_SEED)
        .interleaved_rss()
        .into_iter()
        .map(Advert::from)
        .collect()
}

fn assert_bit_identical(
    label: &str,
    got: &[(BeaconId, LocationEstimate)],
    want: &[(BeaconId, LocationEstimate)],
) {
    assert_eq!(
        got.iter().map(|(b, _)| *b).collect::<Vec<_>>(),
        want.iter().map(|(b, _)| *b).collect::<Vec<_>>(),
        "{label}: beacon sets differ"
    );
    for ((b, g), (_, w)) in got.iter().zip(want) {
        let pairs = [
            ("position.x", g.position.x, w.position.x),
            ("position.y", g.position.y, w.position.y),
            ("confidence", g.confidence, w.confidence),
            ("exponent", g.exponent, w.exponent),
            ("gamma_dbm", g.gamma_dbm, w.gamma_dbm),
            ("residual_db", g.residual_db, w.residual_db),
        ];
        for (field, gv, wv) in pairs {
            assert_eq!(
                gv.to_bits(),
                wv.to_bits(),
                "{label}: beacon {b} {field}: {gv} != {wv}"
            );
        }
        assert_eq!(g.points_used, w.points_used, "{label}: beacon {b} points");
        assert_eq!(g.env, w.env, "{label}: beacon {b} env");
        assert_eq!(g.method, w.method, "{label}: beacon {b} method");
    }
}

/// Env-gated child body: streams the fleet trace through a durable
/// reactor server, reporting cumulative acked adverts on stdout so the
/// parent can time its kill. A no-op (passing) test when the env var is
/// absent. The trailing sleep keeps the process alive if it somehow
/// outruns the parent's SIGKILL.
#[test]
fn child_streams_until_killed() {
    let Ok(dir) = std::env::var(CHILD_DIR_ENV) else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    let adverts = fleet_adverts();
    let session = fleet_session(FLEET_BEACONS, FLEET_SEED);
    let mut store =
        SessionStore::open(&dir, FsyncPolicy::EveryAppend, Obs::noop()).expect("open store");
    let mut engine = Engine::new(
        EngineConfig::default(),
        Estimator::new(EstimatorConfig::default()),
        Obs::noop(),
    );
    engine.set_motion(track_observer(&session));
    // Pre-stream checkpoint so the motion track is covered by recovery.
    store.checkpoint(&engine).expect("motion checkpoint");
    let server = Server::bind_durable(engine, store, 150, ServerConfig::default(), Obs::noop())
        .expect("bind durable");
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut acked = 0usize;
    let stdout = std::io::stdout();
    for chunk in adverts.chunks(CHUNK) {
        let ack = client.ingest(chunk).expect("ingest");
        assert_eq!(ack.consumed, chunk.len() as u64);
        acked += chunk.len();
        {
            let mut out = stdout.lock();
            writeln!(out, "acked {acked}").expect("report progress");
            out.flush().expect("flush progress");
        }
        // Give the parent a window to land the kill mid-stream.
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    std::thread::sleep(std::time::Duration::from_secs(3600));
}

#[test]
fn sigkilled_durable_reactor_recovers_and_resumes_exactly() {
    let adverts = fleet_adverts();
    let session = fleet_session(FLEET_BEACONS, FLEET_SEED);
    let estimator = Estimator::new(EstimatorConfig::default());
    let motion = track_observer(&session);
    let config = EngineConfig::default();
    let dir = std::env::temp_dir().join(format!("locble-reactor-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("store dir");

    // Reference: the whole stream, no network, no crash.
    let mut reference = Engine::new(config.clone(), estimator.clone(), Obs::noop());
    reference.set_motion(motion.clone());
    reference.ingest_all(&adverts);
    reference.finish();
    let want = reference.snapshot();
    assert!(want.len() >= 6, "reference localized too few beacons");

    // Kill once at least 2/5 of the stream is acked (and durable): the
    // child keeps streaming, so the SIGKILL lands mid-flight.
    let kill_after = (adverts.len() * 2) / 5;
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = Command::new(exe)
        .args(["--exact", "child_streams_until_killed", "--nocapture"])
        .env(CHILD_DIR_ENV, &dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn child");
    let reader = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut last_acked = 0usize;
    for line in reader.lines() {
        let line = line.expect("child line");
        if let Some(n) = line.strip_prefix("acked ") {
            last_acked = n.trim().parse().expect("acked count");
            if last_acked >= kill_after {
                break;
            }
        }
    }
    assert!(
        last_acked >= kill_after,
        "child exited after only {last_acked} acked adverts"
    );
    child.kill().expect("SIGKILL child");
    let _ = child.wait();

    // Recover. Every *acked* advert was fsynced before its ack, so the
    // durable record count is at least what the parent saw acked; the
    // kill may have caught later appends at any point (recovery trusts
    // the log, torn tail included).
    let (store, engine, report) = SessionStore::recover(
        &dir,
        FsyncPolicy::EveryAppend,
        config.clone(),
        estimator.clone(),
        Obs::noop(),
    )
    .expect("recover");
    assert!(report.snapshot_found);
    let durable = report.wal_records as usize;
    assert!(
        durable >= last_acked,
        "acked {last_acked} adverts but only {durable} durable"
    );
    assert!(durable <= adverts.len());
    assert_eq!(report.skipped + report.replayed, durable as u64);

    // Resume behind a fresh reactor from exactly the durable prefix.
    let server = Server::bind_durable(engine, store, 150, ServerConfig::default(), Obs::noop())
        .expect("rebind durable");
    let mut client = Client::connect(server.addr()).expect("reconnect");
    for chunk in adverts[durable..].chunks(CHUNK) {
        let ack = client.ingest(chunk).expect("ingest after recovery");
        assert_eq!(ack.consumed, chunk.len() as u64);
    }
    client.finish().expect("finish");
    drop(client);
    let engine = server.shutdown();
    assert_bit_identical("resumed engine", &engine.snapshot(), &want);
    let (got, want_stats) = (engine.stats(), reference.stats());
    assert_eq!(got.samples_routed, want_stats.samples_routed);
    assert_eq!(got.samples_rejected, want_stats.samples_rejected);
    assert_eq!(got.samples_processed, want_stats.samples_processed);
    assert_eq!(got.sessions_created, want_stats.sessions_created);
    assert_eq!(got.batches_pushed, want_stats.batches_pushed);

    // The shutdown checkpoint covers the log: a later restart replays
    // nothing.
    let (_store, restarted, report) = SessionStore::recover(
        &dir,
        FsyncPolicy::EveryAppend,
        config,
        estimator,
        Obs::noop(),
    )
    .expect("recover after shutdown");
    assert!(report.snapshot_found);
    assert_eq!(report.replayed, 0, "shutdown checkpoint covers the log");
    assert_bit_identical("restarted engine", &restarted.snapshot(), &want);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
