//! Reactor robustness at epoll scale: many concurrent slow-loris
//! connections dribbling one byte per readiness event, mid-frame
//! disconnects, garbage-then-valid pipelined streams, and a peer that
//! never reads its acks — through all of it the single-threaded event
//! loop must stay live for well-behaved clients and account exactly.

use locble_ble::BeaconId;
use locble_core::{Estimator, EstimatorConfig};
use locble_engine::{Advert, Engine, EngineConfig};
use locble_net::wire::{encode_frame, ErrorCode, Frame, WireAdvert, WIRE_VERSION};
use locble_net::{Client, Server, ServerConfig, ServerHandle};
use locble_obs::Obs;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn test_engine(config: EngineConfig) -> Engine {
    Engine::new(
        config,
        Estimator::new(EstimatorConfig::default()),
        Obs::noop(),
    )
}

fn bind_server(engine_config: EngineConfig, server_config: ServerConfig) -> ServerHandle {
    Server::bind(test_engine(engine_config), server_config, Obs::ring(256))
        .expect("bind on loopback")
}

fn advert(beacon: u32, t: f64, rssi_dbm: f64) -> Advert {
    Advert {
        beacon: BeaconId(beacon),
        t,
        rssi_dbm,
    }
}

/// Polls a counter until it reaches `want` (or panics after `patience`).
fn wait_for_counter(server: &ServerHandle, name: &str, want: u64, patience: Duration) {
    let deadline = Instant::now() + patience;
    loop {
        let got = server.obs().metrics().counter(name);
        if got >= want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{name} stuck at {got}, wanted {want}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// 100 simultaneous slow-loris connections, each delivering one byte of
/// a frame per readiness event and then stalling: the timer wheel must
/// reap every one of them, and a well-behaved client must be served
/// promptly the whole time.
#[test]
fn hundred_slow_loris_connections_are_reaped_while_server_stays_live() {
    const LORIS: usize = 100;
    let server = bind_server(
        EngineConfig::default(),
        ServerConfig {
            read_timeout: Duration::from_millis(150),
            ..ServerConfig::default()
        },
    );

    let bytes = encode_frame(&Frame::QueryStats);
    let mut conns: Vec<TcpStream> = (0..LORIS)
        .map(|_| TcpStream::connect(server.addr()).expect("connect"))
        .collect();

    // Three single-byte dribbles per connection — each byte is its own
    // readiness event and re-arms that connection's deadline.
    for round in 0..3 {
        for conn in &mut conns {
            conn.write_all(&bytes[round..round + 1]).expect("dribble");
        }
        // The server must answer a healthy client while 100 partial
        // frames are pending.
        let mut healthy = Client::connect(server.addr()).expect("healthy connect");
        let stats = healthy.stats().expect("served mid-storm");
        assert_eq!(stats.samples_routed, 0);
        std::thread::sleep(Duration::from_millis(40));
    }

    // Silence: every loris stalls with a partial frame buffered. The
    // wheel must close all 100, each counted as a read timeout.
    wait_for_counter(
        &server,
        "net.read_timeouts",
        LORIS as u64,
        Duration::from_secs(10),
    );

    // Still live afterwards.
    let mut healthy = Client::connect(server.addr()).expect("connect after storm");
    let summary = healthy.ingest(&[advert(1, 0.0, -60.0)]).expect("ingest");
    assert_eq!(summary.routed, 1);

    let obs = server.obs().clone();
    drop(conns);
    drop(healthy);
    drop(server);
    let metrics = obs.metrics();
    assert_eq!(metrics.counter("net.read_timeouts"), LORIS as u64);
    // No loris ever completed a frame, so none were decode errors.
    assert_eq!(metrics.counter("net.framing_lost"), 0);
}

/// Peers that vanish mid-frame: the reactor must fold the EOF into a
/// plain close — no timeout counted, no framing-lost counted, and the
/// engine never sees a partial batch.
#[test]
fn mid_frame_disconnects_close_cleanly() {
    const DROPPERS: usize = 20;
    let server = bind_server(EngineConfig::default(), ServerConfig::default());

    let batch: Vec<WireAdvert> = (0..50)
        .map(|i| WireAdvert {
            beacon: 1,
            t: i as f64 * 0.1,
            rssi_dbm: -60.0,
        })
        .collect();
    let bytes = encode_frame(&Frame::AdvertBatch(batch));
    for _ in 0..DROPPERS {
        let mut conn = TcpStream::connect(server.addr()).expect("connect");
        // Half a frame, then a hard disconnect.
        conn.write_all(&bytes[..bytes.len() / 2]).expect("partial");
        drop(conn);
    }
    wait_for_counter(
        &server,
        "net.connections_closed",
        DROPPERS as u64,
        Duration::from_secs(5),
    );

    // The torn batches never reached the engine.
    let mut client = Client::connect(server.addr()).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.samples_routed, 0);
    assert_eq!(stats.samples_rejected, 0);

    let obs = server.obs().clone();
    drop(client);
    drop(server);
    let metrics = obs.metrics();
    assert_eq!(metrics.counter("net.read_timeouts"), 0);
    assert_eq!(metrics.counter("net.framing_lost"), 0);
}

/// Garbage-then-valid, pipelined into a single write: the framed-but-
/// malformed request draws a typed error, the valid requests behind it
/// in the same tick are executed in order, and the accounting is exact.
#[test]
fn garbage_then_valid_pipelined_stream_recovers_in_order() {
    let server = bind_server(EngineConfig::default(), ServerConfig::default());
    let mut client = Client::connect(server.addr()).expect("connect");

    let batch: Vec<Advert> = (0..30).map(|i| advert(2, i as f64 * 0.1, -58.0)).collect();
    let wire_batch: Vec<WireAdvert> = batch.iter().map(|a| WireAdvert::from(*a)).collect();

    // One write carrying: [bad tag][valid ingest][bad version][stats].
    let mut pipelined = Vec::new();
    pipelined.extend_from_slice(&[0, 0, 0, 2, WIRE_VERSION, 200]);
    pipelined.extend_from_slice(&encode_frame(&Frame::AdvertBatch(wire_batch)));
    pipelined.extend_from_slice(&[0, 0, 0, 2, WIRE_VERSION + 1, 7]);
    pipelined.extend_from_slice(&encode_frame(&Frame::QueryStats));
    client.send_raw(&pipelined).expect("pipelined send");

    match client.read_frame().expect("first reply") {
        Frame::Error(e) => assert_eq!(e.code, ErrorCode::BadFrame),
        other => panic!("expected BadFrame error, got {other:?}"),
    }
    match client.read_frame().expect("second reply") {
        Frame::IngestAck(summary) => {
            assert_eq!(summary.consumed, 30);
            assert_eq!(summary.routed, 30);
        }
        other => panic!("expected IngestAck, got {other:?}"),
    }
    match client.read_frame().expect("third reply") {
        Frame::Error(e) => assert_eq!(e.code, ErrorCode::UnsupportedVersion),
        other => panic!("expected UnsupportedVersion error, got {other:?}"),
    }
    match client.read_frame().expect("fourth reply") {
        Frame::Stats(stats) => assert_eq!(stats.samples_routed, 30),
        other => panic!("expected Stats, got {other:?}"),
    }

    let obs = server.obs().clone();
    drop(client);
    drop(server);
    let metrics = obs.metrics();
    assert_eq!(metrics.counter("net.frame_errors"), 2);
    assert_eq!(metrics.counter("net.framing_lost"), 0);
}

/// A peer that pipelines hundreds of batches without reading a single
/// ack: the reactor must keep serving other clients (its loop never
/// blocks on the rude peer's replies), and when the peer finally reads,
/// every ack arrives in order with exact counts.
#[test]
fn peer_that_never_reads_acks_cannot_stall_the_reactor() {
    const BATCHES: usize = 200;
    const PER_BATCH: usize = 50;
    let server = bind_server(
        EngineConfig {
            idle_evict_s: f64::INFINITY,
            ..EngineConfig::default()
        },
        ServerConfig::default(),
    );
    let mut rude = Client::connect(server.addr()).expect("connect");

    // Fire everything without reading a byte back.
    let mut t = 0.0;
    for _ in 0..BATCHES {
        let batch: Vec<WireAdvert> = (0..PER_BATCH)
            .map(|i| {
                t += 0.01;
                WireAdvert {
                    beacon: 1 + (i % 5) as u32,
                    t,
                    rssi_dbm: -61.0,
                }
            })
            .collect();
        rude.send_frame(&Frame::AdvertBatch(batch)).expect("send");
    }

    // While the rude peer's acks pile up, other clients are served.
    let mut healthy = Client::connect(server.addr()).expect("healthy connect");
    let t0 = Instant::now();
    healthy.stats().expect("served while acks pile up");
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "reactor stalled behind an unread ack backlog"
    );

    // Now drain: every ack must come back, in order, exact.
    let mut consumed = 0u64;
    let mut routed = 0u64;
    for _ in 0..BATCHES {
        match rude.read_frame().expect("ack") {
            Frame::IngestAck(summary) => {
                assert_eq!(summary.consumed, PER_BATCH as u64);
                consumed += summary.consumed;
                routed += summary.routed;
            }
            other => panic!("expected IngestAck, got {other:?}"),
        }
    }
    assert_eq!(consumed, (BATCHES * PER_BATCH) as u64);
    assert_eq!(routed, consumed, "all timestamps advance; nothing rejected");

    let stats = rude.stats().expect("stats");
    assert_eq!(stats.samples_routed, routed);
    assert_eq!(stats.samples_rejected, 0);

    drop(rude);
    drop(healthy);
    let engine = server.shutdown();
    assert_eq!(engine.queued(), 0);
    assert_eq!(engine.stats().samples_processed as u64, routed);
}
