//! Loopback crash-and-resume: a durable server is "killed" mid-stream
//! (handle leaked, so no graceful shutdown and no final checkpoint),
//! the session is recovered from its store directory, a second server
//! resumes it, and the finished engine must be bit-identical to one
//! that ingested the whole stream directly — estimates and counters
//! both (`processes` excluded, as in the engine's own suite).

use locble_ble::BeaconId;
use locble_core::{Estimator, EstimatorConfig, LocationEstimate};
use locble_engine::{Advert, Engine, EngineConfig};
use locble_net::{Client, Server, ServerConfig};
use locble_obs::Obs;
use locble_scenario::fleet_session;
use locble_scenario::runner::track_observer;
use locble_store::{FsyncPolicy, SessionStore};

fn assert_bit_identical(
    label: &str,
    got: &[(BeaconId, LocationEstimate)],
    want: &[(BeaconId, LocationEstimate)],
) {
    assert_eq!(
        got.iter().map(|(b, _)| *b).collect::<Vec<_>>(),
        want.iter().map(|(b, _)| *b).collect::<Vec<_>>(),
        "{label}: beacon sets differ"
    );
    for ((b, g), (_, w)) in got.iter().zip(want) {
        let pairs = [
            ("position.x", g.position.x, w.position.x),
            ("position.y", g.position.y, w.position.y),
            ("confidence", g.confidence, w.confidence),
            ("exponent", g.exponent, w.exponent),
            ("gamma_dbm", g.gamma_dbm, w.gamma_dbm),
            ("residual_db", g.residual_db, w.residual_db),
        ];
        for (field, gv, wv) in pairs {
            assert_eq!(
                gv.to_bits(),
                wv.to_bits(),
                "{label}: beacon {b} {field}: {gv} != {wv}"
            );
        }
        assert_eq!(g.points_used, w.points_used, "{label}: beacon {b} points");
        assert_eq!(g.env, w.env, "{label}: beacon {b} env");
        assert_eq!(g.method, w.method, "{label}: beacon {b} method");
    }
}

#[test]
fn crashed_durable_server_resumes_bit_identically() {
    let session = fleet_session(10, 47);
    let estimator = Estimator::new(EstimatorConfig::default());
    let motion = track_observer(&session);
    let adverts: Vec<Advert> = session
        .interleaved_rss()
        .into_iter()
        .map(Advert::from)
        .collect();
    let config = EngineConfig::default();
    let dir = std::env::temp_dir().join(format!("locble-net-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Reference: the whole stream, no network, no crash.
    let mut reference = Engine::new(config.clone(), estimator.clone(), Obs::noop());
    reference.set_motion(motion.clone());
    reference.ingest_all(&adverts);
    reference.finish();
    let want = reference.snapshot();
    assert!(want.len() >= 6, "reference localized too few beacons");

    // Doomed server: durable, checkpointing every 150 records, with an
    // explicit pre-stream checkpoint so motion is covered.
    let crash_at = (adverts.len() * 3) / 5;
    {
        let mut store =
            SessionStore::open(&dir, FsyncPolicy::EveryAppend, Obs::noop()).expect("open store");
        let mut engine = Engine::new(config.clone(), estimator.clone(), Obs::noop());
        engine.set_motion(motion.clone());
        store.checkpoint(&engine).expect("motion checkpoint");
        let server = Server::bind_durable(engine, store, 150, ServerConfig::default(), Obs::noop())
            .expect("bind durable");
        let mut client = Client::connect(server.addr()).expect("connect");
        for chunk in adverts[..crash_at].chunks(97) {
            let ack = client.ingest(chunk).expect("ingest");
            assert_eq!(ack.consumed, chunk.len() as u64);
        }
        drop(client);
        // Crash: leak the handle so neither the graceful drain nor the
        // shutdown checkpoint runs. (The leaked threads idle until the
        // test process exits.)
        std::mem::forget(server);
    }

    // Recover the session from disk. Every acked advert was fsynced, so
    // the durable prefix is exactly what the client sent.
    let (store, engine, report) = SessionStore::recover(
        &dir,
        FsyncPolicy::EveryAppend,
        config.clone(),
        estimator.clone(),
        Obs::noop(),
    )
    .expect("recover");
    assert!(report.snapshot_found);
    assert_eq!(report.wal_records as usize, crash_at);
    assert!(
        report.skipped >= 150,
        "the 150-record checkpoint cadence should have spared a prefix, skipped {}",
        report.skipped
    );
    assert_eq!(report.skipped + report.replayed, crash_at as u64);

    // Resume behind a fresh server and finish the stream.
    let server = Server::bind_durable(engine, store, 150, ServerConfig::default(), Obs::noop())
        .expect("rebind durable");
    let mut client = Client::connect(server.addr()).expect("reconnect");
    for chunk in adverts[crash_at..].chunks(97) {
        let ack = client.ingest(chunk).expect("ingest after recovery");
        assert_eq!(ack.consumed, chunk.len() as u64);
    }
    client.finish().expect("finish");
    drop(client);
    let engine = server.shutdown();
    assert_bit_identical("resumed engine", &engine.snapshot(), &want);
    let (got, want_stats) = (engine.stats(), reference.stats());
    assert_eq!(got.samples_routed, want_stats.samples_routed);
    assert_eq!(got.samples_rejected, want_stats.samples_rejected);
    assert_eq!(got.samples_processed, want_stats.samples_processed);
    assert_eq!(got.sessions_created, want_stats.sessions_created);
    assert_eq!(got.batches_pushed, want_stats.batches_pushed);

    // The shutdown checkpoint must make a later restart snapshot-only.
    let (_store, restarted, report) = SessionStore::recover(
        &dir,
        FsyncPolicy::EveryAppend,
        config,
        estimator,
        Obs::noop(),
    )
    .expect("recover after shutdown");
    assert!(report.snapshot_found);
    assert_eq!(report.replayed, 0, "shutdown checkpoint covers the log");
    assert_bit_identical("restarted engine", &restarted.snapshot(), &want);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
