//! Server robustness: slow-loris timeouts, malformed frames, capacity
//! exhaustion, and shutdown-drain ordering — each failure mode must be
//! typed and accounted, never a panic or a silent drop.

use locble_ble::BeaconId;
use locble_core::{Estimator, EstimatorConfig};
use locble_engine::{Advert, Engine, EngineConfig};
use locble_net::wire::{ErrorCode, Frame, IngestSummary, WIRE_VERSION};
use locble_net::{Client, ClientError, Server, ServerConfig};
use locble_obs::Obs;
use std::time::Duration;

fn test_engine(config: EngineConfig) -> Engine {
    Engine::new(
        config,
        Estimator::new(EstimatorConfig::default()),
        Obs::noop(),
    )
}

fn bind_server(
    engine_config: EngineConfig,
    server_config: ServerConfig,
) -> locble_net::ServerHandle {
    Server::bind(test_engine(engine_config), server_config, Obs::ring(256))
        .expect("bind on loopback")
}

fn advert(beacon: u32, t: f64, rssi_dbm: f64) -> Advert {
    Advert {
        beacon: BeaconId(beacon),
        t,
        rssi_dbm,
    }
}

/// A partial frame that stalls past the read timeout closes the
/// connection (slow-loris defence), and the close is counted.
#[test]
fn slow_loris_partial_frame_is_timed_out() {
    let server = bind_server(
        EngineConfig::default(),
        ServerConfig {
            read_timeout: Duration::from_millis(120),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(server.addr()).expect("connect");
    // First three bytes of a valid frame, then silence.
    let bytes = locble_net::wire::encode_frame(&Frame::QueryStats);
    client.send_raw(&bytes[..3]).expect("partial send");
    match client.read_frame() {
        Err(ClientError::ConnectionClosed) | Err(ClientError::Io(_)) => {}
        other => panic!("expected the server to close, got {other:?}"),
    }
    let obs = server.obs().clone();
    drop(server); // joins every handler thread
    let metrics = obs.metrics();
    assert_eq!(metrics.counter("net.read_timeouts"), 1);
    assert_eq!(metrics.counter("net.connections_closed"), 1);
}

/// An idle connection (no buffered bytes) is NOT closed by the read
/// timeout — only a stalled partial frame is.
#[test]
fn idle_connection_survives_read_timeouts() {
    let server = bind_server(
        EngineConfig::default(),
        ServerConfig {
            read_timeout: Duration::from_millis(80),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(server.addr()).expect("connect");
    // Sit idle across several read-timeout windows, then speak.
    std::thread::sleep(Duration::from_millis(300));
    let stats = client.stats().expect("idle connection still serves");
    assert_eq!(stats.samples_routed, 0);
    let obs = server.obs().clone();
    drop(server);
    assert_eq!(obs.metrics().counter("net.read_timeouts"), 0);
}

/// A malformed frame body (valid length prefix, garbage inside) gets a
/// typed Error reply and the connection keeps working.
#[test]
fn malformed_frame_gets_error_reply_and_connection_stays_usable() {
    let server = bind_server(EngineConfig::default(), ServerConfig::default());
    let mut client = Client::connect(server.addr()).expect("connect");

    // Unknown tag: [len=2][version][tag=200].
    client
        .send_raw(&[0, 0, 0, 2, WIRE_VERSION, 200])
        .expect("send bad tag");
    match client.read_frame().expect("error reply") {
        Frame::Error(e) => assert_eq!(e.code, ErrorCode::BadFrame),
        other => panic!("expected Error frame, got {other:?}"),
    }

    // Wrong protocol version: [len=2][version+1][tag=7 (QueryStats)].
    client
        .send_raw(&[0, 0, 0, 2, WIRE_VERSION + 1, 7])
        .expect("send bad version");
    match client.read_frame().expect("error reply") {
        Frame::Error(e) => assert_eq!(e.code, ErrorCode::UnsupportedVersion),
        other => panic!("expected Error frame, got {other:?}"),
    }

    // A reply frame sent as a request is rejected, not crashed on.
    client
        .send_frame(&Frame::IngestAck(IngestSummary::default()))
        .expect("send reply-as-request");
    match client.read_frame().expect("error reply") {
        Frame::Error(e) => assert_eq!(e.code, ErrorCode::BadFrame),
        other => panic!("expected Error frame, got {other:?}"),
    }

    // Same connection still serves real requests afterwards.
    let summary = client
        .ingest(&[advert(7, 0.0, -60.0)])
        .expect("connection still usable");
    assert_eq!(summary.consumed, 1);
    assert_eq!(summary.routed, 1);

    let obs = server.obs().clone();
    drop(server);
    let metrics = obs.metrics();
    // Two decode-level errors (bad tag, bad version); the
    // reply-as-request decoded fine and is rejected at dispatch.
    assert_eq!(metrics.counter("net.frame_errors"), 2);
    assert_eq!(metrics.counter("net.framing_lost"), 0);
}

/// An unusable length prefix (oversized) means framing is lost: the
/// server answers with one Error frame and closes.
#[test]
fn oversized_length_prefix_closes_connection() {
    let server = bind_server(
        EngineConfig::default(),
        ServerConfig {
            max_frame_len: 1024,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .send_raw(&u32::MAX.to_be_bytes())
        .expect("send hostile length");
    match client.read_frame().expect("error reply before close") {
        Frame::Error(e) => assert_eq!(e.code, ErrorCode::BadFrame),
        other => panic!("expected Error frame, got {other:?}"),
    }
    match client.read_frame() {
        Err(ClientError::ConnectionClosed) | Err(ClientError::Io(_)) => {}
        other => panic!("expected close after framing loss, got {other:?}"),
    }
    let obs = server.obs().clone();
    drop(server);
    assert_eq!(obs.metrics().counter("net.framing_lost"), 1);
}

/// Session-table exhaustion surfaces as exact per-cause reject counts
/// in the IngestAck — the connection is never dropped, and the numbers
/// reconcile against the engine's own stats.
#[test]
fn capacity_exhaustion_is_typed_with_exact_counts() {
    let server = bind_server(
        EngineConfig {
            max_sessions: 2,
            idle_evict_s: f64::INFINITY,
            ..EngineConfig::default()
        },
        ServerConfig::default(),
    );
    let mut client = Client::connect(server.addr()).expect("connect");

    // 4 beacons × 3 adverts; only the first two distinct beacons fit.
    let mut batch = Vec::new();
    for k in 0..3 {
        for beacon in 1..=4 {
            batch.push(advert(beacon, k as f64 * 0.3, -58.0));
        }
    }
    let summary = client
        .ingest(&batch)
        .expect("batch is consumed, not refused");
    assert_eq!(summary.consumed, 12);
    assert_eq!(summary.routed, 6);
    assert_eq!(summary.sessions_created, 2);
    assert_eq!(summary.rejected_capacity, 6);
    assert_eq!(summary.rejected_non_finite, 0);
    assert_eq!(summary.rejected_out_of_order, 0);

    // The other reject causes are accounted separately and exactly.
    let summary = client
        .ingest(&[
            advert(1, f64::NAN, -60.0), // non-finite timestamp
            advert(1, 0.2, -60.0),      // behind beacon 1's watermark
            advert(9, 1.2, -60.0),      // still over capacity
        ])
        .expect("rejects are counts, not errors");
    assert_eq!(summary.consumed, 3);
    assert_eq!(summary.routed, 0);
    assert_eq!(summary.rejected_non_finite, 1);
    assert_eq!(summary.rejected_out_of_order, 1);
    assert_eq!(summary.rejected_capacity, 1);

    // Wire-level accounting matches the engine's own counters.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.samples_routed, 6);
    assert_eq!(stats.samples_rejected, 9);
    assert_eq!(stats.sessions_created, 2);
    assert_eq!(stats.sessions_live, 2);
}

/// Shutdown ordering: everything acked before shutdown is processed
/// before the engine comes back — queues are empty, samples accounted.
#[test]
fn shutdown_drains_every_acked_sample() {
    let server = bind_server(EngineConfig::default(), ServerConfig::default());
    let mut client = Client::connect(server.addr()).expect("connect");
    let batch: Vec<Advert> = (0..200)
        .map(|k| advert(1 + (k % 5), k as f64 * 0.05, -62.0))
        .collect();
    let summary = client.ingest(&batch).expect("ingest");
    assert_eq!(summary.routed, 200);
    drop(client);

    let engine = server.shutdown();
    assert_eq!(engine.queued(), 0, "shutdown must drain every shard");
    assert_eq!(engine.stats().samples_processed, 200);
}
