//! Structured events: what happened, where in the pipeline, and with
//! which measured values attached.

use serde::{Deserialize, Error, Serialize, Value};

/// One typed field value on an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Floating-point measurement (RSSI, residual, margin, ...).
    F64(f64),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (counts, durations in µs).
    U64(u64),
    /// Boolean flag.
    Bool(bool),
    /// Short label (environment class names, methods, ...).
    Str(String),
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    /// The value as `f64` when it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::F64(x) => Some(*x),
            FieldValue::I64(n) => Some(*n as f64),
            FieldValue::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as `&str` when it is a label.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl Serialize for FieldValue {
    fn to_value(&self) -> Value {
        match self {
            FieldValue::F64(x) => Value::F64(*x),
            FieldValue::I64(n) => Value::I64(*n),
            FieldValue::U64(n) => Value::U64(*n),
            FieldValue::Bool(b) => Value::Bool(*b),
            FieldValue::Str(s) => Value::Str(s.clone()),
        }
    }
}

impl Deserialize for FieldValue {
    fn from_value(v: &Value) -> Result<FieldValue, Error> {
        match v {
            Value::F64(x) => Ok(FieldValue::F64(*x)),
            Value::I64(n) => Ok(FieldValue::I64(*n)),
            Value::U64(n) => Ok(FieldValue::U64(*n)),
            Value::Bool(b) => Ok(FieldValue::Bool(*b)),
            Value::Str(s) => Ok(FieldValue::Str(s.clone())),
            // Non-finite floats serialize as null; recover them as NaN.
            Value::Null => Ok(FieldValue::F64(f64::NAN)),
            other => Err(Error::msg(format!("bad field value {other:?}"))),
        }
    }
}

/// One structured occurrence in the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic per-handle sequence number.
    pub seq: u64,
    /// Microseconds since the [`Obs`](crate::Obs) handle was created.
    pub t_us: u64,
    /// Which subsystem emitted it (e.g. `"core.streaming"`).
    pub target: &'static str,
    /// What happened (e.g. `"env_restart"`).
    pub name: &'static str,
    /// Measured values attached at the emit site.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }
}

impl Serialize for Event {
    fn to_value(&self) -> Value {
        let fields = self
            .fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        Value::Map(vec![
            ("seq".to_string(), Value::U64(self.seq)),
            ("t_us".to_string(), Value::U64(self.t_us)),
            ("target".to_string(), Value::Str(self.target.to_string())),
            ("name".to_string(), Value::Str(self.name.to_string())),
            ("fields".to_string(), Value::Map(fields)),
        ])
    }
}

impl Deserialize for Event {
    fn from_value(v: &Value) -> Result<Event, Error> {
        let fields = match v.get("fields") {
            Some(Value::Map(entries)) => entries
                .iter()
                .map(|(k, val)| Ok((intern(k), FieldValue::from_value(val)?)))
                .collect::<Result<Vec<_>, Error>>()?,
            _ => return Err(Error::msg("event missing `fields` map")),
        };
        let target = match v.get("target") {
            Some(Value::Str(s)) => intern(s),
            _ => return Err(Error::msg("event missing `target`")),
        };
        let name = match v.get("name") {
            Some(Value::Str(s)) => intern(s),
            _ => return Err(Error::msg("event missing `name`")),
        };
        Ok(Event {
            seq: serde::de_field(v, "seq")?,
            t_us: serde::de_field(v, "t_us")?,
            target,
            name,
            fields,
        })
    }
}

/// Events hold `&'static str` keys so the emit path never allocates for
/// names; deserialized events (a test/tooling path) intern by leaking,
/// deduplicated so repeated round-trips stay bounded.
fn intern(s: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut set = INTERNED.lock().expect("intern table not poisoned");
    match set.get(s) {
        Some(existing) => existing,
        None => {
            let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
            set.insert(leaked);
            leaked
        }
    }
}
