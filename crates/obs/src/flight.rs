//! The flight recorder: a lane-sharded, fixed-capacity ring of recent
//! events that can be dumped atomically for postmortems.
//!
//! The [`RingRecorder`](crate::RingRecorder) serializes every record
//! behind one mutex — fine for a pipeline instrumented at batch
//! granularity, hostile to a serving path where 8 shard workers and N
//! connection threads all record concurrently. The
//! [`FlightRecorder`] shards retention into *lanes*: each recording
//! thread hashes its thread id onto a lane and appends under that
//! lane's mutex, so in steady state every worker owns its lane and the
//! lock is uncontended ("lock-light"). Ordering is reconstructed at
//! snapshot time from the handle's global sequence numbers, which stay
//! strictly monotonic across lanes.
//!
//! A dump ([`FlightRecorder::dump_to`]) writes the merged recent
//! history as JSON Lines via the store layer's atomic idiom — write a
//! `.tmp` sibling, fsync, rename over the target — so a crash mid-dump
//! never leaves a torn file where a postmortem expects history. The
//! server installs dumps on panic, SIGTERM, and decode storms (see
//! `locble-net`).

use crate::event::Event;
use crate::recorder::Recorder;
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

/// One lane's bounded ring.
#[derive(Debug, Default)]
struct Lane {
    buf: Vec<Event>,
    /// Index of the oldest retained event once the lane has wrapped.
    head: usize,
    dropped: u64,
}

impl Lane {
    fn record(&mut self, capacity: usize, event: Event) {
        if self.buf.len() < capacity {
            self.buf.push(event);
        } else {
            let head = self.head;
            self.buf[head] = event;
            self.head = (head + 1) % capacity;
            self.dropped += 1;
        }
    }

    fn snapshot_into(&self, out: &mut Vec<Event>) {
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
    }
}

/// Lane-sharded bounded event retention; see the module docs.
pub struct FlightRecorder {
    lanes: Vec<Mutex<Lane>>,
    /// Per-lane capacity.
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder with `lanes` lanes of `capacity_per_lane` events each
    /// (both clamped to at least 1). Size lanes to the expected worker
    /// count; extra threads share lanes by thread-id hash.
    pub fn new(lanes: usize, capacity_per_lane: usize) -> FlightRecorder {
        FlightRecorder {
            lanes: (0..lanes.max(1))
                .map(|_| Mutex::new(Lane::default()))
                .collect(),
            capacity: capacity_per_lane.max(1),
        }
    }

    /// The lane the calling thread records into.
    fn lane_index(&self) -> usize {
        // Hash the opaque ThreadId through its Debug formatting — std
        // exposes no numeric accessor. Computed once per call; the
        // formatting cost only exists when a recorder is attached.
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        (hasher.finish() % self.lanes.len() as u64) as usize
    }

    /// Merged recent history, ordered by global sequence number.
    pub fn merged(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for lane in &self.lanes {
            lane.lock()
                .expect("lane not poisoned")
                .snapshot_into(&mut out);
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Serializes the merged history as JSON Lines.
    pub fn dump(&self) -> String {
        crate::events_to_jsonl(&self.merged())
    }

    /// Writes the dump to `path` atomically (tmp + fsync + rename, the
    /// store layer's snapshot idiom): a crash mid-dump leaves either
    /// the previous file or the complete new one, never a torn tail.
    pub fn dump_to(&self, path: &Path) -> std::io::Result<()> {
        atomic_write(path, self.dump().as_bytes())
    }
}

impl Recorder for FlightRecorder {
    fn record(&self, event: Event) {
        let lane = self.lane_index();
        self.lanes[lane]
            .lock()
            .expect("lane not poisoned")
            .record(self.capacity, event);
    }

    fn snapshot(&self) -> Vec<Event> {
        self.merged()
    }

    fn dropped(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.lock().expect("lane not poisoned").dropped)
            .sum()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("lanes", &self.lanes.len())
            .field("capacity_per_lane", &self.capacity)
            .finish()
    }
}

/// Atomic file replacement: write a `.tmp` sibling, fsync it, rename
/// over `path`. Same idiom as `locble-store`'s snapshot writer (not
/// imported — `store` depends on `obs`, not the reverse).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FieldValue;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            t_us: seq,
            target: "t",
            name: "n",
            fields: vec![("i", FieldValue::U64(seq))],
        }
    }

    #[test]
    fn merged_history_is_seq_ordered() {
        let rec = FlightRecorder::new(4, 16);
        // Single-threaded: everything lands in one lane, in order.
        for i in 0..10 {
            rec.record(ev(i));
        }
        let seqs: Vec<u64> = rec.merged().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn lane_overflow_keeps_newest_and_counts_drops() {
        let rec = FlightRecorder::new(1, 4);
        for i in 0..10 {
            rec.record(ev(i));
        }
        let seqs: Vec<u64> = rec.merged().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(rec.dropped(), 6);
    }

    #[test]
    fn dump_to_is_atomic_and_parses_back() {
        let rec = FlightRecorder::new(2, 8);
        for i in 0..5 {
            rec.record(ev(i));
        }
        let dir = std::env::temp_dir().join(format!("locble-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("flight.jsonl");
        rec.dump_to(&path).expect("dump");
        assert!(!path.with_extension("tmp").exists(), "tmp renamed away");
        let text = std::fs::read_to_string(&path).expect("read back");
        let events = crate::events_from_jsonl(&text).expect("parses");
        assert_eq!(events.len(), 5);
        assert_eq!(events, rec.merged());
        std::fs::remove_dir_all(&dir).ok();
    }
}
