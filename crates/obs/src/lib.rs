//! `locble-obs`: structured tracing, metrics, and pipeline diagnostics
//! for the LocBLE estimation stack.
//!
//! The crate is deliberately dependency-free (serde only, for JSONL
//! export) and built around one rule: **instrumentation must cost
//! nothing when nobody is listening**. The [`Obs`] handle is a cheap
//! clonable facade; the no-op handle holds no allocation and every
//! recording method exits on a single branch. When a [`Recorder`] is
//! attached (e.g. [`RingRecorder`]), events carry a monotonic sequence
//! number and microsecond timestamps relative to the handle's creation,
//! and a [`MetricsRegistry`] accumulates counters, gauges, and
//! fixed-bucket histograms.
//!
//! ```
//! use locble_obs::Obs;
//!
//! let obs = Obs::ring(1024);
//! obs.counter_add("batches_ingested", 1);
//! obs.event("core.streaming", "env_restart", &[("from", "Los".into())]);
//! let span = obs.span("core.streaming", "refit");
//! // ... work ...
//! drop(span); // records duration_us + a latency histogram sample
//! assert_eq!(obs.events().len(), 2);
//! ```

mod event;
mod flight;
mod metrics;
mod recorder;
mod trace;

pub use event::{Event, FieldValue};
pub use flight::{atomic_write, FlightRecorder};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use recorder::{NoopRecorder, Recorder, RingRecorder};
pub use trace::{trace_id, Stage, StageLap, TraceCtx, TraceRecord, TraceTable};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Handle through which all pipeline code reports what it is doing.
///
/// Cloning is cheap (an `Option<Arc>`); a disabled handle is a `None`
/// and every method returns after one branch.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

struct ObsInner {
    recorder: Box<dyn Recorder>,
    metrics: MetricsRegistry,
    traces: Mutex<TraceTable>,
    seq: AtomicU64,
    epoch: Instant,
}

/// Traces retained per handle before the oldest is evicted.
const TRACE_TABLE_CAPACITY: usize = 256;

impl Obs {
    /// The disabled handle: records nothing, allocates nothing.
    pub fn noop() -> Obs {
        Obs { inner: None }
    }

    /// A handle backed by an in-memory ring buffer holding the last
    /// `capacity` events, plus a metrics registry.
    pub fn ring(capacity: usize) -> Obs {
        Obs::with_recorder(Box::new(RingRecorder::with_capacity(capacity)))
    }

    /// A handle backed by a lane-sharded [`FlightRecorder`] — the
    /// serving-scale choice: concurrent workers record without
    /// contending on one mutex, and the recent history can be dumped
    /// atomically for postmortems.
    pub fn flight(lanes: usize, capacity_per_lane: usize) -> Obs {
        Obs::with_recorder(Box::new(FlightRecorder::new(lanes, capacity_per_lane)))
    }

    /// A handle backed by an arbitrary [`Recorder`].
    pub fn with_recorder(recorder: Box<dyn Recorder>) -> Obs {
        Obs {
            inner: Some(Arc::new(ObsInner {
                recorder,
                metrics: MetricsRegistry::new(),
                traces: Mutex::new(TraceTable::with_capacity(TRACE_TABLE_CAPACITY)),
                seq: AtomicU64::new(0),
                epoch: Instant::now(),
            })),
        }
    }

    /// `true` when a recorder is attached. Call sites with non-trivial
    /// field computation should guard on this.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records a structured event.
    pub fn event(
        &self,
        target: &'static str,
        name: &'static str,
        fields: &[(&'static str, FieldValue)],
    ) {
        let Some(inner) = &self.inner else { return };
        let event = Event {
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            t_us: inner.epoch.elapsed().as_micros() as u64,
            target,
            name,
            fields: fields.to_vec(),
        };
        inner.recorder.record(event);
    }

    /// Starts a timed span; dropping (or [`Span::finish`]ing) it records
    /// an event with a `duration_us` field and feeds a latency
    /// histogram named `<target>.<name>.us`.
    pub fn span(&self, target: &'static str, name: &'static str) -> Span {
        Span {
            obs: self.clone(),
            target,
            name,
            start: Instant::now(),
            fields: Vec::new(),
            done: !self.enabled(),
        }
    }

    /// Adds to a named monotonic counter. Metric names may be built at
    /// runtime (e.g. per-shard names like `engine.shard3.evictions`);
    /// keep them low-cardinality — every distinct name is a map entry.
    pub fn counter_add(&self, name: &str, n: u64) {
        let Some(inner) = &self.inner else { return };
        inner.metrics.counter_add(name, n);
    }

    /// Sets a named gauge to its latest value.
    pub fn gauge_set(&self, name: &str, v: f64) {
        let Some(inner) = &self.inner else { return };
        inner.metrics.gauge_set(name, v);
    }

    /// Records one observation into a named histogram (created with
    /// default buckets on first use unless registered explicitly).
    pub fn histogram_observe(&self, name: &str, v: f64) {
        let Some(inner) = &self.inner else { return };
        inner.metrics.histogram_observe(name, v);
    }

    /// Registers a histogram with explicit ascending bucket bounds.
    pub fn register_histogram(&self, name: &str, bounds: &[f64]) {
        let Some(inner) = &self.inner else { return };
        inner.metrics.register_histogram(name, bounds);
    }

    /// Microseconds since this handle was created (0 for a noop
    /// handle). Stage laps record their start in this clock.
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Registers a traced batch's context with the trace table (called
    /// at the first server-side stage that sees the context).
    pub fn trace_begin(&self, ctx: TraceCtx) {
        let Some(inner) = &self.inner else { return };
        inner
            .traces
            .lock()
            .expect("trace table not poisoned")
            .begin(ctx);
    }

    /// Records one stage lap against a trace id: folds it into the
    /// trace table *and* feeds the stage's latency histogram
    /// (`trace.<stage>.us`), so per-stage latency distributions and
    /// per-batch attribution come from one call.
    pub fn trace_stage(&self, trace_id: u64, stage: Stage, start_us: u64, duration_us: u64) {
        let Some(inner) = &self.inner else { return };
        inner.traces.lock().expect("trace table not poisoned").lap(
            trace_id,
            StageLap {
                stage,
                start_us,
                duration_us,
            },
        );
        inner
            .metrics
            .histogram_observe(stage.histogram_name(), duration_us as f64);
    }

    /// All retained trace records, oldest first.
    pub fn traces(&self) -> Vec<TraceRecord> {
        match &self.inner {
            Some(inner) => inner
                .traces
                .lock()
                .expect("trace table not poisoned")
                .snapshot(),
            None => Vec::new(),
        }
    }

    /// One trace's record, if retained.
    pub fn trace_lookup(&self, trace_id: u64) -> Option<TraceRecord> {
        let inner = self.inner.as_ref()?;
        inner
            .traces
            .lock()
            .expect("trace table not poisoned")
            .lookup(trace_id)
            .cloned()
    }

    /// Snapshot of every event the recorder retained, oldest first.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.recorder.snapshot(),
            None => Vec::new(),
        }
    }

    /// Events the recorder had to discard (ring overflow).
    pub fn dropped_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.recorder.dropped(),
            None => 0,
        }
    }

    /// Snapshot of all metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Serializes retained events as JSON Lines, one event per line.
    pub fn events_to_jsonl(&self) -> String {
        events_to_jsonl(&self.events())
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// Serializes events as JSON Lines (one JSON object per line).
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde::json::to_string(e));
        out.push('\n');
    }
    out
}

/// Parses JSON Lines produced by [`events_to_jsonl`].
pub fn events_from_jsonl(text: &str) -> Result<Vec<Event>, serde::Error> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde::json::from_str)
        .collect()
}

/// A live timed region; see [`Obs::span`].
#[must_use = "a span records on drop; binding it to `_` ends it immediately"]
pub struct Span {
    obs: Obs,
    target: &'static str,
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, FieldValue)>,
    done: bool,
}

impl Span {
    /// Attaches a field to the event this span will record.
    pub fn field(&mut self, name: &'static str, value: impl Into<FieldValue>) {
        if !self.done {
            self.fields.push((name, value.into()));
        }
    }

    /// Ends the span now and returns its duration in microseconds.
    pub fn finish(mut self) -> u64 {
        self.emit()
    }

    fn emit(&mut self) -> u64 {
        if self.done {
            return 0;
        }
        self.done = true;
        let us = self.start.elapsed().as_micros() as u64;
        self.fields.push(("duration_us", FieldValue::U64(us)));
        let fields = std::mem::take(&mut self.fields);
        self.obs.event(self.target, self.name, &fields);
        if let Some(inner) = &self.obs.inner {
            inner
                .metrics
                .histogram_observe_dynamic(format!("{}.{}.us", self.target, self.name), us as f64);
        }
        us
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.emit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_swallows_everything() {
        let obs = Obs::noop();
        obs.event("t", "e", &[("k", 1.0.into())]);
        obs.counter_add("c", 3);
        obs.histogram_observe("h", 0.5);
        obs.trace_begin(TraceCtx::mint(9));
        obs.trace_stage(9, Stage::Decode, 0, 12);
        let span = obs.span("t", "s");
        drop(span);
        assert!(!obs.enabled());
        assert!(obs.events().is_empty());
        assert!(obs.traces().is_empty());
        assert!(obs.trace_lookup(9).is_none());
        assert_eq!(obs.now_us(), 0);
        assert_eq!(obs.metrics(), MetricsSnapshot::default());
        assert!(obs.events_to_jsonl().is_empty());
    }

    #[test]
    fn trace_stages_fold_into_records_and_histograms() {
        let obs = Obs::ring(16);
        let ctx = TraceCtx::mint(0xBEEF);
        obs.trace_begin(ctx.with_stage(Stage::Decode));
        obs.trace_stage(0xBEEF, Stage::Decode, 5, 10);
        obs.trace_stage(0xBEEF, Stage::Refit, 20, 300);
        let rec = obs.trace_lookup(0xBEEF).expect("retained");
        assert!(rec.ctx.has_stage(Stage::Client));
        assert!(rec.ctx.has_stage(Stage::Refit));
        assert_eq!(rec.lap(Stage::Decode).unwrap().duration_us, 10);
        assert_eq!(rec.total_us(), 310);
        let m = obs.metrics();
        assert_eq!(m.histograms["trace.decode.us"].count, 1);
        assert_eq!(m.histograms["trace.refit.us"].count, 1);
        assert_eq!(obs.traces().len(), 1);
    }

    #[test]
    fn events_carry_monotonic_seq_and_fields() {
        let obs = Obs::ring(16);
        obs.event("a", "first", &[("x", 1i64.into()), ("s", "hey".into())]);
        obs.event("b", "second", &[("ok", true.into())]);
        let events = obs.events();
        assert_eq!(events.len(), 2);
        assert!(events[0].seq < events[1].seq);
        assert_eq!(events[0].name, "first");
        assert_eq!(events[0].field("x"), Some(&FieldValue::I64(1)));
        assert_eq!(events[1].field("ok"), Some(&FieldValue::Bool(true)));
    }

    #[test]
    fn span_records_duration_and_histogram() {
        let obs = Obs::ring(16);
        let mut span = obs.span("core", "refit");
        span.field("points", 42u64);
        let us = span.finish();
        let events = obs.events();
        assert_eq!(events.len(), 1);
        match events[0].field("duration_us") {
            Some(&FieldValue::U64(d)) => assert_eq!(d, us),
            other => panic!("bad duration field {other:?}"),
        }
        let metrics = obs.metrics();
        let hist = &metrics.histograms["core.refit.us"];
        assert_eq!(hist.count, 1);
    }

    #[test]
    fn metric_names_may_be_built_at_runtime() {
        let obs = Obs::ring(8);
        for shard in 0..3 {
            obs.counter_add(&format!("engine.shard{shard}.evictions"), shard + 1);
            obs.gauge_set(&format!("engine.shard{shard}.queue_depth"), shard as f64);
        }
        let m = obs.metrics();
        assert_eq!(m.counter("engine.shard2.evictions"), 3);
        assert_eq!(m.gauges["engine.shard1.queue_depth"], 1.0);
    }

    #[test]
    fn jsonl_round_trips_through_serde() {
        let obs = Obs::ring(8);
        obs.event(
            "core.streaming",
            "env_restart",
            &[
                ("from", "Los".into()),
                ("to", "Nlos".into()),
                ("residual_db", 3.25.into()),
                ("batch", 7u64.into()),
                ("confirmed", true.into()),
            ],
        );
        obs.event("core.anf", "filter", &[("mean_innovation", (-0.5).into())]);
        let text = obs.events_to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let back = events_from_jsonl(&text).expect("parses");
        assert_eq!(back, obs.events());
    }
}
