//! Counters, gauges, and fixed-bucket histograms.
//!
//! All state lives behind one `Mutex` per metric kind; the hot path is
//! a map lookup plus an integer add, far below the cost of the pipeline
//! work being measured. Names are free-form dotted strings.

use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Default histogram buckets: log2 ladder `2^0 .. 2^26`, sized for
/// latencies recorded in microseconds — one ladder spans sub-µs
/// observations (first bucket) through multi-second serve-path spans
/// (`2^26 µs ≈ 67 s`) without saturating, at a constant ~7% relative
/// resolution per octave. The previous linear 1-2-5 ladder topped out
/// at 20 ms and piled every serve-path latency into the overflow
/// bucket.
const DEFAULT_BOUNDS: [f64; 27] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
    16384.0, 32768.0, 65536.0, 131072.0, 262144.0, 524288.0, 1048576.0, 2097152.0, 4194304.0,
    8388608.0, 16777216.0, 33554432.0, 67108864.0,
];

/// Accumulates all metrics for one [`Obs`](crate::Obs) handle.
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Adds to a monotonic counter, creating it at zero on first use.
    pub fn counter_add(&self, name: &str, n: u64) {
        let mut counters = self.counters.lock().expect("counters not poisoned");
        *counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets a gauge to its latest value.
    pub fn gauge_set(&self, name: &str, v: f64) {
        let mut gauges = self.gauges.lock().expect("gauges not poisoned");
        gauges.insert(name.to_string(), v);
    }

    /// Registers a histogram with explicit ascending bucket bounds
    /// (no-op when it already exists).
    pub fn register_histogram(&self, name: &str, bounds: &[f64]) {
        let mut hists = self.histograms.lock().expect("histograms not poisoned");
        hists
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds));
    }

    /// Records one observation, creating the histogram with default
    /// buckets on first use.
    pub fn histogram_observe(&self, name: &str, v: f64) {
        let mut hists = self.histograms.lock().expect("histograms not poisoned");
        hists
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(&DEFAULT_BOUNDS))
            .observe(v);
    }

    /// Like [`histogram_observe`](Self::histogram_observe) for
    /// already-owned names (span latency paths).
    pub fn histogram_observe_dynamic(&self, name: String, v: f64) {
        let mut hists = self.histograms.lock().expect("histograms not poisoned");
        hists
            .entry(name)
            .or_insert_with(|| Histogram::new(&DEFAULT_BOUNDS))
            .observe(v);
    }

    /// A point-in-time copy of everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.lock().expect("counters not poisoned").clone(),
            gauges: self.gauges.lock().expect("gauges not poisoned").clone(),
            histograms: self
                .histograms
                .lock()
                .expect("histograms not poisoned")
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

/// Fixed-bucket histogram: `counts[i]` tallies observations `<=
/// bounds[i]`, with one overflow bucket at the end.
#[derive(Debug, Clone)]
struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must ascend"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, v: f64) {
        // First bound >= v, by binary search (bounds ascend); NaN and
        // anything above the last bound land in the overflow bucket.
        let idx = if v.is_nan() {
            self.bounds.len()
        } else {
            self.bounds.partition_point(|&b| b < v)
        };
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            sum: self.sum,
            count: self.count,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

/// Serializable copy of one histogram.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Ascending upper bucket bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket tallies; last entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`q` in `[0, 1]`) from
    /// the bucket tallies: the upper bound of the first bucket whose
    /// cumulative count reaches `q·count`, clamped to the observed
    /// `max` (an overflow-bucket quantile has no finite bound). Returns
    /// 0 when empty. Bucket-resolution precision — one octave under the
    /// default log2 ladder — which is what a latency report needs.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return match self.bounds.get(i) {
                    Some(&b) => b.min(self.max),
                    None => self.max,
                };
            }
        }
        self.max
    }
}

impl Serialize for HistogramSnapshot {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("bounds".to_string(), self.bounds.to_value()),
            ("counts".to_string(), self.counts.to_value()),
            ("sum".to_string(), Value::F64(self.sum)),
            ("count".to_string(), Value::U64(self.count)),
            ("min".to_string(), Value::F64(self.min)),
            ("max".to_string(), Value::F64(self.max)),
        ])
    }
}

/// Serializable copy of a whole [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Latest gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Convenience: counter value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters whose name starts with `prefix`, in name order —
    /// the shape subsystem reports want ("every `net.` counter",
    /// "every `engine.shard3.` counter") without each caller rescanning
    /// the whole map.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .map(|(name, &v)| (name.as_str(), v))
            .collect()
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_sum_with_prefix(&self, prefix: &str) -> u64 {
        self.counters_with_prefix(prefix)
            .iter()
            .map(|(_, v)| v)
            .sum()
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::U64(*v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::F64(*v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_value()))
            .collect();
        Value::Map(vec![
            ("counters".to_string(), Value::Map(counters)),
            ("gauges".to_string(), Value::Map(gauges)),
            ("histograms".to_string(), Value::Map(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let m = MetricsRegistry::new();
        m.counter_add("c", 2);
        m.counter_add("c", 3);
        m.gauge_set("g", 1.5);
        m.gauge_set("g", -2.5);
        let snap = m.snapshot();
        assert_eq!(snap.counter("c"), 5);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauges["g"], -2.5);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let m = MetricsRegistry::new();
        m.register_histogram("h", &[1.0, 2.0, 5.0]);
        // Exactly on a bound lands in that bucket; above the last bound
        // lands in overflow.
        for v in [0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 5.1, 100.0] {
            m.histogram_observe("h", v);
        }
        let h = &m.snapshot().histograms["h"];
        assert_eq!(h.counts, vec![2, 2, 2, 2]);
        assert_eq!(h.count, 8);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 100.0);
        assert!((h.mean() - 120.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_scoped_counters_select_and_sum() {
        let m = MetricsRegistry::new();
        m.counter_add("net.frames_rx", 4);
        m.counter_add("net.frames_tx", 5);
        m.counter_add("netx.other", 7); // shares a string prefix, not a namespace
        m.counter_add("engine.samples_routed", 9);
        let snap = m.snapshot();
        assert_eq!(
            snap.counters_with_prefix("net."),
            vec![("net.frames_rx", 4), ("net.frames_tx", 5)]
        );
        assert_eq!(snap.counter_sum_with_prefix("net."), 9);
        assert!(snap.counters_with_prefix("missing.").is_empty());
        assert_eq!(snap.counter_sum_with_prefix(""), 25);
    }

    #[test]
    fn unregistered_histogram_gets_default_buckets() {
        let m = MetricsRegistry::new();
        m.histogram_observe("lat", 3.0);
        let h = &m.snapshot().histograms["lat"];
        assert_eq!(h.bounds.len() + 1, h.counts.len());
        assert_eq!(h.count, 1);
    }

    /// Regression for the serve-path saturation bug: the old linear
    /// 1-2-5 default ladder ended at 20 000 µs, so every multi-second
    /// span (and its neighbors) collapsed into one overflow bucket. The
    /// log2 ladder must keep sub-µs and multi-second samples in
    /// *distinct, non-overflow* buckets.
    #[test]
    fn log2_default_buckets_resolve_sub_us_through_multi_second() {
        let m = MetricsRegistry::new();
        // 0.25 µs (sub-µs), 3 µs, 900 µs, 40 ms, 2.5 s, 40 s — each an
        // order of magnitude apart, all plausible span durations.
        let samples = [0.25, 3.0, 900.0, 40_000.0, 2_500_000.0, 40_000_000.0];
        for v in samples {
            m.histogram_observe("span.us", v);
        }
        let h = &m.snapshot().histograms["span.us"];
        assert_eq!(h.count, samples.len() as u64);
        // Nothing saturated into the overflow bucket...
        assert_eq!(
            *h.counts.last().unwrap(),
            0,
            "overflow bucket must stay empty"
        );
        // ...and every sample landed in its own bucket.
        let occupied = h.counts.iter().filter(|&&c| c > 0).count();
        assert_eq!(occupied, samples.len(), "each decade resolves distinctly");
        // The ladder is exact powers of two over the µs–s span range.
        assert_eq!(h.bounds.first().copied(), Some(1.0));
        assert_eq!(h.bounds.last().copied(), Some(67_108_864.0));
        for w in h.bounds.windows(2) {
            assert_eq!(w[1], 2.0 * w[0], "bounds must double");
        }
        // Quantiles come from the tallies: the median of six ascending
        // samples is bucket-resolution-close to the fourth value.
        assert_eq!(h.quantile(0.0), 1.0);
        assert!(h.quantile(0.5) >= 900.0 && h.quantile(0.5) <= 65_536.0);
        assert_eq!(h.quantile(1.0), h.max);
    }

    #[test]
    fn nan_observations_land_in_overflow_not_bucket_zero() {
        let m = MetricsRegistry::new();
        m.register_histogram("h", &[1.0, 2.0]);
        m.histogram_observe("h", f64::NAN);
        m.histogram_observe("h", 0.5);
        let h = &m.snapshot().histograms["h"];
        assert_eq!(h.counts, vec![1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn non_ascending_bounds_are_rejected() {
        let m = MetricsRegistry::new();
        m.register_histogram("bad", &[2.0, 1.0]);
    }
}
