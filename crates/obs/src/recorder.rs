//! Event sinks: where recorded events go.

use crate::event::Event;
use std::sync::Mutex;

/// An event sink. Implementations must be cheap and non-blocking — the
/// pipeline calls [`record`](Recorder::record) from its hot paths.
pub trait Recorder: Send + Sync {
    /// Accepts one event.
    fn record(&self, event: Event);

    /// All retained events, oldest first (sinks that do not retain
    /// return nothing).
    fn snapshot(&self) -> Vec<Event> {
        Vec::new()
    }

    /// How many events were discarded due to capacity.
    fn dropped(&self) -> u64 {
        0
    }
}

/// Discards everything (used by tests that want an attached-but-silent
/// recorder; the usual "off" path is `Obs::noop`, which skips the
/// recorder entirely).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _event: Event) {}
}

/// Retains the most recent `capacity` events in a fixed ring.
pub struct RingRecorder {
    state: Mutex<RingState>,
}

struct RingState {
    buf: Vec<Event>,
    /// Index of the oldest retained event once the ring has wrapped.
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl RingRecorder {
    /// A ring retaining at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> RingRecorder {
        RingRecorder {
            state: Mutex::new(RingState {
                buf: Vec::new(),
                head: 0,
                capacity: capacity.max(1),
                dropped: 0,
            }),
        }
    }
}

impl Recorder for RingRecorder {
    fn record(&self, event: Event) {
        let mut s = self.state.lock().expect("ring not poisoned");
        if s.buf.len() < s.capacity {
            s.buf.push(event);
        } else {
            let head = s.head;
            s.buf[head] = event;
            s.head = (head + 1) % s.capacity;
            s.dropped += 1;
        }
    }

    fn snapshot(&self) -> Vec<Event> {
        let s = self.state.lock().expect("ring not poisoned");
        let mut out = Vec::with_capacity(s.buf.len());
        out.extend_from_slice(&s.buf[s.head..]);
        out.extend_from_slice(&s.buf[..s.head]);
        out
    }

    fn dropped(&self) -> u64 {
        self.state.lock().expect("ring not poisoned").dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FieldValue;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            t_us: seq * 10,
            target: "t",
            name: "n",
            fields: vec![("i", FieldValue::U64(seq))],
        }
    }

    #[test]
    fn ring_keeps_everything_under_capacity() {
        let ring = RingRecorder::with_capacity(4);
        for i in 0..3 {
            ring.record(ev(i));
        }
        let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_wraparound_keeps_newest_in_order() {
        let ring = RingRecorder::with_capacity(4);
        for i in 0..10 {
            ring.record(ev(i));
        }
        let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(ring.dropped(), 6);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ring = RingRecorder::with_capacity(0);
        ring.record(ev(1));
        ring.record(ev(2));
        let seqs: Vec<u64> = ring.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2]);
    }
}
