//! Wire-propagated trace context and the per-handle trace table.
//!
//! A [`TraceCtx`] is minted once per ingest batch at the *client* and
//! rides the wire with the batch: a `u64` trace id plus a `u16` stage
//! path — a bitmask that accumulates one bit per pipeline stage the
//! batch passes through ([`Stage`]). Every stage that does attributable
//! work records a [`StageLap`] (stage, start, duration) against the
//! trace id through [`Obs::trace_stage`](crate::Obs::trace_stage);
//! the handle's [`TraceTable`] folds laps into per-trace
//! [`TraceRecord`]s, so one batch can be followed
//! client → decoder → shard queue → refit → ack with per-stage
//! `duration_us`.
//!
//! The table is a fixed-capacity ring over insertion order: when a new
//! trace arrives at capacity, the oldest record is evicted (counted in
//! [`TraceTable::evicted`]). Laps for evicted or never-begun traces
//! create a fresh record — late laps are data, not errors.

use std::collections::VecDeque;

/// One pipeline stage a traced batch can pass through. The discriminant
/// is the *bit position* in [`TraceCtx::path`], so a stage path is a
/// compact "which stages touched this batch" summary even without the
/// per-stage laps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Stage {
    /// Minted and sent by the client.
    Client = 0,
    /// Server-side frame decode.
    Decode = 1,
    /// Durability WAL append (only on durable servers).
    Wal = 2,
    /// Reactor coalescing wait: the batch sat decoded in its
    /// connection's op queue until the tick-end engine pass ran (only on
    /// readiness-driven servers; the price one batch pays so many
    /// connections share a single engine lock acquisition).
    Coalesce = 7,
    /// Control-plane ingest: validation + shard routing.
    Route = 3,
    /// Time spent waiting in a shard queue before a worker drained it.
    ShardQueue = 4,
    /// Worker-side drain: batch windows pushed + estimator refits.
    Refit = 5,
    /// Encoding and writing the reply frame.
    Ack = 6,
    /// Cluster front: partitioning the batch and forwarding it to the
    /// owning node (only on clustered deployments).
    Forward = 8,
    /// Cluster owner: streaming the batch's WAL records to the follower
    /// and, under a synchronous policy, waiting for its ack.
    Replicate = 9,
}

impl Stage {
    /// All stages, in pipeline order. (`Coalesce` sits between decode
    /// and WAL in the pipeline even though its discriminant — its bit
    /// position — was assigned later, and the cluster stages `Forward`
    /// and `Replicate` slot into their pipeline positions with bits 8
    /// and 9; bit positions are wire ABI and never reshuffle.)
    pub const ALL: [Stage; 10] = [
        Stage::Client,
        Stage::Forward,
        Stage::Decode,
        Stage::Coalesce,
        Stage::Wal,
        Stage::Replicate,
        Stage::Route,
        Stage::ShardQueue,
        Stage::Refit,
        Stage::Ack,
    ];

    /// The stage's bit in a [`TraceCtx::path`].
    pub fn bit(self) -> u16 {
        1u16 << (self as u8)
    }

    /// Stable lowercase name (used for metric names and reports, so it
    /// must never contain `.`).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Client => "client",
            Stage::Decode => "decode",
            Stage::Coalesce => "coalesce",
            Stage::Wal => "wal",
            Stage::Route => "route",
            Stage::ShardQueue => "shard_queue",
            Stage::Refit => "refit",
            Stage::Ack => "ack",
            Stage::Forward => "forward",
            Stage::Replicate => "replicate",
        }
    }

    /// The latency-histogram name this stage's laps feed
    /// (`trace.<stage>.us`).
    pub fn histogram_name(self) -> &'static str {
        match self {
            Stage::Client => "trace.client.us",
            Stage::Decode => "trace.decode.us",
            Stage::Coalesce => "trace.coalesce.us",
            Stage::Wal => "trace.wal.us",
            Stage::Route => "trace.route.us",
            Stage::ShardQueue => "trace.shard_queue.us",
            Stage::Refit => "trace.refit.us",
            Stage::Ack => "trace.ack.us",
            Stage::Forward => "trace.forward.us",
            Stage::Replicate => "trace.replicate.us",
        }
    }

    /// Decodes a discriminant byte (the wire carries stages as `u8`).
    pub fn from_u8(v: u8) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| *s as u8 == v)
    }
}

/// Compact per-batch trace context: minted at the client, carried in
/// the wire frame, propagated through the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Client-minted trace id. Uniqueness is the client's problem;
    /// collisions merge records (harmless for diagnostics).
    pub trace_id: u64,
    /// Bitmask of [`Stage`]s this context has passed through.
    pub path: u16,
}

impl TraceCtx {
    /// Mints a context for a new batch, with only the client bit set.
    pub fn mint(trace_id: u64) -> TraceCtx {
        TraceCtx {
            trace_id,
            path: Stage::Client.bit(),
        }
    }

    /// A copy with `stage`'s bit added to the path.
    #[must_use]
    pub fn with_stage(self, stage: Stage) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            path: self.path | stage.bit(),
        }
    }

    /// `true` when the path says the batch passed through `stage`.
    pub fn has_stage(self, stage: Stage) -> bool {
        self.path & stage.bit() != 0
    }

    /// Stage names present in the path, in pipeline order.
    pub fn stages(self) -> Vec<&'static str> {
        Stage::ALL
            .into_iter()
            .filter(|s| self.has_stage(*s))
            .map(Stage::name)
            .collect()
    }
}

/// Derives a trace id from a client nonce and a per-connection batch
/// counter (SplitMix64 finalizer: dependency-free, uniform, identical
/// on every platform).
pub fn trace_id(nonce: u64, batch: u64) -> u64 {
    let mut x = nonce ^ batch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One stage's timed contribution to a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageLap {
    /// Which stage did the work.
    pub stage: Stage,
    /// Microseconds since the recording handle's epoch when the stage
    /// started (0 when the recorder could not observe the start).
    pub start_us: u64,
    /// How long the stage spent on this batch, microseconds.
    pub duration_us: u64,
}

/// Everything known about one traced batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The batch's context (latest path seen).
    pub ctx: TraceCtx,
    /// Laps in arrival order (usually pipeline order; a shard drain on
    /// another thread may land after the ack).
    pub laps: Vec<StageLap>,
}

impl TraceRecord {
    /// Total duration across all laps, microseconds.
    pub fn total_us(&self) -> u64 {
        self.laps.iter().map(|l| l.duration_us).sum()
    }

    /// The lap for one stage, if recorded (first match).
    pub fn lap(&self, stage: Stage) -> Option<&StageLap> {
        self.laps.iter().find(|l| l.stage == stage)
    }
}

/// Fixed-capacity ring of [`TraceRecord`]s, oldest evicted first. All
/// mutation goes through the owning handle's mutex, so the table itself
/// is plain data.
#[derive(Debug)]
pub struct TraceTable {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    evicted: u64,
}

/// Laps retained per trace before further laps are dropped (guards the
/// table against a runaway stage recording in a loop).
const MAX_LAPS_PER_TRACE: usize = 64;

impl TraceTable {
    /// A table retaining at most `capacity` traces (min 1).
    pub fn with_capacity(capacity: usize) -> TraceTable {
        TraceTable {
            records: VecDeque::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    /// Starts (or refreshes the path of) a trace.
    pub fn begin(&mut self, ctx: TraceCtx) {
        match self.find_mut(ctx.trace_id) {
            Some(rec) => rec.ctx.path |= ctx.path,
            None => self.insert(TraceRecord {
                ctx,
                laps: Vec::new(),
            }),
        }
    }

    /// Folds one lap into its trace, creating the record when absent.
    pub fn lap(&mut self, trace_id: u64, lap: StageLap) {
        match self.find_mut(trace_id) {
            Some(rec) => {
                if rec.laps.len() < MAX_LAPS_PER_TRACE {
                    rec.ctx.path |= lap.stage.bit();
                    rec.laps.push(lap);
                }
            }
            None => self.insert(TraceRecord {
                ctx: TraceCtx {
                    trace_id,
                    path: lap.stage.bit(),
                },
                laps: vec![lap],
            }),
        }
    }

    fn insert(&mut self, record: TraceRecord) {
        if self.records.len() >= self.capacity {
            self.records.pop_front();
            self.evicted += 1;
        }
        self.records.push_back(record);
    }

    fn find_mut(&mut self, trace_id: u64) -> Option<&mut TraceRecord> {
        // Newest-first: the live trace is almost always at the back.
        self.records
            .iter_mut()
            .rev()
            .find(|r| r.ctx.trace_id == trace_id)
    }

    /// One trace's record, if retained.
    pub fn lookup(&self, trace_id: u64) -> Option<&TraceRecord> {
        self.records
            .iter()
            .rev()
            .find(|r| r.ctx.trace_id == trace_id)
    }

    /// All retained records, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.records.iter().cloned().collect()
    }

    /// Records evicted to make room.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Retained record count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_accumulates_stage_bits() {
        let ctx = TraceCtx::mint(7)
            .with_stage(Stage::Decode)
            .with_stage(Stage::Route);
        assert!(ctx.has_stage(Stage::Client));
        assert!(ctx.has_stage(Stage::Decode));
        assert!(!ctx.has_stage(Stage::Refit));
        assert_eq!(ctx.stages(), vec!["client", "decode", "route"]);
    }

    #[test]
    fn stage_u8_round_trips() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_u8(stage as u8), Some(stage));
        }
        assert_eq!(Stage::from_u8(200), None);
    }

    #[test]
    fn cluster_stages_take_the_free_high_bits() {
        assert_eq!(Stage::Forward.bit(), 1 << 8);
        assert_eq!(Stage::Replicate.bit(), 1 << 9);
        let ctx = TraceCtx::mint(3)
            .with_stage(Stage::Forward)
            .with_stage(Stage::Replicate);
        assert_eq!(ctx.stages(), vec!["client", "forward", "replicate"]);
    }

    #[test]
    fn trace_ids_spread_over_batch_counters() {
        let ids: std::collections::BTreeSet<u64> =
            (0..1000).map(|batch| trace_id(0xC11E47, batch)).collect();
        assert_eq!(ids.len(), 1000, "sequential batches must not collide");
    }

    #[test]
    fn table_folds_laps_and_evicts_oldest() {
        let mut table = TraceTable::with_capacity(2);
        table.begin(TraceCtx::mint(1));
        table.lap(
            1,
            StageLap {
                stage: Stage::Decode,
                start_us: 10,
                duration_us: 5,
            },
        );
        table.lap(
            1,
            StageLap {
                stage: Stage::Refit,
                start_us: 20,
                duration_us: 100,
            },
        );
        let rec = table.lookup(1).expect("retained");
        assert_eq!(rec.laps.len(), 2);
        assert_eq!(rec.total_us(), 105);
        assert!(rec.ctx.has_stage(Stage::Refit));
        assert_eq!(rec.lap(Stage::Decode).unwrap().duration_us, 5);

        table.begin(TraceCtx::mint(2));
        table.begin(TraceCtx::mint(3)); // evicts trace 1
        assert_eq!(table.len(), 2);
        assert_eq!(table.evicted(), 1);
        assert!(table.lookup(1).is_none());
        assert!(table.lookup(3).is_some());
    }

    #[test]
    fn late_lap_for_unknown_trace_creates_a_record() {
        let mut table = TraceTable::with_capacity(4);
        table.lap(
            99,
            StageLap {
                stage: Stage::ShardQueue,
                start_us: 0,
                duration_us: 42,
            },
        );
        let rec = table.lookup(99).expect("created");
        assert_eq!(rec.ctx.path, Stage::ShardQueue.bit());
    }

    #[test]
    fn lap_cap_bounds_runaway_recording() {
        let mut table = TraceTable::with_capacity(2);
        for i in 0..200 {
            table.lap(
                5,
                StageLap {
                    stage: Stage::Refit,
                    start_us: i,
                    duration_us: 1,
                },
            );
        }
        assert_eq!(table.lookup(5).unwrap().laps.len(), MAX_LAPS_PER_TRACE);
    }
}
