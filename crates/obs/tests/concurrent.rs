//! Concurrent-recorder stress: 8 shard-worker-style threads recording
//! through one handle must lose nothing and keep sequence numbers
//! strictly monotonic — the properties the engine's drain loop and the
//! serving path rely on when they share an [`Obs`] handle.

use locble_obs::{FlightRecorder, Obs, Stage};
use std::collections::BTreeSet;

const WORKERS: usize = 8;
const EVENTS_PER_WORKER: usize = 1_000;

/// Drives `WORKERS` threads through one handle and returns the sorted
/// retained sequence numbers.
fn hammer(obs: &Obs) -> Vec<u64> {
    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let obs = obs.clone();
            scope.spawn(move || {
                for i in 0..EVENTS_PER_WORKER {
                    obs.event(
                        "stress",
                        "tick",
                        &[("worker", worker.into()), ("i", i.into())],
                    );
                }
            });
        }
    });
    let mut seqs: Vec<u64> = obs.events().iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    seqs
}

/// Retained + dropped must equal recorded, and the retained sequence
/// numbers must be unique — two racing workers may never observe the
/// same sequence number or overwrite each other's slot.
fn assert_no_loss(obs: &Obs, seqs: &[u64]) {
    let total = (WORKERS * EVENTS_PER_WORKER) as u64;
    assert_eq!(
        seqs.len() as u64 + obs.dropped_events(),
        total,
        "every recorded event is either retained or counted dropped"
    );
    let unique: BTreeSet<u64> = seqs.iter().copied().collect();
    assert_eq!(unique.len(), seqs.len(), "sequence numbers must be unique");
    for w in seqs.windows(2) {
        assert!(w[0] < w[1], "sorted seqs must be strictly monotonic");
    }
    // Sequence numbers are a dense prefix-free allocation: every value
    // below the total was handed to exactly one event.
    assert!(seqs.iter().all(|&s| s < total));
}

#[test]
fn ring_recorder_retains_all_events_under_8_workers() {
    // Capacity covers the full stream: nothing may be lost.
    let obs = Obs::ring(WORKERS * EVENTS_PER_WORKER);
    let seqs = hammer(&obs);
    assert_eq!(obs.dropped_events(), 0);
    assert_eq!(seqs.len(), WORKERS * EVENTS_PER_WORKER);
    assert_no_loss(&obs, &seqs);
}

#[test]
fn flight_recorder_retains_all_events_under_8_workers() {
    // Per-lane capacity is generous: thread-id hashing may map several
    // workers onto one lane, so a lane must absorb the worst-case skew
    // (all 8 workers on one lane) without dropping.
    let obs = Obs::flight(WORKERS, WORKERS * EVENTS_PER_WORKER);
    let seqs = hammer(&obs);
    assert_eq!(obs.dropped_events(), 0);
    assert_eq!(seqs.len(), WORKERS * EVENTS_PER_WORKER);
    assert_no_loss(&obs, &seqs);
    // The merged view is seq-sorted even though lanes filled
    // independently.
    let merged: Vec<u64> = obs.events().iter().map(|e| e.seq).collect();
    assert_eq!(merged, seqs);
}

#[test]
fn flight_recorder_under_overflow_drops_exactly_the_excess() {
    let rec = FlightRecorder::new(1, 100);
    let obs = Obs::with_recorder(Box::new(rec));
    let seqs = hammer(&obs);
    assert_eq!(seqs.len(), 100, "one lane retains its capacity");
    assert_eq!(
        obs.dropped_events(),
        (WORKERS * EVENTS_PER_WORKER - 100) as u64
    );
    assert_no_loss(&obs, &seqs);
}

#[test]
fn concurrent_trace_laps_fold_without_loss() {
    let obs = Obs::flight(WORKERS, 64);
    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let obs = obs.clone();
            scope.spawn(move || {
                for i in 0..50u64 {
                    obs.trace_stage(worker as u64, Stage::Refit, i, 1);
                }
            });
        }
    });
    let traces = obs.traces();
    assert_eq!(traces.len(), WORKERS, "one record per worker's trace id");
    let m = obs.metrics();
    assert_eq!(
        m.histograms["trace.refit.us"].count,
        (WORKERS * 50) as u64,
        "every lap fed the stage histogram"
    );
}
