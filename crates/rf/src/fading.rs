//! Small-scale multipath fading and per-channel frequency selectivity.
//!
//! Paper §2.3: "Multipath fading occurs when RF signals reach the
//! receiving antenna via multiple different paths … this effect further
//! exacerbates the BLE signal's strength", and §2.2: the 3-channel
//! advertising hop sequence makes BLE "more susceptible to
//! frequency-selective fading".
//!
//! * [`RicianFading`] models the time-varying multipath gain as a complex
//!   Gaussian process around a LOS component with Rice factor `K`
//!   (`K → 0` degenerates to Rayleigh for heavily obstructed paths). The
//!   in-phase/quadrature components evolve as AR(1) processes with the
//!   channel coherence time, so a walking observer sees realistically
//!   *fast but not white* fluctuations.
//! * [`ChannelFading`] draws one static offset per advertising channel
//!   (37/38/39) per link: the three channels sit at 2402/2426/2480 MHz,
//!   far enough apart that their multipath phases differ, which shows up
//!   as a repeatable per-channel RSS bias.

use crate::randn::normal;
use rand::Rng;

/// Time-correlated Rician fading gain.
#[derive(Debug, Clone)]
pub struct RicianFading {
    /// Rice factor `K` (linear power ratio LOS / scattered). 0 = Rayleigh.
    pub k_factor: f64,
    /// Coherence time of the scattered component, seconds.
    pub coherence_time_s: f64,
    // In-phase / quadrature scattered components (AR(1) states).
    i: f64,
    q: f64,
    last_t: Option<f64>,
}

impl RicianFading {
    /// Creates a fading process.
    ///
    /// # Panics
    /// Panics when `k_factor < 0` or `coherence_time_s <= 0`.
    pub fn new(k_factor: f64, coherence_time_s: f64) -> Self {
        assert!(k_factor >= 0.0, "K factor must be non-negative");
        assert!(coherence_time_s > 0.0, "coherence time must be positive");
        RicianFading {
            k_factor,
            coherence_time_s,
            i: 0.0,
            q: 0.0,
            last_t: None,
        }
    }

    /// Typical K for a line-of-sight indoor link.
    pub fn los_default() -> Self {
        RicianFading::new(6.0, 0.1)
    }

    /// Rayleigh fading for obstructed links.
    pub fn nlos_default() -> Self {
        RicianFading::new(0.5, 0.1)
    }

    /// Samples the fading gain in dB at time `t`. Mean *linear* gain is 1
    /// (0 dB) by construction. Must be called in time order.
    ///
    /// # Panics
    /// Panics when `t` goes backwards.
    pub fn sample_at<R: Rng + ?Sized>(&mut self, t: f64, rng: &mut R) -> f64 {
        // Scattered component variance so that E[|h|²] = 1:
        // |h|² = K/(K+1) (LOS) + scattered with total power 1/(K+1),
        // i.e. each quadrature has variance 1/(2(K+1)).
        let sigma = (1.0 / (2.0 * (self.k_factor + 1.0))).sqrt();
        match self.last_t {
            None => {
                self.i = normal(rng, 0.0, sigma);
                self.q = normal(rng, 0.0, sigma);
            }
            Some(prev) => {
                assert!(t >= prev, "fading must be sampled in time order");
                let rho = (-(t - prev) / self.coherence_time_s).exp();
                let innov = sigma * (1.0 - rho * rho).sqrt();
                self.i = rho * self.i + normal(rng, 0.0, innov);
                self.q = rho * self.q + normal(rng, 0.0, innov);
            }
        }
        self.last_t = Some(t);
        let los = (self.k_factor / (self.k_factor + 1.0)).sqrt();
        let re = los + self.i;
        let im = self.q;
        let power = re * re + im * im;
        10.0 * power.max(1e-12).log10()
    }

    /// Resets the process.
    pub fn reset(&mut self) {
        self.i = 0.0;
        self.q = 0.0;
        self.last_t = None;
    }
}

/// Static per-advertising-channel gain offsets for one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelFading {
    offsets_db: [f64; 3],
}

impl ChannelFading {
    /// Draws per-channel offsets with standard deviation `sigma_db`.
    pub fn draw<R: Rng + ?Sized>(sigma_db: f64, rng: &mut R) -> Self {
        assert!(sigma_db >= 0.0, "sigma must be non-negative");
        ChannelFading {
            offsets_db: [
                normal(rng, 0.0, sigma_db),
                normal(rng, 0.0, sigma_db),
                normal(rng, 0.0, sigma_db),
            ],
        }
    }

    /// No frequency selectivity (all offsets zero).
    pub fn flat() -> Self {
        ChannelFading {
            offsets_db: [0.0; 3],
        }
    }

    /// Offset for a BLE advertising channel (37, 38, or 39).
    ///
    /// # Panics
    /// Panics on a non-advertising channel index.
    pub fn offset_db(&self, channel: u8) -> f64 {
        match channel {
            37 => self.offsets_db[0],
            38 => self.offsets_db[1],
            39 => self.offsets_db[2],
            other => panic!("channel {other} is not a BLE advertising channel"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_linear_gain_is_unity() {
        for k in [0.0, 1.0, 6.0, 20.0] {
            let mut rng = StdRng::seed_from_u64(21);
            let mut fading = RicianFading::new(k, 0.05);
            let n = 40_000;
            let mean_linear: f64 = (0..n)
                .map(|i| {
                    let db = fading.sample_at(i as f64 * 1.0, &mut rng);
                    10f64.powf(db / 10.0)
                })
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean_linear - 1.0).abs() < 0.05,
                "K={k}: mean {mean_linear}"
            );
        }
    }

    #[test]
    fn higher_k_means_less_variance() {
        let spread = |k: f64| {
            let mut rng = StdRng::seed_from_u64(22);
            let mut fading = RicianFading::new(k, 0.05);
            let samples: Vec<f64> = (0..20_000)
                .map(|i| fading.sample_at(i as f64, &mut rng))
                .collect();
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64
        };
        let rayleigh = spread(0.0);
        let strong_los = spread(15.0);
        assert!(
            strong_los < rayleigh / 4.0,
            "rayleigh var {rayleigh}, K=15 var {strong_los}"
        );
    }

    #[test]
    fn consecutive_samples_are_correlated_within_coherence_time() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut fading = RicianFading::new(0.0, 1.0);
        let mut prev = fading.sample_at(0.0, &mut rng);
        let mut max_step = 0f64;
        for i in 1..2_000 {
            let cur = fading.sample_at(i as f64 * 0.001, &mut rng);
            max_step = max_step.max((cur - prev).abs());
            prev = cur;
        }
        // 1 ms steps under a 1 s coherence time barely move (in dB this
        // can still spike near deep fades, so the bound is loose).
        assert!(max_step < 6.0, "max 1ms step {max_step} dB");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(24);
            let mut f = RicianFading::los_default();
            (0..100)
                .map(|i| f.sample_at(i as f64 * 0.1, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn channel_offsets_are_static_and_distinct() {
        let mut rng = StdRng::seed_from_u64(25);
        let ch = ChannelFading::draw(3.0, &mut rng);
        assert_eq!(ch.offset_db(37), ch.offset_db(37));
        // With continuous draws the three offsets are a.s. distinct.
        assert_ne!(ch.offset_db(37), ch.offset_db(38));
        assert_ne!(ch.offset_db(38), ch.offset_db(39));
        let flat = ChannelFading::flat();
        assert_eq!(flat.offset_db(37), 0.0);
        assert_eq!(flat.offset_db(39), 0.0);
    }

    #[test]
    #[should_panic(expected = "not a BLE advertising channel")]
    fn data_channel_rejected() {
        ChannelFading::flat().offset_db(5);
    }
}
