//! RF propagation simulator for the LocBLE reproduction.
//!
//! The paper's evaluation ran against real indoor/outdoor radio channels;
//! this crate is the substitute substrate (see DESIGN.md §2). It
//! implements, from the paper's own model references (log-distance path
//! loss [Tse & Viswanath]; fast/frequency-selective fading §2.3; receiver
//! chipset offsets §2.4), every distortion mechanism LocBLE is designed to
//! survive:
//!
//! * [`pathloss`] — `RS = Γ(e) − 10·n(e)·log10(d)` with environment-
//!   dependent parameters; this is the model the estimator inverts.
//! * [`shadowing`] — temporally correlated (AR(1)) log-normal shadowing:
//!   the slow channel fluctuation EnvAware must see through.
//! * [`fading`] — Rician/Rayleigh small-scale fading plus per-advertising-
//!   channel frequency-selective offsets (BLE hops across channels
//!   37/38/39, §2.2), the fast fluctuations the Butterworth filter
//!   removes.
//! * [`obstacles`] — material-tagged wall segments; ray casting decides
//!   LOS / p-LOS / NLOS and adds per-material penetration loss.
//! * [`receiver`] — chipset RSSI offset (the ±5 dB BCM4334-class error of
//!   §2.4), Gaussian measurement noise, 1 dB quantization, sensitivity
//!   floor.
//! * [`link`] — the composed end-to-end link: positions in, measured RSSI
//!   out.
//!
//! All randomness is seeded and deterministic.

#![warn(missing_docs)]

pub mod fading;
pub mod link;
pub mod obstacles;
pub mod pathloss;
pub mod randn;
pub mod receiver;
pub mod shadowing;

pub use fading::{ChannelFading, RicianFading};
pub use link::{LinkConfig, LinkSimulator};
pub use obstacles::{classify_path, Material, Obstacle, PathClassification};
pub use pathloss::{LogDistanceModel, MIN_RANGE_M};
pub use receiver::{ReceiverProfile, RssiReading};
pub use shadowing::{CorrelatedShadowing, SpatialShadowing};
