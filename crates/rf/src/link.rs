//! The composed TX→RX link simulator.
//!
//! Chains every impairment in this crate into a single call: geometry →
//! path classification → log-distance mean → obstacle penetration loss →
//! correlated shadowing → Rician/Rayleigh fast fading → per-channel
//! frequency-selective offset → receiver chain. This is the channel that
//! `locble-ble`'s scanner samples and that `locble-scenario` wires into
//! whole experiments.

use crate::fading::{ChannelFading, RicianFading};
use crate::obstacles::{classify_path, Obstacle, PathClassification};
use crate::pathloss::LogDistanceModel;
use crate::receiver::{ReceiverProfile, RssiReading};
use crate::shadowing::{CorrelatedShadowing, SpatialShadowing};
use locble_geom::{EnvClass, Vec2};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Physical parameters of one beacon→phone link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Mean received power at 1 m with a clear path, dBm (iBeacon
    /// "measured power" is typically around −59 dBm at 0 dBm Tx).
    pub gamma_1m_dbm: f64,
    /// Scales the per-environment-class typical path-loss exponent
    /// (1.0 = textbook values).
    pub exponent_scale: f64,
    /// Shadowing coherence time constant, seconds.
    pub shadowing_tau_s: f64,
    /// Fast-fading coherence time, seconds.
    pub fading_coherence_s: f64,
    /// Rice K factor on a clear path (drops with obstruction).
    pub los_k_factor: f64,
    /// Std-dev of the static per-advertising-channel offsets, dB.
    pub channel_sigma_db: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            gamma_1m_dbm: -59.0,
            exponent_scale: 1.0,
            shadowing_tau_s: 4.0,
            fading_coherence_s: 0.12,
            los_k_factor: 6.0,
            channel_sigma_db: 1.5,
        }
    }
}

/// Stateful simulator for one link.
#[derive(Debug, Clone)]
pub struct LinkSimulator {
    config: LinkConfig,
    receiver: ReceiverProfile,
    shadowing: CorrelatedShadowing,    // unit-σ temporal process
    spatial: Option<SpatialShadowing>, // unit-σ geometric field (shared)
    fading: RicianFading,
    channel_fading: ChannelFading,
    rng: StdRng,
    last_class: Option<PathClassification>,
}

impl LinkSimulator {
    /// Creates a link with its own deterministic RNG stream.
    pub fn new(config: LinkConfig, receiver: ReceiverProfile, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let channel_fading = ChannelFading::draw(config.channel_sigma_db, &mut rng);
        LinkSimulator {
            config,
            receiver,
            shadowing: CorrelatedShadowing::new(1.0, config.shadowing_tau_s),
            spatial: None,
            fading: RicianFading::new(config.los_k_factor, config.fading_coherence_s),
            channel_fading,
            rng,
            last_class: None,
        }
    }

    /// Attaches a shared geometry-driven shadowing field. Links that
    /// share a field see *correlated* shadowing when their endpoints are
    /// close — the physical basis of the paper's §6 clustering. With a
    /// field attached, shadowing splits ~95 % spatial / ~30 % temporal
    /// (quadrature weights, preserving the stationary variance).
    pub fn with_spatial_shadowing(mut self, field: SpatialShadowing) -> Self {
        self.spatial = Some(field);
        self
    }

    /// The path classification of the most recent measurement (ground
    /// truth for EnvAware evaluation).
    pub fn last_classification(&self) -> Option<&PathClassification> {
        self.last_class.as_ref()
    }

    /// The physical mean RSS (no noise) the link would produce for a
    /// given geometry — the "theoretical" curve of paper Fig. 4.
    pub fn mean_rss(&self, tx: Vec2, rx: Vec2, obstacles: &[Obstacle]) -> f64 {
        let class = classify_path(tx, rx, obstacles);
        self.mean_rss_for_class(tx, rx, &class)
    }

    fn mean_rss_for_class(&self, tx: Vec2, rx: Vec2, class: &PathClassification) -> f64 {
        let exponent = class.env.typical_path_loss_exponent() * self.config.exponent_scale;
        let model = LogDistanceModel::new(self.config.gamma_1m_dbm, exponent);
        model.rss_at(tx.distance(rx)) - class.blockage_db
    }

    /// Simulates one advertisement reception at time `t` on advertising
    /// `channel` (37/38/39). Returns `None` when the signal drops below
    /// the receiver's sensitivity floor. Must be called in time order.
    pub fn measure(
        &mut self,
        t: f64,
        tx: Vec2,
        rx: Vec2,
        obstacles: &[Obstacle],
        channel: u8,
    ) -> Option<RssiReading> {
        self.measure_with_tx_offset(t, tx, rx, obstacles, channel, 0.0)
    }

    /// Like [`LinkSimulator::measure`], with an additional transmit-side
    /// power deviation in dB (per-transmission beacon hardware
    /// instability, see `locble-ble`'s hardware profiles).
    pub fn measure_with_tx_offset(
        &mut self,
        t: f64,
        tx: Vec2,
        rx: Vec2,
        obstacles: &[Obstacle],
        channel: u8,
        tx_offset_db: f64,
    ) -> Option<RssiReading> {
        let class = classify_path(tx, rx, obstacles);
        let mean = self.mean_rss_for_class(tx, rx, &class);
        let distance = tx.distance(rx);

        // Near-field links are dominated by the direct path: within a
        // couple of metres there is little room for blockage or rich
        // multipath, so shadowing shrinks and the Rice K factor grows.
        // (This is also why the paper's §9.1 observes that "Bluetooth
        // proximity actually demonstrates fairly good accuracy within
        // 2m".)
        let near = (distance / 3.0).clamp(0.25, 1.0);

        // Shadowing with environment-dependent stationary deviation:
        // geometry-driven (spatially correlated across links) plus a
        // temporal component for environment dynamics.
        let sigma = class.env.typical_shadowing_sigma_db() * near;
        let shadow = match &self.spatial {
            Some(field) => {
                // Mostly geometry (shared between co-located links; the
                // slow swings the paper's Fig. 9a traces show on every
                // shelf beacon simultaneously) plus a small independent
                // temporal residue for environment dynamics.
                0.95 * sigma * field.sample(tx, rx)
                    + 0.3 * sigma * self.shadowing.sample_at(t, &mut self.rng)
            }
            None => sigma * self.shadowing.sample_at(t, &mut self.rng),
        };

        // Fast fading: obstruction lowers the Rice K factor; proximity
        // raises it (direct-path domination).
        self.fading.k_factor =
            (self.config.los_k_factor / (1.0 + class.scattering) / (near * near)).max(0.05);
        let fade = self.fading.sample_at(t, &mut self.rng);

        let ch = self.channel_fading.offset_db(channel);

        let physical = mean + shadow + fade + ch + tx_offset_db;
        self.last_class = Some(class);
        self.receiver.measure(physical, &mut self.rng)
    }
}

/// Convenience: the environment class of the current geometry.
pub fn env_of(tx: Vec2, rx: Vec2, obstacles: &[Obstacle]) -> EnvClass {
    classify_path(tx, rx, obstacles).env
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obstacles::Material;

    fn quiet_receiver() -> ReceiverProfile {
        ReceiverProfile::ideal()
    }

    fn mean_of(sim: &mut LinkSimulator, d: f64, n: usize, t0: f64) -> f64 {
        let tx = Vec2::new(d, 0.0);
        let rx = Vec2::ZERO;
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in 0..n {
            // Decorrelate samples by spacing them far apart in time.
            let t = t0 + i as f64 * 60.0;
            if let Some(m) = sim.measure(t, tx, rx, &[], 37 + (i % 3) as u8) {
                sum += m.rssi_dbm;
                count += 1;
            }
        }
        sum / count as f64
    }

    #[test]
    fn rss_decays_with_distance() {
        let mut sim = LinkSimulator::new(LinkConfig::default(), quiet_receiver(), 41);
        let near = mean_of(&mut sim, 1.0, 400, 0.0);
        let mut sim2 = LinkSimulator::new(LinkConfig::default(), quiet_receiver(), 41);
        let far = mean_of(&mut sim2, 8.0, 400, 0.0);
        assert!(
            near > far + 10.0,
            "expected strong decay: near {near:.1}, far {far:.1}"
        );
    }

    #[test]
    fn mean_tracks_log_distance_model() {
        let mut sim = LinkSimulator::new(
            LinkConfig {
                channel_sigma_db: 0.0,
                ..Default::default()
            },
            quiet_receiver(),
            43,
        );
        let measured = mean_of(&mut sim, 4.0, 3000, 0.0);
        let expected = LogDistanceModel::new(-59.0, 2.0).rss_at(4.0);
        // Shadowing/fading average out in dB up to a small fading bias.
        assert!(
            (measured - expected).abs() < 1.5,
            "measured {measured:.1}, model {expected:.1}"
        );
    }

    #[test]
    fn wall_costs_blockage_and_reclassifies() {
        let wall = [Obstacle::new(
            Vec2::new(2.0, -5.0),
            Vec2::new(2.0, 5.0),
            Material::Concrete,
        )];
        let mut sim = LinkSimulator::new(LinkConfig::default(), quiet_receiver(), 44);
        let _ = sim.measure(0.0, Vec2::new(4.0, 0.0), Vec2::ZERO, &wall, 37);
        assert_eq!(sim.last_classification().unwrap().env, EnvClass::NonLos);
        // Mean RSS through the wall is well below the clear-path mean.
        let clear = sim.mean_rss(Vec2::new(4.0, 0.0), Vec2::ZERO, &[]);
        let blocked = sim.mean_rss(Vec2::new(4.0, 0.0), Vec2::ZERO, &wall);
        assert!(
            blocked < clear - 10.0,
            "clear {clear:.1}, blocked {blocked:.1}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut sim = LinkSimulator::new(
                LinkConfig::default(),
                ReceiverProfile::smartphone(0.0),
                seed,
            );
            (0..50)
                .map(|i| {
                    sim.measure(
                        i as f64 * 0.1,
                        Vec2::new(5.0, 1.0),
                        Vec2::ZERO,
                        &[],
                        37 + (i % 3) as u8,
                    )
                    .map(|m| m.rssi_dbm)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn weak_signals_are_dropped() {
        let mut sim =
            LinkSimulator::new(LinkConfig::default(), ReceiverProfile::smartphone(0.0), 45);
        // 300 m away: far below −100 dBm sensitivity.
        let got = sim.measure(0.0, Vec2::new(300.0, 0.0), Vec2::ZERO, &[], 37);
        assert!(got.is_none());
    }

    #[test]
    fn fig2_shape_offsets_differ_trend_matches() {
        // Reproduce the essence of paper Fig. 2: different handsets show
        // different offsets but the same decaying trend.
        let mut means = Vec::new();
        for (i, (_, profile)) in ReceiverProfile::fig2_handsets().iter().enumerate() {
            let cfg = LinkConfig {
                channel_sigma_db: 0.0,
                ..Default::default()
            };
            let mut sim = LinkSimulator::new(cfg, *profile, 100 + i as u64);
            let near = mean_of(&mut sim, 1.5, 500, 0.0);
            let mut sim2 = LinkSimulator::new(cfg, *profile, 200 + i as u64);
            let far = mean_of(&mut sim2, 6.1, 500, 0.0);
            assert!(near > far + 5.0, "handset {i}: trend must decay");
            means.push(near);
        }
        // Offsets shift the curves apart.
        assert!((means[0] - means[1]).abs() > 2.0);
        assert!((means[0] - means[2]).abs() > 1.5);
    }
}
