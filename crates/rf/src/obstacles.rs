//! Obstacles, materials, and LOS/p-LOS/NLOS path classification.
//!
//! Paper §4.1 defines the classes by blocking coefficient: p-LOS is
//! "blockage with a low blocking coefficient, such as glass, wooden door,
//! and human body", NLOS is "blockage with a high blocking coefficient,
//! such as concrete wall, cinder wall, and metal board". The simulator
//! casts the TX→RX ray against material-tagged segments, sums the
//! penetration losses, and reports the resulting class — which is both
//! the channel's ground truth and the label EnvAware trains against.

use locble_geom::{EnvClass, Segment, Vec2};

/// Obstacle material with its 2.4 GHz penetration loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Material {
    /// Glass pane (~2 dB).
    Glass,
    /// Wooden door / furniture (~3 dB).
    Wood,
    /// A human body in the path (~4 dB).
    HumanBody,
    /// Drywall partition (~3 dB, low coefficient).
    Drywall,
    /// Concrete wall (~12 dB).
    Concrete,
    /// Cinder-block wall (~10 dB).
    CinderBlock,
    /// Metal board / rack (~15 dB, highly reflective).
    Metal,
}

impl Material {
    /// Penetration loss in dB for one crossing.
    pub fn attenuation_db(self) -> f64 {
        match self {
            Material::Glass => 2.0,
            Material::Wood => 3.0,
            Material::HumanBody => 4.0,
            Material::Drywall => 3.0,
            Material::Concrete => 12.0,
            Material::CinderBlock => 10.0,
            Material::Metal => 15.0,
        }
    }

    /// Whether the paper counts this material as a *high* blocking
    /// coefficient (⇒ NLOS) or a low one (⇒ p-LOS).
    pub fn is_high_blocking(self) -> bool {
        matches!(
            self,
            Material::Concrete | Material::CinderBlock | Material::Metal
        )
    }

    /// Extra multipath richness contributed by the material: blocking the
    /// direct ray removes the LOS component, so even light blockers pull
    /// the link's Rice K factor down sharply and reflective ones push it
    /// into the Rayleigh regime.
    pub fn scattering_weight(self) -> f64 {
        match self {
            Material::Glass => 1.0,
            Material::Wood => 1.5,
            Material::HumanBody => 2.0,
            Material::Drywall => 1.5,
            Material::Concrete => 8.0,
            Material::CinderBlock => 8.0,
            Material::Metal => 12.0,
        }
    }
}

/// A wall/rack/person segment in the environment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obstacle {
    /// The obstacle's footprint in the plane.
    pub segment: Segment,
    /// What it is made of.
    pub material: Material,
}

impl Obstacle {
    /// Creates an obstacle.
    pub fn new(a: Vec2, b: Vec2, material: Material) -> Self {
        Obstacle {
            segment: Segment::new(a, b),
            material,
        }
    }
}

/// Result of classifying a TX→RX path against the obstacle set.
#[derive(Debug, Clone, PartialEq)]
pub struct PathClassification {
    /// LOS / p-LOS / NLOS per the paper's definition.
    pub env: EnvClass,
    /// Total penetration loss of all crossed obstacles, dB.
    pub blockage_db: f64,
    /// Number of obstacles crossed.
    pub crossings: usize,
    /// Sum of scattering weights of crossed obstacles (drives the Rice K).
    pub scattering: f64,
}

/// Casts the `tx → rx` ray against `obstacles` and classifies the path.
pub fn classify_path(tx: Vec2, rx: Vec2, obstacles: &[Obstacle]) -> PathClassification {
    let ray = Segment::new(tx, rx);
    let mut blockage_db = 0.0;
    let mut crossings = 0;
    let mut scattering = 0.0;
    let mut high = false;
    for ob in obstacles {
        if ray.intersects(&ob.segment) {
            crossings += 1;
            blockage_db += ob.material.attenuation_db();
            scattering += ob.material.scattering_weight();
            high |= ob.material.is_high_blocking();
        }
    }
    let env = if crossings == 0 {
        EnvClass::Los
    } else if high {
        EnvClass::NonLos
    } else {
        EnvClass::PartialLos
    };
    PathClassification {
        env,
        blockage_db,
        crossings,
        scattering,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wall(x: f64, material: Material) -> Obstacle {
        Obstacle::new(Vec2::new(x, -5.0), Vec2::new(x, 5.0), material)
    }

    #[test]
    fn clear_path_is_los() {
        let c = classify_path(Vec2::ZERO, Vec2::new(10.0, 0.0), &[]);
        assert_eq!(c.env, EnvClass::Los);
        assert_eq!(c.blockage_db, 0.0);
        assert_eq!(c.crossings, 0);
    }

    #[test]
    fn glass_makes_plos() {
        let obs = [wall(5.0, Material::Glass)];
        let c = classify_path(Vec2::ZERO, Vec2::new(10.0, 0.0), &obs);
        assert_eq!(c.env, EnvClass::PartialLos);
        assert_eq!(c.blockage_db, 2.0);
        assert_eq!(c.crossings, 1);
    }

    #[test]
    fn concrete_makes_nlos() {
        let obs = [wall(5.0, Material::Concrete)];
        let c = classify_path(Vec2::ZERO, Vec2::new(10.0, 0.0), &obs);
        assert_eq!(c.env, EnvClass::NonLos);
        assert_eq!(c.blockage_db, 12.0);
    }

    #[test]
    fn any_high_material_dominates() {
        let obs = [wall(3.0, Material::Glass), wall(6.0, Material::Metal)];
        let c = classify_path(Vec2::ZERO, Vec2::new(10.0, 0.0), &obs);
        assert_eq!(c.env, EnvClass::NonLos);
        assert_eq!(c.crossings, 2);
        assert!((c.blockage_db - 17.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_low_materials_stay_plos() {
        let obs = [wall(3.0, Material::Wood), wall(6.0, Material::HumanBody)];
        let c = classify_path(Vec2::ZERO, Vec2::new(10.0, 0.0), &obs);
        assert_eq!(c.env, EnvClass::PartialLos);
        assert!((c.blockage_db - 7.0).abs() < 1e-12);
    }

    #[test]
    fn obstacle_off_path_is_ignored() {
        let obs = [Obstacle::new(
            Vec2::new(5.0, 2.0),
            Vec2::new(5.0, 8.0),
            Material::Concrete,
        )];
        let c = classify_path(Vec2::ZERO, Vec2::new(10.0, 0.0), &obs);
        assert_eq!(c.env, EnvClass::Los);
    }

    #[test]
    fn path_direction_does_not_matter() {
        let obs = [wall(5.0, Material::Concrete)];
        let a = classify_path(Vec2::ZERO, Vec2::new(10.0, 0.0), &obs);
        let b = classify_path(Vec2::new(10.0, 0.0), Vec2::ZERO, &obs);
        assert_eq!(a, b);
    }

    #[test]
    fn material_taxonomy_matches_paper() {
        // §4.1: glass/wood/human are low-coefficient, concrete/cinder/
        // metal are high-coefficient.
        for m in [
            Material::Glass,
            Material::Wood,
            Material::HumanBody,
            Material::Drywall,
        ] {
            assert!(!m.is_high_blocking(), "{m:?}");
        }
        for m in [Material::Concrete, Material::CinderBlock, Material::Metal] {
            assert!(m.is_high_blocking(), "{m:?}");
        }
    }
}
