//! Log-distance path-loss model.
//!
//! Paper Eq. 1: `RS = Γ(e) − 10·n(e)·log10(l)`. `Γ(e)` bundles the Tx
//! power, antenna gains, and the hardware power offset `P` plus
//! environment noise `X(e)`; `n(e)` is the environment-dependent path-loss
//! exponent. The simulator *generates* RSS with this model (plus the
//! impairments in the sibling modules); the estimator *inverts* it without
//! being told the parameters.

use locble_geom::EnvClass;

/// Minimum propagation range, metres. The log-distance model diverges
/// at 0 and a beacon is never inside the phone, so every `log10(l)`
/// in the workspace — generation *and* estimation — clamps the range
/// to this floor first. Keeping one shared constant is what makes the
/// clamp consistent across crates (see `locble-core`'s residual and
/// proximity paths).
pub const MIN_RANGE_M: f64 = 0.1;

/// Deterministic mean path-loss model.
///
/// ```
/// use locble_rf::LogDistanceModel;
///
/// // A typical iBeacon: −59 dBm at 1 m, free-space-ish exponent.
/// let model = LogDistanceModel::new(-59.0, 2.0);
/// assert!((model.rss_at(1.0) + 59.0).abs() < 1e-12);
/// // Every doubling of distance costs ~6 dB at n = 2.
/// assert!((model.rss_at(2.0) - model.rss_at(4.0) - 6.02).abs() < 0.01);
/// // And the model inverts exactly.
/// assert!((model.distance_for(model.rss_at(7.5)) - 7.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDistanceModel {
    /// `Γ`: mean received power at the 1 m reference distance, in dBm.
    pub gamma_dbm: f64,
    /// `n`: path-loss exponent.
    pub exponent: f64,
}

impl LogDistanceModel {
    /// Creates a model.
    ///
    /// # Panics
    /// Panics when `exponent <= 0`.
    pub fn new(gamma_dbm: f64, exponent: f64) -> Self {
        assert!(exponent > 0.0, "path-loss exponent must be positive");
        LogDistanceModel {
            gamma_dbm,
            exponent,
        }
    }

    /// A typical commodity iBeacon in the given environment class:
    /// 0 dBm Tx power, ~−59 dBm measured at 1 m (the iBeacon "measured
    /// power" calibration constant), exponent from the class.
    pub fn for_env(env: EnvClass) -> Self {
        LogDistanceModel::new(-59.0, env.typical_path_loss_exponent())
    }

    /// Mean RSS at distance `d` metres. Distances below 0.1 m clamp to
    /// 0.1 m (the model diverges at 0 and beacons are never inside the
    /// phone).
    pub fn rss_at(&self, d: f64) -> f64 {
        let d = d.max(MIN_RANGE_M);
        self.gamma_dbm - 10.0 * self.exponent * d.log10()
    }

    /// Inverts the model: the distance at which the mean RSS equals
    /// `rss_dbm`.
    pub fn distance_for(&self, rss_dbm: f64) -> f64 {
        10f64.powf((self.gamma_dbm - rss_dbm) / (10.0 * self.exponent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_distance_returns_gamma() {
        let m = LogDistanceModel::new(-59.0, 2.0);
        assert!((m.rss_at(1.0) + 59.0).abs() < 1e-12);
    }

    #[test]
    fn free_space_slope_is_6db_per_doubling() {
        let m = LogDistanceModel::new(-59.0, 2.0);
        let drop = m.rss_at(2.0) - m.rss_at(4.0);
        assert!((drop - 6.02).abs() < 0.01);
    }

    #[test]
    fn larger_exponent_decays_faster() {
        let los = LogDistanceModel::for_env(EnvClass::Los);
        let nlos = LogDistanceModel::for_env(EnvClass::NonLos);
        assert!(nlos.rss_at(10.0) < los.rss_at(10.0));
        assert_eq!(los.rss_at(1.0), nlos.rss_at(1.0));
    }

    #[test]
    fn rss_distance_round_trip() {
        let m = LogDistanceModel::new(-59.0, 2.7);
        for d in [0.5, 1.0, 3.0, 8.0, 15.0] {
            let rss = m.rss_at(d);
            assert!((m.distance_for(rss) - d).abs() < 1e-9, "d = {d}");
        }
    }

    #[test]
    fn tiny_distances_clamp() {
        let m = LogDistanceModel::new(-59.0, 2.0);
        assert_eq!(m.rss_at(0.0), m.rss_at(0.05));
        assert!(m.rss_at(0.0).is_finite());
    }

    #[test]
    fn paper_range_is_plausible() {
        // Paper Fig. 2: RSS spans roughly −50 to −95 dBm over 0–6 m
        // indoors; our defaults must land in that regime.
        let m = LogDistanceModel::for_env(EnvClass::PartialLos);
        let near = m.rss_at(0.5);
        let far = m.rss_at(6.1);
        assert!(near > -60.0 && near < -40.0, "near {near}");
        assert!(far > -95.0 && far < -70.0, "far {far}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_exponent() {
        LogDistanceModel::new(-59.0, 0.0);
    }
}
