//! Gaussian sampling on top of `rand`'s uniform generator.
//!
//! The approved dependency list includes `rand` but not `rand_distr`, so
//! normal variates come from a small Box–Muller transform here.

use rand::Rng;

/// Draws one standard-normal sample (Box–Muller).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to keep ln() finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws one `N(mean, sigma²)` sample.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "sigma must be non-negative");
    mean + sigma * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shifted_and_scaled() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, -70.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean + 70.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }

    #[test]
    fn zero_sigma_returns_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(normal(&mut rng, 5.0, 0.0), 5.0);
    }
}
