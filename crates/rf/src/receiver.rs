//! Receiver-side RSSI impairments.
//!
//! Paper §2.4: "noises will be added to RSS readings due to the CMOS
//! property of analog components, imperfections, and environment
//! temperature. For example, the widely-used BroadCom BCM4334
//! WLAN/Bluetooth receiver chipset has ±5 RSS accuracy at room
//! temperature." Phones also differ by a constant offset (paper Fig. 2
//! shows three handsets reading the same channel at visibly different
//! levels with the same trend), report RSSI on an integer dB grid, and
//! stop hearing beacons below a sensitivity floor.

use crate::randn::normal;
use rand::Rng;

/// One reported RSSI measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RssiReading {
    /// The reported (quantized, offset, noisy) value in dBm.
    pub rssi_dbm: f64,
    /// The physical received power before receiver impairments, dBm.
    pub true_power_dbm: f64,
}

/// A receiver chipset/handset profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceiverProfile {
    /// Constant per-device RSSI offset in dB (chipset calibration error).
    pub offset_db: f64,
    /// Standard deviation of per-reading measurement noise, dB.
    pub noise_sigma_db: f64,
    /// Reporting granularity in dB (1.0 for integer RSSI).
    pub quantization_db: f64,
    /// Sensitivity floor: readings below this are lost, dBm.
    pub sensitivity_dbm: f64,
}

impl ReceiverProfile {
    /// An ideal receiver: no offset, no noise, no quantization, no floor.
    pub fn ideal() -> Self {
        ReceiverProfile {
            offset_db: 0.0,
            noise_sigma_db: 0.0,
            quantization_db: 0.0,
            sensitivity_dbm: f64::NEG_INFINITY,
        }
    }

    /// A BCM4334-class smartphone radio (paper §2.4): ±5 dB accuracy
    /// modeled as a per-device constant offset plus per-reading noise,
    /// integer RSSI, −100 dBm sensitivity.
    pub fn smartphone(offset_db: f64) -> Self {
        ReceiverProfile {
            offset_db,
            noise_sigma_db: 1.5,
            quantization_db: 1.0,
            sensitivity_dbm: -100.0,
        }
    }

    /// A Bluetooth 5 receiver using the LE Coded PHY (S = 8): the coding
    /// gain buys ~5 dB of sensitivity, the "wider coverage" the paper's
    /// §9.3 notes the upcoming standard brings while staying compatible
    /// with LocBLE (the estimator still sees only RSSI).
    pub fn smartphone_ble5(offset_db: f64) -> Self {
        ReceiverProfile {
            offset_db,
            noise_sigma_db: 1.5,
            quantization_db: 1.0,
            sensitivity_dbm: -105.0,
        }
    }

    /// The three handsets of paper Fig. 2 (iPhone 5s / Nexus 5x /
    /// Moto Nexus 6), distinguished by their chipset offsets.
    pub fn fig2_handsets() -> [(&'static str, ReceiverProfile); 3] {
        [
            ("iPhone 5s", ReceiverProfile::smartphone(0.0)),
            ("Nexus 5x", ReceiverProfile::smartphone(-4.0)),
            ("Moto Nexus 6", ReceiverProfile::smartphone(3.0)),
        ]
    }

    /// Applies the receiver chain to a physical received power. Returns
    /// `None` when the signal falls below the sensitivity floor (the scan
    /// misses the advertisement).
    pub fn measure<R: Rng + ?Sized>(
        &self,
        true_power_dbm: f64,
        rng: &mut R,
    ) -> Option<RssiReading> {
        if true_power_dbm < self.sensitivity_dbm {
            return None;
        }
        let mut v = true_power_dbm + self.offset_db;
        if self.noise_sigma_db > 0.0 {
            v = normal(rng, v, self.noise_sigma_db);
        }
        if self.quantization_db > 0.0 {
            v = (v / self.quantization_db).round() * self.quantization_db;
        }
        Some(RssiReading {
            rssi_dbm: v,
            true_power_dbm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_receiver_is_transparent() {
        let mut rng = StdRng::seed_from_u64(31);
        let r = ReceiverProfile::ideal();
        let m = r.measure(-63.7, &mut rng).unwrap();
        assert_eq!(m.rssi_dbm, -63.7);
        assert_eq!(m.true_power_dbm, -63.7);
    }

    #[test]
    fn offset_shifts_mean() {
        let mut rng = StdRng::seed_from_u64(32);
        let r = ReceiverProfile::smartphone(-4.0);
        let n = 20_000;
        let mean: f64 = (0..n)
            .filter_map(|_| r.measure(-70.0, &mut rng))
            .map(|m| m.rssi_dbm)
            .sum::<f64>()
            / n as f64;
        assert!((mean + 74.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn quantization_grid_respected() {
        let mut rng = StdRng::seed_from_u64(33);
        let r = ReceiverProfile::smartphone(0.0);
        for _ in 0..100 {
            let m = r.measure(-70.3, &mut rng).unwrap();
            assert!((m.rssi_dbm - m.rssi_dbm.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn below_sensitivity_is_lost() {
        let mut rng = StdRng::seed_from_u64(34);
        let r = ReceiverProfile::smartphone(0.0);
        assert!(r.measure(-101.0, &mut rng).is_none());
        assert!(r.measure(-99.0, &mut rng).is_some());
    }

    #[test]
    fn noise_spread_matches_sigma() {
        let mut rng = StdRng::seed_from_u64(35);
        let r = ReceiverProfile {
            offset_db: 0.0,
            noise_sigma_db: 2.0,
            quantization_db: 0.0,
            sensitivity_dbm: f64::NEG_INFINITY,
        };
        let n = 40_000;
        let vals: Vec<f64> = (0..n)
            .map(|_| r.measure(-70.0, &mut rng).unwrap().rssi_dbm)
            .collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn ble5_coded_phy_extends_range() {
        // §9.3: BLE 5's coded PHY hears beacons a v4 radio loses.
        let mut rng = StdRng::seed_from_u64(36);
        let v4 = ReceiverProfile::smartphone(0.0);
        let v5 = ReceiverProfile::smartphone_ble5(0.0);
        assert!(v4.measure(-103.0, &mut rng).is_none());
        assert!(v5.measure(-103.0, &mut rng).is_some());
    }

    #[test]
    fn fig2_handsets_have_distinct_offsets() {
        let handsets = ReceiverProfile::fig2_handsets();
        assert_eq!(handsets.len(), 3);
        let offs: Vec<f64> = handsets.iter().map(|(_, p)| p.offset_db).collect();
        assert!(offs[0] != offs[1] && offs[1] != offs[2] && offs[0] != offs[2]);
    }
}
