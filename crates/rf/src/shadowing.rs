//! Temporally correlated log-normal shadowing.
//!
//! Shadowing (blockage by large objects) varies slowly: it is correlated
//! over the channel *coherence time* (paper §4.3 attributes part of
//! LocBLE's difficulty to "low channel coherence time due to user
//! movements"). The standard Gudmundson-style model is a first-order
//! autoregressive Gaussian process in dB:
//!
//! `S_k = ρ·S_{k−1} + √(1−ρ²)·N(0, σ²)`, with `ρ = exp(−Δt / τ)`.

use crate::randn::normal;
use locble_geom::Vec2;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// AR(1)-correlated shadowing process in dB.
#[derive(Debug, Clone)]
pub struct CorrelatedShadowing {
    /// Stationary standard deviation σ in dB.
    pub sigma_db: f64,
    /// Correlation time constant τ in seconds.
    pub tau_s: f64,
    state: f64,
    last_t: Option<f64>,
}

impl CorrelatedShadowing {
    /// Creates a process with stationary deviation `sigma_db` and
    /// coherence time constant `tau_s`.
    ///
    /// # Panics
    /// Panics when `sigma_db < 0` or `tau_s <= 0`.
    pub fn new(sigma_db: f64, tau_s: f64) -> Self {
        assert!(sigma_db >= 0.0, "sigma must be non-negative");
        assert!(tau_s > 0.0, "tau must be positive");
        CorrelatedShadowing {
            sigma_db,
            tau_s,
            state: 0.0,
            last_t: None,
        }
    }

    /// Samples the shadowing value at absolute time `t` (seconds).
    /// Successive calls must not go backwards in time.
    ///
    /// # Panics
    /// Panics when `t` precedes the previous sample time.
    pub fn sample_at<R: Rng + ?Sized>(&mut self, t: f64, rng: &mut R) -> f64 {
        match self.last_t {
            None => {
                // Start from the stationary distribution.
                self.state = normal(rng, 0.0, self.sigma_db);
            }
            Some(prev) => {
                assert!(t >= prev, "shadowing must be sampled in time order");
                let dt = t - prev;
                let rho = (-dt / self.tau_s).exp();
                let innov_sigma = self.sigma_db * (1.0 - rho * rho).sqrt();
                self.state = rho * self.state + normal(rng, 0.0, innov_sigma);
            }
        }
        self.last_t = Some(t);
        self.state
    }

    /// Current value without advancing time.
    pub fn current(&self) -> f64 {
        self.state
    }

    /// Resets the process.
    pub fn reset(&mut self) {
        self.state = 0.0;
        self.last_t = None;
    }
}

/// A *spatially* correlated shadowing field shared by all links of one
/// environment.
///
/// Shadowing is caused by the geometry around the link, so two
/// transmitters centimetres apart seen from the same phone experience
/// nearly the same shadowing — which is precisely the correlation the
/// paper's multi-beacon clustering (§6) exploits. The field is a sum of
/// `K` random plane waves over the (tx, rx) position pair; its value is
/// deterministic in the geometry, unit variance, zero mean, and smooth
/// with a configurable correlation length.
#[derive(Debug, Clone)]
pub struct SpatialShadowing {
    // (k_tx, k_rx, phase, amplitude) per component.
    components: Vec<(Vec2, Vec2, f64, f64)>,
}

impl SpatialShadowing {
    /// Draws a field with `K = 12` plane waves whose wavelengths are
    /// spread around `correlation_m` (the distance over which shadowing
    /// decorrelates — a couple of metres indoors).
    ///
    /// # Panics
    /// Panics when `correlation_m <= 0`.
    pub fn new(correlation_m: f64, seed: u64) -> SpatialShadowing {
        assert!(correlation_m > 0.0, "correlation length must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let k_count = 12;
        let amp = (2.0 / k_count as f64).sqrt(); // unit total variance
        let components = (0..k_count)
            .map(|_| {
                // Random direction + wavelength around the correlation
                // length (0.5×–2×).
                let lambda = correlation_m * 2.0f64.powf(rng.random_range(-1.0..1.0));
                let k_mag = 2.0 * std::f64::consts::PI / lambda;
                let dir_rx = Vec2::from_angle(rng.random_range(0.0..std::f64::consts::TAU));
                let dir_tx = Vec2::from_angle(rng.random_range(0.0..std::f64::consts::TAU));
                // Asymmetric ends: the rx side varies at the correlation
                // length (the phone walks through the field and the
                // fluctuations average out of the regression), while the
                // tx side varies ~4× slower so beacons on the same shelf
                // stay strongly correlated — the §6 clustering signal.
                (
                    dir_tx * (k_mag / 4.0),
                    dir_rx * k_mag,
                    rng.random_range(0.0..std::f64::consts::TAU),
                    amp,
                )
            })
            .collect();
        SpatialShadowing { components }
    }

    /// Field value (unit variance) for a link with endpoints `tx`, `rx`.
    pub fn sample(&self, tx: Vec2, rx: Vec2) -> f64 {
        self.components
            .iter()
            .map(|&(ktx, krx, phase, amp)| amp * (ktx.dot(tx) + krx.dot(rx) + phase).sin())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_variance_is_sigma_squared() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut shade = CorrelatedShadowing::new(4.0, 1.0);
        // Sample far apart (decorrelated) so values are ~iid N(0, σ²).
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|i| shade.sample_at(i as f64 * 50.0, &mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!((var - 16.0).abs() < 1.0, "var {var}");
    }

    #[test]
    fn short_lags_are_highly_correlated() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut shade = CorrelatedShadowing::new(4.0, 5.0);
        let mut prev = shade.sample_at(0.0, &mut rng);
        // Successive 10 ms steps should barely move (τ = 5 s).
        let mut max_step = 0f64;
        for i in 1..500 {
            let cur = shade.sample_at(i as f64 * 0.01, &mut rng);
            max_step = max_step.max((cur - prev).abs());
            prev = cur;
        }
        assert!(max_step < 1.5, "max step {max_step} dB at 10 ms lag");
    }

    #[test]
    fn empirical_autocorrelation_decays_with_lag() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut shade = CorrelatedShadowing::new(3.0, 1.0);
        let dt = 0.1;
        let n = 50_000;
        let s: Vec<f64> = (0..n)
            .map(|i| shade.sample_at(i as f64 * dt, &mut rng))
            .collect();
        let var = s.iter().map(|x| x * x).sum::<f64>() / n as f64;
        let corr_at = |lag: usize| {
            let c: f64 = s[..n - lag]
                .iter()
                .zip(&s[lag..])
                .map(|(a, b)| a * b)
                .sum::<f64>()
                / (n - lag) as f64;
            c / var
        };
        // ρ(lag) ≈ exp(−lag·dt/τ): 0.90 at 1 lag, 0.37 at 10 lags.
        assert!((corr_at(1) - 0.905).abs() < 0.05, "rho1 {}", corr_at(1));
        assert!((corr_at(10) - 0.368).abs() < 0.08, "rho10 {}", corr_at(10));
        assert!(corr_at(40) < 0.1, "rho40 {}", corr_at(40));
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(11);
            let mut shade = CorrelatedShadowing::new(4.0, 2.0);
            (0..50)
                .map(|i| shade.sample_at(i as f64 * 0.1, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn rejects_backward_time() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut shade = CorrelatedShadowing::new(1.0, 1.0);
        shade.sample_at(1.0, &mut rng);
        shade.sample_at(0.5, &mut rng);
    }

    #[test]
    fn spatial_field_has_unit_variance() {
        let field = SpatialShadowing::new(2.0, 5);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let n = 4000;
        for i in 0..n {
            let rx = Vec2::new((i % 63) as f64 * 0.37, (i / 63) as f64 * 0.41);
            let v = field.sample(Vec2::new(5.0, 5.0), rx);
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var - 1.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn colocated_transmitters_see_nearly_equal_shadowing() {
        let field = SpatialShadowing::new(2.0, 6);
        // 30 cm apart (the paper's shelf spacing) vs 5 m apart.
        let rx = Vec2::new(1.0, 1.0);
        let a = field.sample(Vec2::new(5.0, 5.0), rx);
        let near = field.sample(Vec2::new(5.3, 5.0), rx);
        let _far = field.sample(Vec2::new(10.0, 0.5), rx);
        assert!((a - near).abs() < 0.6, "near delta {}", (a - near).abs());
        // Not a strict guarantee point-wise, but across many rx the far
        // beacon decorrelates; check correlation statistically.
        let mut c_near = 0.0;
        let mut c_far = 0.0;
        let mut v = 0.0;
        for i in 0..500 {
            let rx = Vec2::new((i % 23) as f64 * 0.31, (i / 23) as f64 * 0.29);
            let s = field.sample(Vec2::new(5.0, 5.0), rx);
            c_near += s * field.sample(Vec2::new(5.3, 5.0), rx);
            c_far += s * field.sample(Vec2::new(10.0, 0.5), rx);
            v += s * s;
        }
        assert!(c_near / v > 0.75, "near corr {}", c_near / v);
        assert!(c_far / v < 0.5, "far corr {}", c_far / v);
    }

    #[test]
    fn spatial_field_is_smooth_and_deterministic() {
        let field = SpatialShadowing::new(2.0, 7);
        let a = field.sample(Vec2::new(3.0, 3.0), Vec2::new(1.0, 1.0));
        let b = field.sample(Vec2::new(3.0, 3.0), Vec2::new(1.05, 1.0));
        assert!(
            (a - b).abs() < 0.4,
            "5 cm step moved field by {}",
            (a - b).abs()
        );
        let again = SpatialShadowing::new(2.0, 7);
        assert_eq!(a, again.sample(Vec2::new(3.0, 3.0), Vec2::new(1.0, 1.0)));
    }

    #[test]
    fn zero_sigma_is_identically_zero() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut shade = CorrelatedShadowing::new(0.0, 1.0);
        for i in 0..20 {
            assert_eq!(shade.sample_at(i as f64, &mut rng), 0.0);
        }
    }
}
