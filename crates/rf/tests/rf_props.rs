//! Property tests for the RF substrate: model monotonicity, classifier
//! consistency, and receiver-chain invariants for arbitrary parameters.

use locble_geom::Vec2;
use locble_rf::{
    classify_path, LinkConfig, LinkSimulator, LogDistanceModel, Material, Obstacle,
    ReceiverProfile, SpatialShadowing,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_material() -> impl Strategy<Value = Material> {
    prop_oneof![
        Just(Material::Glass),
        Just(Material::Wood),
        Just(Material::HumanBody),
        Just(Material::Drywall),
        Just(Material::Concrete),
        Just(Material::CinderBlock),
        Just(Material::Metal),
    ]
}

proptest! {
    /// Mean RSS is strictly decreasing in distance for any model.
    #[test]
    fn pathloss_monotone_in_distance(
        gamma in -80.0..-40.0f64,
        n in 1.2..5.0f64,
        d1 in 0.2..20.0f64,
        d2 in 0.2..20.0f64,
    ) {
        prop_assume!((d1 - d2).abs() > 1e-6);
        let model = LogDistanceModel::new(gamma, n);
        let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(model.rss_at(near) > model.rss_at(far));
    }

    /// Path classification never depends on ray direction and its
    /// blockage is the sum of crossed materials.
    #[test]
    fn classification_direction_invariant(
        tx_x in -5.0..5.0f64, tx_y in -5.0..5.0f64,
        rx_x in -5.0..5.0f64, rx_y in -5.0..5.0f64,
        wall_x in -4.0..4.0f64,
        material in arb_material(),
    ) {
        let tx = Vec2::new(tx_x, tx_y);
        let rx = Vec2::new(rx_x, rx_y);
        let obstacles = [Obstacle::new(
            Vec2::new(wall_x, -6.0),
            Vec2::new(wall_x, 6.0),
            material,
        )];
        let a = classify_path(tx, rx, &obstacles);
        let b = classify_path(rx, tx, &obstacles);
        prop_assert_eq!(a.env, b.env);
        prop_assert!((a.blockage_db - b.blockage_db).abs() < 1e-12);
        prop_assert_eq!(a.crossings, b.crossings);
        // Blockage equals the material's attenuation iff crossed.
        if a.crossings == 1 {
            prop_assert!((a.blockage_db - material.attenuation_db()).abs() < 1e-12);
        } else {
            prop_assert_eq!(a.blockage_db, 0.0);
        }
    }

    /// The receiver chain reports on its quantization grid and respects
    /// the sensitivity floor, for arbitrary profiles.
    #[test]
    fn receiver_chain_invariants(
        offset in -6.0..6.0f64,
        power in -120.0..-30.0f64,
        seed in 0u64..1000,
    ) {
        let profile = ReceiverProfile::smartphone(offset);
        let mut rng = StdRng::seed_from_u64(seed);
        match profile.measure(power, &mut rng) {
            None => prop_assert!(power < profile.sensitivity_dbm),
            Some(m) => {
                prop_assert!(power >= profile.sensitivity_dbm);
                prop_assert!((m.rssi_dbm - m.rssi_dbm.round()).abs() < 1e-9);
                prop_assert_eq!(m.true_power_dbm, power);
            }
        }
    }

    /// The spatial shadowing field is deterministic in (seed, geometry)
    /// and bounded by its component count.
    #[test]
    fn spatial_field_deterministic_and_bounded(
        corr in 0.5..4.0f64,
        seed in 0u64..1000,
        tx_x in -10.0..10.0f64, tx_y in -10.0..10.0f64,
        rx_x in -10.0..10.0f64, rx_y in -10.0..10.0f64,
    ) {
        let a = SpatialShadowing::new(corr, seed);
        let b = SpatialShadowing::new(corr, seed);
        let tx = Vec2::new(tx_x, tx_y);
        let rx = Vec2::new(rx_x, rx_y);
        prop_assert_eq!(a.sample(tx, rx), b.sample(tx, rx));
        // 12 components of amplitude sqrt(2/12): |field| ≤ 12·0.408.
        prop_assert!(a.sample(tx, rx).abs() <= 12.0 * (2.0f64 / 12.0).sqrt() + 1e-9);
    }

    /// Whole links are deterministic per seed for any geometry.
    #[test]
    fn links_deterministic(
        seed in 0u64..500,
        d in 0.5..12.0f64,
    ) {
        let run = || {
            let mut sim = LinkSimulator::new(
                LinkConfig::default(),
                ReceiverProfile::smartphone(0.0),
                seed,
            );
            (0..20)
                .map(|i| {
                    sim.measure(
                        i as f64 * 0.1,
                        Vec2::new(d, 0.0),
                        Vec2::ZERO,
                        &[],
                        37 + (i % 3) as u8,
                    )
                    .map(|m| m.rssi_dbm)
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
