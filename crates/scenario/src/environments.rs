//! The nine evaluation environments of paper Table 1.
//!
//! | # | Name         | Scale (m²) | Paper accuracy (m) |
//! |---|--------------|-----------|--------------------|
//! | 1 | Meeting room | 5×5       | 0.8 ± 0.2          |
//! | 2 | Hallway      | 8×3       | 1.4 ± 0.3          |
//! | 3 | Bedroom      | 7×7       | 1.4 ± 0.4          |
//! | 4 | Living room  | 7×7       | 1.6 ± 0.3          |
//! | 5 | Restaurant   | 9×10      | 1.6 ± 0.4          |
//! | 6 | Store        | 9×10      | 1.8 ± 0.6          |
//! | 7 | Labs         | 8×10      | 2.3 ± 0.5          |
//! | 8 | Hall         | 9×11      | 2.1 ± 0.5          |
//! | 9 | Parking lot  | 16×15     | 1.2 ± 0.5          |
//!
//! Obstacle layouts are reconstructed from the paper's descriptions
//! ("direct paths are blocked by furniture, store/shop racks, and human
//! bodies"; the lab has "server racks", the hall "a construction in
//! between", §7.7 "a concrete wall block in the transmission path").
//! Coordinates put the origin at the room's south-west corner.

use locble_geom::Vec2;
use locble_rf::{LinkConfig, Material, Obstacle};

/// One evaluation environment.
#[derive(Debug, Clone)]
pub struct Environment {
    /// Table-1 index (1-based).
    pub index: usize,
    /// Display name as in Table 1.
    pub name: &'static str,
    /// Width (x extent), metres.
    pub width_m: f64,
    /// Depth (y extent), metres.
    pub depth_m: f64,
    /// Outdoor flag (affects the channel defaults).
    pub outdoor: bool,
    /// Obstacles in room coordinates.
    pub obstacles: Vec<Obstacle>,
    /// Link parameters for this environment.
    pub link: LinkConfig,
    /// Paper-reported accuracy: (mean, 75 %-CI half-width), metres.
    pub paper_accuracy_m: (f64, f64),
}

impl Environment {
    /// `true` when `p` lies within the environment bounds.
    pub fn contains(&self, p: Vec2) -> bool {
        (0.0..=self.width_m).contains(&p.x) && (0.0..=self.depth_m).contains(&p.y)
    }

    /// Center of the environment.
    pub fn center(&self) -> Vec2 {
        Vec2::new(self.width_m / 2.0, self.depth_m / 2.0)
    }
}

fn wall(ax: f64, ay: f64, bx: f64, by: f64, m: Material) -> Obstacle {
    Obstacle::new(Vec2::new(ax, ay), Vec2::new(bx, by), m)
}

fn indoor_link() -> LinkConfig {
    LinkConfig::default()
}

fn outdoor_link() -> LinkConfig {
    LinkConfig {
        // Open space: nearly free-space exponent, calmer shadowing, a
        // strong LOS component.
        exponent_scale: 0.95,
        shadowing_tau_s: 8.0,
        los_k_factor: 10.0,
        channel_sigma_db: 0.8,
        ..LinkConfig::default()
    }
}

/// Builds all nine environments in Table-1 order.
pub fn all_environments() -> Vec<Environment> {
    vec![
        Environment {
            index: 1,
            name: "Meeting room",
            width_m: 5.0,
            depth_m: 5.0,
            outdoor: false,
            // One wooden conference table; otherwise clear LOS.
            obstacles: vec![wall(2.0, 2.3, 3.0, 2.3, Material::Wood)],
            link: indoor_link(),
            paper_accuracy_m: (0.8, 0.2),
        },
        Environment {
            index: 2,
            name: "Hallway",
            width_m: 8.0,
            depth_m: 3.0,
            outdoor: false,
            // A wooden door edge and a person in the corridor.
            obstacles: vec![
                wall(4.0, 0.0, 4.0, 0.8, Material::Wood),
                wall(6.0, 1.4, 6.0, 1.9, Material::HumanBody),
            ],
            link: indoor_link(),
            paper_accuracy_m: (1.4, 0.3),
        },
        Environment {
            index: 3,
            name: "Bedroom",
            width_m: 7.0,
            depth_m: 7.0,
            outdoor: false,
            obstacles: vec![
                wall(1.0, 4.0, 3.0, 4.0, Material::Wood),    // bed frame
                wall(5.5, 1.0, 5.5, 3.0, Material::Wood),    // wardrobe
                wall(3.5, 5.8, 5.0, 5.8, Material::Drywall), // partition
            ],
            link: indoor_link(),
            paper_accuracy_m: (1.4, 0.4),
        },
        Environment {
            index: 4,
            name: "Living room",
            width_m: 7.0,
            depth_m: 7.0,
            outdoor: false,
            obstacles: vec![
                wall(2.0, 3.0, 4.0, 3.0, Material::Wood),  // sofa
                wall(3.0, 4.5, 4.0, 4.5, Material::Glass), // glass table
                wall(5.8, 2.0, 5.8, 4.5, Material::Wood),  // media shelf
            ],
            link: indoor_link(),
            paper_accuracy_m: (1.6, 0.3),
        },
        Environment {
            index: 5,
            name: "Restaurant",
            width_m: 9.0,
            depth_m: 10.0,
            outdoor: false,
            obstacles: vec![
                wall(2.0, 2.5, 3.2, 2.5, Material::Wood),
                wall(5.5, 2.5, 6.7, 2.5, Material::Wood),
                wall(2.0, 6.0, 3.2, 6.0, Material::Wood),
                wall(5.5, 6.0, 6.7, 6.0, Material::Wood),
                wall(4.3, 4.2, 4.3, 4.9, Material::HumanBody),
                wall(7.5, 7.5, 7.5, 8.1, Material::HumanBody),
            ],
            link: indoor_link(),
            paper_accuracy_m: (1.6, 0.4),
        },
        Environment {
            index: 6,
            name: "Store",
            width_m: 9.0,
            depth_m: 10.0,
            outdoor: false,
            // Two long metal shelf racks — highly reflective blockers.
            obstacles: vec![
                wall(2.0, 3.0, 7.0, 3.0, Material::Metal),
                wall(2.0, 6.5, 7.0, 6.5, Material::Metal),
                wall(4.5, 8.5, 4.5, 9.2, Material::HumanBody),
            ],
            link: indoor_link(),
            paper_accuracy_m: (1.8, 0.6),
        },
        Environment {
            index: 7,
            name: "Labs",
            width_m: 8.0,
            depth_m: 10.0,
            outdoor: false,
            // §7.7: "a lab environment with a concrete wall block in the
            // transmission path" plus server racks.
            obstacles: vec![
                wall(4.0, 2.0, 4.0, 7.0, Material::Concrete),
                wall(1.5, 4.5, 3.0, 4.5, Material::Metal),
                wall(5.5, 6.0, 7.0, 6.0, Material::Metal),
            ],
            link: indoor_link(),
            paper_accuracy_m: (2.3, 0.5),
        },
        Environment {
            index: 8,
            name: "Hall",
            width_m: 9.0,
            depth_m: 11.0,
            outdoor: false,
            // §7.7: "a hall environment with a construction in between".
            obstacles: vec![
                wall(3.5, 4.0, 5.5, 4.0, Material::CinderBlock),
                wall(5.5, 4.0, 5.5, 6.5, Material::CinderBlock),
                wall(2.0, 8.0, 2.8, 8.0, Material::Wood),
            ],
            link: indoor_link(),
            paper_accuracy_m: (2.1, 0.5),
        },
        Environment {
            index: 9,
            name: "Parking lot",
            width_m: 16.0,
            depth_m: 15.0,
            outdoor: true,
            // Open space; two parked cars in the north-west corner, well
            // off the measurement diagonal.
            obstacles: vec![
                wall(0.7, 12.0, 2.7, 12.0, Material::Metal),
                wall(0.7, 13.5, 2.7, 13.5, Material::Metal),
            ],
            link: outdoor_link(),
            paper_accuracy_m: (1.2, 0.5),
        },
    ]
}

/// Fetches one environment by its Table-1 index (1–9).
pub fn environment_by_index(index: usize) -> Option<Environment> {
    all_environments().into_iter().find(|e| e.index == index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use locble_geom::EnvClass;
    use locble_rf::classify_path;

    #[test]
    fn nine_environments_in_table_order() {
        let envs = all_environments();
        assert_eq!(envs.len(), 9);
        for (k, e) in envs.iter().enumerate() {
            assert_eq!(e.index, k + 1);
        }
        assert_eq!(envs[0].name, "Meeting room");
        assert_eq!(envs[8].name, "Parking lot");
        assert!(envs[8].outdoor);
        assert!(envs[..8].iter().all(|e| !e.outdoor));
    }

    #[test]
    fn scales_match_table_1() {
        let envs = all_environments();
        let dims: Vec<(f64, f64)> = envs.iter().map(|e| (e.width_m, e.depth_m)).collect();
        assert_eq!(
            dims,
            vec![
                (5.0, 5.0),
                (8.0, 3.0),
                (7.0, 7.0),
                (7.0, 7.0),
                (9.0, 10.0),
                (9.0, 10.0),
                (8.0, 10.0),
                (9.0, 11.0),
                (16.0, 15.0)
            ]
        );
    }

    #[test]
    fn paper_accuracies_recorded() {
        let envs = all_environments();
        assert_eq!(envs[0].paper_accuracy_m, (0.8, 0.2));
        assert_eq!(envs[6].paper_accuracy_m, (2.3, 0.5));
        assert_eq!(envs[8].paper_accuracy_m, (1.2, 0.5));
    }

    #[test]
    fn obstacles_live_inside_bounds() {
        for e in all_environments() {
            for ob in &e.obstacles {
                assert!(e.contains(ob.segment.a), "{}: {:?}", e.name, ob);
                assert!(e.contains(ob.segment.b), "{}: {:?}", e.name, ob);
            }
        }
    }

    #[test]
    fn lab_concrete_wall_blocks_cross_room_path() {
        let lab = environment_by_index(7).unwrap();
        let c = classify_path(Vec2::new(1.0, 5.0), Vec2::new(7.0, 5.0), &lab.obstacles);
        assert_eq!(c.env, EnvClass::NonLos);
    }

    #[test]
    fn meeting_room_is_mostly_los() {
        let room = environment_by_index(1).unwrap();
        let c = classify_path(Vec2::new(0.5, 0.5), Vec2::new(4.5, 1.0), &room.obstacles);
        assert_eq!(c.env, EnvClass::Los);
    }

    #[test]
    fn index_lookup() {
        assert!(environment_by_index(0).is_none());
        assert!(environment_by_index(10).is_none());
        assert_eq!(environment_by_index(6).unwrap().name, "Store");
    }
}
