//! Experiment substrate: the paper's nine evaluation environments and the
//! end-to-end measurement simulation.
//!
//! This crate wires every lower layer together the way the paper's
//! experiments did physically:
//!
//! * [`environments`] — the 9 environments of Table 1 (meeting room …
//!   parking lot) with their published dimensions, plausible obstacle
//!   layouts, and the paper's reported accuracies for comparison;
//! * [`world`] — one *measurement session*: the observer performs a
//!   scripted walk (IMU simulated by `locble-sensors`), every beacon
//!   advertises per spec (`locble-ble`), the scanner captures what the RF
//!   channel (`locble-rf`) delivers, and the session hands back exactly
//!   what a phone app would have: IMU samples and per-beacon timestamped
//!   RSSI, plus ground truth for scoring;
//! * [`paths`] — walk planning inside environment bounds;
//! * [`trainer`] — synthesizes labeled LOS/p-LOS/NLOS windows from the
//!   channel simulator and trains the EnvAware classifier (the paper's
//!   offline training-data collection);
//! * [`runner`] — glue from a [`world::Session`] to LocBLE estimates and
//!   localization errors, including the local↔world frame bookkeeping;
//! * [`trace`] — a plain-text trace format so sessions can be saved,
//!   diffed, and replayed.

#![warn(missing_docs)]

pub mod environments;
pub mod paths;
pub mod runner;
pub mod trace;
pub mod trainer;
pub mod world;

pub use environments::{all_environments, environment_by_index, Environment};
pub use paths::plan_l_walk;
pub use runner::{
    localization_error, localize, localize_fleet, localize_streaming, FleetReport, PipelineReport,
    RunOutcome,
};
pub use trace::{parse_session_trace, session_trace_to_string};
pub use trainer::{train_default_envaware, training_windows};
pub use world::{fleet_beacons, fleet_session, fleet_traffic, BeaconSpec, Session, SessionConfig};
