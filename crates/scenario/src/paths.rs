//! Walk planning inside environment bounds.
//!
//! The paper's measurement movement is the L-shape of Fig. 7: leg 1, a
//! 90° turn, leg 2 (§7.6.2: 3.5–5 m total, "around 4–6 steps … usually
//! taking about 3–5 s"). [`plan_l_walk`] picks a starting heading and
//! turn direction so the whole L stays inside the room with a safety
//! margin, preferring headings that roughly face the environment center
//! (a user naturally walks into the open space, not into a wall).

use crate::environments::Environment;
use locble_geom::{Pose2, Vec2};
use locble_sensors::{WalkLeg, WalkPlan};
use std::f64::consts::FRAC_PI_2;

/// Plans an L-shaped walk of `leg1_m` + `leg2_m` starting at `start`,
/// staying inside `env` with `margin` metres of clearance. Returns `None`
/// when no orientation fits (room too small or start too close to a
/// wall).
pub fn plan_l_walk(
    env: &Environment,
    start: Vec2,
    leg1_m: f64,
    leg2_m: f64,
    margin: f64,
) -> Option<WalkPlan> {
    assert!(leg1_m > 0.0 && leg2_m > 0.0, "leg lengths must be positive");
    if !env.contains(start) {
        return None;
    }
    let inside = |p: Vec2| {
        (margin..=env.width_m - margin).contains(&p.x)
            && (margin..=env.depth_m - margin).contains(&p.y)
    };
    let to_center = (env.center() - start).angle();

    // Candidate headings, nearest-to-center first.
    let mut best: Option<(f64, WalkPlan)> = None;
    for k in 0..16 {
        let heading = to_center + k as f64 * std::f64::consts::PI / 8.0;
        for turn in [FRAC_PI_2, -FRAC_PI_2] {
            let corner = start + Vec2::from_angle(heading) * leg1_m;
            let end = corner + Vec2::from_angle(heading + turn) * leg2_m;
            let mid1 = start.lerp(corner, 0.5);
            let mid2 = corner.lerp(end, 0.5);
            if [corner, end, mid1, mid2].into_iter().all(inside) {
                let badness = locble_geom::signed_angle_diff(to_center, heading).abs();
                if best.as_ref().is_none_or(|(b, _)| badness < *b) {
                    let plan = WalkPlan {
                        start: Pose2::new(start, heading),
                        legs: vec![
                            WalkLeg { distance_m: leg1_m },
                            WalkLeg { distance_m: leg2_m },
                        ],
                        turn_angles: vec![turn],
                    };
                    best = Some((badness, plan));
                }
            }
        }
    }
    best.map(|(_, plan)| plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environments::all_environments;

    #[test]
    fn plans_fit_every_environment() {
        for env in all_environments() {
            let start = Vec2::new(env.width_m * 0.25, env.depth_m * 0.25);
            let plan = plan_l_walk(&env, start, 2.2, 1.8, 0.3)
                .unwrap_or_else(|| panic!("no plan for {}", env.name));
            // Verify the corners stay inside.
            let corner = start + Vec2::from_angle(plan.start.heading) * plan.legs[0].distance_m;
            let end = corner
                + Vec2::from_angle(plan.start.heading + plan.turn_angles[0])
                    * plan.legs[1].distance_m;
            assert!(env.contains(corner), "{}: corner {corner:?}", env.name);
            assert!(env.contains(end), "{}: end {end:?}", env.name);
        }
    }

    #[test]
    fn prefers_heading_toward_open_space() {
        let env = all_environments().remove(0); // 5×5 meeting room
        let start = Vec2::new(0.5, 0.5);
        let plan = plan_l_walk(&env, start, 3.0, 2.0, 0.3).unwrap();
        // Walking from the SW corner, the heading must aim into the room.
        let h = plan.start.heading;
        assert!(h.cos() > 0.0 && h.sin() > 0.0, "heading {h}");
    }

    #[test]
    fn oversized_l_does_not_fit() {
        let env = all_environments().remove(0); // 5×5
        let start = Vec2::new(2.5, 2.5);
        assert!(plan_l_walk(&env, start, 10.0, 10.0, 0.3).is_none());
    }

    #[test]
    fn start_outside_is_rejected() {
        let env = all_environments().remove(0);
        assert!(plan_l_walk(&env, Vec2::new(-1.0, 2.0), 2.0, 2.0, 0.3).is_none());
    }

    #[test]
    fn plan_validates() {
        let env = all_environments().remove(4);
        let plan = plan_l_walk(&env, env.center(), 2.5, 2.0, 0.3).unwrap();
        assert!(plan.validate().is_ok());
        assert!((plan.total_distance() - 4.5).abs() < 1e-12);
    }
}
