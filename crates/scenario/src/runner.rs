//! From a simulated session to LocBLE estimates and errors.
//!
//! The runner performs exactly what the app does on-device — motion
//! tracking over the IMU, then Algorithm-1 estimation over the fused
//! data — and then scores the result against the simulation's ground
//! truth, transformed into the observer's local estimation frame (the
//! paper's error metric: "the difference in distance between the
//! target's estimated location and the ground truth", §7.2).

use crate::world::Session;
use locble_ble::BeaconId;
use locble_core::{Estimator, LocationEstimate};
use locble_geom::Vec2;
use locble_motion::{track, MotionTrack, TrackerConfig};

/// The outcome of localizing one beacon in one session.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// The estimate, in the observer's local frame.
    pub estimate: LocationEstimate,
    /// Ground-truth beacon position in the same frame.
    pub truth_local: Vec2,
    /// Euclidean localization error, metres (mirror-aware: when the
    /// estimate carries an unresolved mirror, the better candidate is
    /// scored, as a navigating user would discover the right side on the
    /// final turn — paper §9.2).
    pub error_m: f64,
}

/// Tracks the observer's motion from the session's IMU.
pub fn track_observer(session: &Session) -> MotionTrack {
    track(&session.walk.imu, &TrackerConfig::default())
}

/// Localizes one beacon. Returns `None` when the beacon was never heard
/// or data is insufficient.
pub fn localize(session: &Session, beacon: BeaconId, estimator: &Estimator) -> Option<RunOutcome> {
    let observer = track_observer(session);
    localize_with_track(session, beacon, estimator, &observer)
}

/// Like [`localize`], reusing an already-computed motion track (the
/// multi-beacon experiments localize many beacons from one walk).
pub fn localize_with_track(
    session: &Session,
    beacon: BeaconId,
    estimator: &Estimator,
    observer: &MotionTrack,
) -> Option<RunOutcome> {
    let rss = session.rss_of(beacon)?;
    let estimate = estimator.estimate_stationary(rss, observer)?;
    let truth_local = session.truth_local(beacon)?;
    let mut error_m = estimate.position.distance(truth_local);
    if let Some(mirror) = estimate.mirror {
        error_m = error_m.min(mirror.distance(truth_local));
    }
    Some(RunOutcome {
        estimate,
        truth_local,
        error_m,
    })
}

/// Localizes a *moving* target from a [`crate::world::MovingSession`]:
/// both devices'
/// IMU traces are motion-tracked, the target's local-frame displacement
/// is rotated into the observer's frame through the magnetometer-derived
/// initial headings (each device knows its own absolute heading), and
/// Algorithm 1 runs in moving mode. Error is scored at the target's
/// initial location, as in paper §7.2.
pub fn localize_moving(
    session: &crate::world::MovingSession,
    estimator: &Estimator,
) -> Option<RunOutcome> {
    use locble_geom::Trajectory;

    let observer = track(&session.observer_walk.imu, &TrackerConfig::default());
    let target = track(&session.target_walk.imu, &TrackerConfig::default());

    // Target displacement → world heading (its own magnetometer) →
    // observer's local frame (the observer's magnetometer).
    let tgt_h = session.target_start.heading;
    let obs_h = session.observer_start.heading;
    let mut converted = Trajectory::new();
    for p in target.trajectory.points() {
        let origin = target.trajectory.points()[0].pos;
        let world_disp = (p.pos - origin).rotated(tgt_h);
        converted.push(p.t, world_disp.rotated(-obs_h));
    }

    let estimate = estimator.estimate_moving(&session.rss, &observer, &converted)?;
    let truth_local = session.truth_local_initial();
    let mut error_m = estimate.position.distance(truth_local);
    if let Some(mirror) = estimate.mirror {
        error_m = error_m.min(mirror.distance(truth_local));
    }
    Some(RunOutcome {
        estimate,
        truth_local,
        error_m,
    })
}

/// Convenience: just the localization error.
pub fn localization_error(
    session: &Session,
    beacon: BeaconId,
    estimator: &Estimator,
) -> Option<f64> {
    localize(session, beacon, estimator).map(|o| o.error_m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environments::environment_by_index;
    use crate::paths::plan_l_walk;
    use crate::trainer::train_default_envaware;
    use crate::world::{simulate_session, BeaconSpec, SessionConfig};
    use locble_ble::{BeaconHardware, BeaconKind};
    use locble_core::EstimatorConfig;

    fn run_once(env_idx: usize, target: Vec2, start: Vec2, seed: u64) -> Option<RunOutcome> {
        let env = environment_by_index(env_idx).unwrap();
        let beacons = vec![BeaconSpec {
            id: BeaconId(1),
            position: target,
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        }];
        let plan = plan_l_walk(&env, start, 2.5, 2.0, 0.3)?;
        let session = simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(seed));
        let estimator = Estimator::new(EstimatorConfig::default());
        localize(&session, BeaconId(1), &estimator)
    }

    #[test]
    fn meeting_room_accuracy_in_paper_band() {
        // Paper Table 1: 0.8 ± 0.2 m in the meeting room. Average a few
        // seeds; allow generous slack for the simulated channel.
        let mut errs = Vec::new();
        for seed in 0..6 {
            if let Some(o) = run_once(1, Vec2::new(4.0, 4.0), Vec2::new(1.0, 1.0), seed) {
                errs.push(o.error_m);
            }
        }
        assert!(errs.len() >= 4, "only {} runs succeeded", errs.len());
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean < 2.0, "meeting-room mean error {mean:.2} m");
    }

    #[test]
    fn unheard_beacon_returns_none() {
        let env = environment_by_index(1).unwrap();
        let beacons = vec![BeaconSpec {
            id: BeaconId(1),
            position: Vec2::new(4.0, 4.0),
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        }];
        let plan = plan_l_walk(&env, Vec2::new(1.0, 1.0), 2.5, 2.0, 0.3).unwrap();
        let session = simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(3));
        let estimator = Estimator::new(EstimatorConfig::default());
        assert!(localize(&session, BeaconId(99), &estimator).is_none());
    }

    #[test]
    fn envaware_estimator_runs_end_to_end() {
        // The lab is the paper's hardest environment (§7.7: single-beacon
        // accuracy "averages only 3m" behind the concrete wall), so bound
        // the *mean* across seeds rather than any single run.
        let env = environment_by_index(7).unwrap(); // lab, NLOS-heavy
        let estimator =
            Estimator::with_envaware(EstimatorConfig::default(), train_default_envaware(21));
        let beacons = vec![BeaconSpec {
            id: BeaconId(1),
            position: Vec2::new(6.5, 5.0),
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        }];
        let mut errs = Vec::new();
        let mut env_seen = false;
        for seed in 0..6u64 {
            let plan = plan_l_walk(&env, Vec2::new(1.5, 2.0), 2.5, 2.0, 0.4).unwrap();
            let session = simulate_session(
                &env,
                &beacons,
                &plan,
                &SessionConfig::paper_default(9 + seed),
            );
            if let Some(outcome) = localize(&session, BeaconId(1), &estimator) {
                env_seen |= outcome.estimate.env.is_some();
                errs.push(outcome.error_m);
            }
        }
        assert!(env_seen, "EnvAware regime missing");
        assert!(errs.len() >= 4, "only {} runs succeeded", errs.len());
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean < 5.0, "lab mean error {mean:.2} m");
    }

    #[test]
    fn moving_target_localizes_within_paper_band() {
        // Paper §7.4.2: "accuracy of less than 2.5m for more than 50% of
        // data" in the outdoor test.
        use crate::world::simulate_moving_session;
        let env = environment_by_index(9).unwrap();
        let mut errs = Vec::new();
        for seed in 0..8u64 {
            let obs_plan = plan_l_walk(&env, Vec2::new(4.0, 4.0), 4.0, 3.0, 0.5).unwrap();
            let tgt_plan = plan_l_walk(&env, Vec2::new(9.0, 8.0), 2.0, 2.0, 0.5).unwrap();
            let ms = simulate_moving_session(
                &env,
                &obs_plan,
                &tgt_plan,
                BeaconHardware::ideal(BeaconKind::IosDevice),
                &SessionConfig::paper_default(1000 + seed),
            );
            let estimator = Estimator::new(EstimatorConfig::default());
            if let Some(o) = super::localize_moving(&ms, &estimator) {
                errs.push(o.error_m);
            }
        }
        assert!(errs.len() >= 6, "only {} runs succeeded", errs.len());
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = errs[errs.len() / 2];
        assert!(median < 3.5, "moving-target median error {median:.2} m");
    }

    #[test]
    fn outcome_error_is_consistent() {
        let o = run_once(9, Vec2::new(9.0, 8.0), Vec2::new(4.0, 4.0), 17).unwrap();
        let direct = o.estimate.position.distance(o.truth_local);
        assert!(o.error_m <= direct + 1e-12);
    }
}
