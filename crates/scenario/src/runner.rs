//! From a simulated session to LocBLE estimates and errors.
//!
//! The runner performs exactly what the app does on-device — motion
//! tracking over the IMU, then Algorithm-1 estimation over the fused
//! data — and then scores the result against the simulation's ground
//! truth, transformed into the observer's local estimation frame (the
//! paper's error metric: "the difference in distance between the
//! target's estimated location and the ground truth", §7.2).

use crate::world::Session;
use locble_ble::BeaconId;
use locble_core::{Estimator, LocationEstimate, RssBatch, StreamingEstimator};
use locble_engine::{Advert, Engine, EngineConfig, EngineStats};
use locble_geom::Vec2;
use locble_motion::{track, track_traced, MotionTrack, TrackerConfig};
use locble_obs::{Event, MetricsSnapshot, Obs};
use serde::Serialize;

/// The outcome of localizing one beacon in one session.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// The estimate, in the observer's local frame.
    pub estimate: LocationEstimate,
    /// Ground-truth beacon position in the same frame.
    pub truth_local: Vec2,
    /// Euclidean localization error, metres (mirror-aware: when the
    /// estimate carries an unresolved mirror, the better candidate is
    /// scored, as a navigating user would discover the right side on the
    /// final turn — paper §9.2).
    pub error_m: f64,
}

/// Tracks the observer's motion from the session's IMU.
pub fn track_observer(session: &Session) -> MotionTrack {
    track(&session.walk.imu, &TrackerConfig::default())
}

/// Localizes one beacon. Returns `None` when the beacon was never heard
/// or data is insufficient.
pub fn localize(session: &Session, beacon: BeaconId, estimator: &Estimator) -> Option<RunOutcome> {
    let observer = track_observer(session);
    localize_with_track(session, beacon, estimator, &observer)
}

/// Like [`localize`], reusing an already-computed motion track (the
/// multi-beacon experiments localize many beacons from one walk).
pub fn localize_with_track(
    session: &Session,
    beacon: BeaconId,
    estimator: &Estimator,
    observer: &MotionTrack,
) -> Option<RunOutcome> {
    let rss = session.rss_of(beacon)?;
    let estimate = estimator.estimate_stationary(rss, observer)?;
    let truth_local = session.truth_local(beacon)?;
    let mut error_m = estimate.position.distance(truth_local);
    if let Some(mirror) = estimate.mirror {
        error_m = error_m.min(mirror.distance(truth_local));
    }
    Some(RunOutcome {
        estimate,
        truth_local,
        error_m,
    })
}

/// Localizes a *moving* target from a [`crate::world::MovingSession`]:
/// both devices'
/// IMU traces are motion-tracked, the target's local-frame displacement
/// is rotated into the observer's frame through the magnetometer-derived
/// initial headings (each device knows its own absolute heading), and
/// Algorithm 1 runs in moving mode. Error is scored at the target's
/// initial location, as in paper §7.2.
pub fn localize_moving(
    session: &crate::world::MovingSession,
    estimator: &Estimator,
) -> Option<RunOutcome> {
    use locble_geom::Trajectory;

    let observer = track(&session.observer_walk.imu, &TrackerConfig::default());
    let target = track(&session.target_walk.imu, &TrackerConfig::default());

    // Target displacement → world heading (its own magnetometer) →
    // observer's local frame (the observer's magnetometer).
    let tgt_h = session.target_start.heading;
    let obs_h = session.observer_start.heading;
    let mut converted = Trajectory::new();
    for p in target.trajectory.points() {
        let origin = target.trajectory.points()[0].pos;
        let world_disp = (p.pos - origin).rotated(tgt_h);
        converted.push(p.t, world_disp.rotated(-obs_h));
    }

    let estimate = estimator.estimate_moving(&session.rss, &observer, &converted)?;
    let truth_local = session.truth_local_initial();
    let mut error_m = estimate.position.distance(truth_local);
    if let Some(mirror) = estimate.mirror {
        error_m = error_m.min(mirror.distance(truth_local));
    }
    Some(RunOutcome {
        estimate,
        truth_local,
        error_m,
    })
}

/// Duration of one streaming RSS batch, seconds (paper §5.3: "we
/// collect a new data batch every 2–3 seconds").
const STREAM_BATCH_S: f64 = 2.2;

/// Everything one instrumented pipeline run produced, in one
/// serializable bundle: the retained event stream, the metrics
/// snapshot, and the run's headline numbers. Produced by
/// [`localize_streaming`].
#[derive(Debug, Clone, Serialize)]
pub struct PipelineReport {
    /// Events retained by the recorder, oldest first.
    pub events: Vec<Event>,
    /// Events the recorder discarded (ring overflow).
    pub dropped_events: u64,
    /// Counters, gauges, and histograms at the end of the run.
    pub metrics: MetricsSnapshot,
    /// Batches fed to the streaming estimator.
    pub batches: usize,
    /// Regression restarts triggered by confirmed environment changes.
    pub restarts: usize,
    /// Final localization error, metres (`None` when no estimate).
    pub error_m: Option<f64>,
}

impl PipelineReport {
    /// The whole report as one JSON object.
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// The event stream as JSON Lines (one event per line), the format
    /// [`locble_obs::events_from_jsonl`] parses back.
    pub fn events_jsonl(&self) -> String {
        locble_obs::events_to_jsonl(&self.events)
    }
}

/// Localizes one beacon the way the app runs on-device — motion
/// tracking, then batch-by-batch Algorithm 1 through
/// [`StreamingEstimator`] — with the whole pipeline instrumented
/// through `obs`. Returns the final outcome (`None` when the beacon was
/// never heard or no batch yielded an estimate) plus the diagnostics
/// bundle, which is produced regardless so failed runs can be audited.
pub fn localize_streaming(
    session: &Session,
    beacon: BeaconId,
    estimator: &Estimator,
    obs: &Obs,
) -> (Option<RunOutcome>, PipelineReport) {
    let observer = track_traced(&session.walk.imu, &TrackerConfig::default(), obs);
    let mut streaming = StreamingEstimator::new(estimator.clone().with_obs(obs.clone()));
    let mut batches = 0usize;
    if let Some(rss) = session.rss_of(beacon) {
        let mut start = 0;
        while start < rss.len() {
            let t0 = rss.t[start];
            let mut end = start;
            while end < rss.len() && rss.t[end] < t0 + STREAM_BATCH_S {
                end += 1;
            }
            // try_new, not new: captured series are sorted and finite by
            // construction, but a malformed trace (driver bug, corrupted
            // import) must surface as a skipped batch, not a panic.
            match RssBatch::try_new(rss.t[start..end].to_vec(), rss.v[start..end].to_vec()) {
                Ok(batch) => {
                    streaming.push_batch(&batch, &observer);
                    batches += 1;
                }
                Err(_) => obs.counter_add("stream.batches_rejected", 1),
            }
            start = end;
        }
    }
    let outcome = streaming.current().copied().and_then(|estimate| {
        let truth_local = session.truth_local(beacon)?;
        let mut error_m = estimate.position.distance(truth_local);
        if let Some(mirror) = estimate.mirror {
            error_m = error_m.min(mirror.distance(truth_local));
        }
        Some(RunOutcome {
            estimate,
            truth_local,
            error_m,
        })
    });
    let report = PipelineReport {
        events: obs.events(),
        dropped_events: obs.dropped_events(),
        metrics: obs.metrics(),
        batches,
        restarts: streaming.restarts(),
        error_m: outcome.as_ref().map(|o| o.error_m),
    };
    (outcome, report)
}

/// The outcome of tracking a whole beacon fleet through the concurrent
/// engine: per-beacon results plus the engine's own accounting.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-beacon outcomes, for every beacon the engine produced an
    /// estimate for (ascending id order via the map).
    pub outcomes: std::collections::BTreeMap<BeaconId, RunOutcome>,
    /// Beacons the scanner heard at all.
    pub heard: usize,
    /// Engine statistics at the end of the run.
    pub stats: EngineStats,
}

impl FleetReport {
    /// Mean localization error over all localized beacons.
    pub fn mean_error_m(&self) -> Option<f64> {
        if self.outcomes.is_empty() {
            return None;
        }
        Some(self.outcomes.values().map(|o| o.error_m).sum::<f64>() / self.outcomes.len() as f64)
    }
}

/// Localizes every beacon a session heard by streaming the session's
/// interleaved capture through the concurrent tracking [`Engine`] — the
/// fleet-scale analogue of [`localize_streaming`]. The engine's worker
/// pool runs with whatever `config.threads` says; results are
/// bit-identical across thread counts (see `locble-engine`'s
/// differential-determinism suite).
pub fn localize_fleet(
    session: &Session,
    estimator: &Estimator,
    config: EngineConfig,
    obs: &Obs,
) -> FleetReport {
    let observer = track_observer(session);
    let mut engine = Engine::new(config, estimator.clone(), obs.clone());
    engine.set_motion(observer);
    let adverts: Vec<Advert> = session
        .interleaved_rss()
        .into_iter()
        .map(Advert::from)
        .collect();
    engine.ingest_all(&adverts);
    engine.finish();

    let mut outcomes = std::collections::BTreeMap::new();
    for (beacon, estimate) in engine.snapshot() {
        let Some(truth_local) = session.truth_local(beacon) else {
            continue;
        };
        let mut error_m = estimate.position.distance(truth_local);
        if let Some(mirror) = estimate.mirror {
            error_m = error_m.min(mirror.distance(truth_local));
        }
        outcomes.insert(
            beacon,
            RunOutcome {
                estimate,
                truth_local,
                error_m,
            },
        );
    }
    FleetReport {
        outcomes,
        heard: session.rss.len(),
        stats: engine.stats(),
    }
}

/// Convenience: just the localization error.
pub fn localization_error(
    session: &Session,
    beacon: BeaconId,
    estimator: &Estimator,
) -> Option<f64> {
    localize(session, beacon, estimator).map(|o| o.error_m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environments::environment_by_index;
    use crate::paths::plan_l_walk;
    use crate::trainer::train_default_envaware;
    use crate::world::{simulate_session, BeaconSpec, SessionConfig};
    use locble_ble::{BeaconHardware, BeaconKind};
    use locble_core::EstimatorConfig;

    fn run_once(env_idx: usize, target: Vec2, start: Vec2, seed: u64) -> Option<RunOutcome> {
        let env = environment_by_index(env_idx).unwrap();
        let beacons = vec![BeaconSpec {
            id: BeaconId(1),
            position: target,
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        }];
        let plan = plan_l_walk(&env, start, 2.5, 2.0, 0.3)?;
        let session = simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(seed));
        let estimator = Estimator::new(EstimatorConfig::default());
        localize(&session, BeaconId(1), &estimator)
    }

    #[test]
    fn meeting_room_accuracy_in_paper_band() {
        // Paper Table 1: 0.8 ± 0.2 m in the meeting room. Average a few
        // seeds; allow generous slack for the simulated channel.
        let mut errs = Vec::new();
        for seed in 0..6 {
            if let Some(o) = run_once(1, Vec2::new(4.0, 4.0), Vec2::new(1.0, 1.0), seed) {
                errs.push(o.error_m);
            }
        }
        assert!(errs.len() >= 4, "only {} runs succeeded", errs.len());
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean < 2.0, "meeting-room mean error {mean:.2} m");
    }

    #[test]
    fn unheard_beacon_returns_none() {
        let env = environment_by_index(1).unwrap();
        let beacons = vec![BeaconSpec {
            id: BeaconId(1),
            position: Vec2::new(4.0, 4.0),
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        }];
        let plan = plan_l_walk(&env, Vec2::new(1.0, 1.0), 2.5, 2.0, 0.3).unwrap();
        let session = simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(3));
        let estimator = Estimator::new(EstimatorConfig::default());
        assert!(localize(&session, BeaconId(99), &estimator).is_none());
    }

    #[test]
    fn envaware_estimator_runs_end_to_end() {
        // The lab is the paper's hardest environment (§7.7: single-beacon
        // accuracy "averages only 3m" behind the concrete wall), so bound
        // the *mean* across seeds rather than any single run.
        let env = environment_by_index(7).unwrap(); // lab, NLOS-heavy
        let estimator =
            Estimator::with_envaware(EstimatorConfig::default(), train_default_envaware(21));
        let beacons = vec![BeaconSpec {
            id: BeaconId(1),
            position: Vec2::new(6.5, 5.0),
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        }];
        let mut errs = Vec::new();
        let mut env_seen = false;
        for seed in 0..6u64 {
            let plan = plan_l_walk(&env, Vec2::new(1.5, 2.0), 2.5, 2.0, 0.4).unwrap();
            let session = simulate_session(
                &env,
                &beacons,
                &plan,
                &SessionConfig::paper_default(9 + seed),
            );
            if let Some(outcome) = localize(&session, BeaconId(1), &estimator) {
                env_seen |= outcome.estimate.env.is_some();
                errs.push(outcome.error_m);
            }
        }
        assert!(env_seen, "EnvAware regime missing");
        assert!(errs.len() >= 4, "only {} runs succeeded", errs.len());
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean < 5.0, "lab mean error {mean:.2} m");
    }

    #[test]
    fn moving_target_localizes_within_paper_band() {
        // Paper §7.4.2: "accuracy of less than 2.5m for more than 50% of
        // data" in the outdoor test.
        use crate::world::simulate_moving_session;
        let env = environment_by_index(9).unwrap();
        let mut errs = Vec::new();
        for seed in 0..8u64 {
            let obs_plan = plan_l_walk(&env, Vec2::new(4.0, 4.0), 4.0, 3.0, 0.5).unwrap();
            let tgt_plan = plan_l_walk(&env, Vec2::new(9.0, 8.0), 2.0, 2.0, 0.5).unwrap();
            let ms = simulate_moving_session(
                &env,
                &obs_plan,
                &tgt_plan,
                BeaconHardware::ideal(BeaconKind::IosDevice),
                &SessionConfig::paper_default(1000 + seed),
            );
            let estimator = Estimator::new(EstimatorConfig::default());
            if let Some(o) = super::localize_moving(&ms, &estimator) {
                errs.push(o.error_m);
            }
        }
        assert!(errs.len() >= 6, "only {} runs succeeded", errs.len());
        errs.sort_by(|a, b| a.total_cmp(b));
        let median = errs[errs.len() / 2];
        assert!(median < 3.5, "moving-target median error {median:.2} m");
    }

    #[test]
    fn outcome_error_is_consistent() {
        let o = run_once(9, Vec2::new(9.0, 8.0), Vec2::new(4.0, 4.0), 17).unwrap();
        let direct = o.estimate.position.distance(o.truth_local);
        assert!(o.error_m <= direct + 1e-12);
    }

    #[test]
    fn streaming_run_produces_a_report() {
        let env = environment_by_index(1).unwrap();
        let beacons = vec![BeaconSpec {
            id: BeaconId(1),
            position: Vec2::new(4.0, 4.0),
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        }];
        let plan = plan_l_walk(&env, Vec2::new(1.0, 1.0), 2.5, 2.0, 0.3).unwrap();
        let session = simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(7));
        let estimator = Estimator::new(EstimatorConfig::default());
        let obs = Obs::ring(2048);
        let (outcome, report) = localize_streaming(&session, BeaconId(1), &estimator, &obs);
        assert!(report.batches > 0);
        assert_eq!(
            report.metrics.counter("stream.batches"),
            report.batches as u64
        );
        assert_eq!(outcome.map(|o| o.error_m), report.error_m);
        // The JSON body serializes and mentions the event stream.
        let json = report.to_json();
        assert!(json.contains("\"events\""));
        assert!(json.contains("\"metrics\""));
    }

    #[test]
    fn fleet_run_localizes_multiple_beacons() {
        use crate::world::fleet_beacons;
        let env = environment_by_index(9).unwrap(); // open parking lot
        let fleet = fleet_beacons(&env, 6, 3);
        let plan = plan_l_walk(&env, Vec2::new(4.0, 4.0), 4.0, 3.0, 0.5).unwrap();
        let session = simulate_session(&env, &fleet, &plan, &SessionConfig::paper_default(12));
        let estimator = Estimator::new(EstimatorConfig::default());
        let report = localize_fleet(
            &session,
            &estimator,
            EngineConfig::default(),
            &locble_obs::Obs::noop(),
        );
        assert_eq!(report.heard, 6, "all beacons heard");
        assert!(
            report.outcomes.len() >= 4,
            "only {} beacons localized",
            report.outcomes.len()
        );
        assert_eq!(report.stats.samples_rejected, 0);
        assert_eq!(
            report.stats.samples_processed,
            session.interleaved_rss().len() as u64
        );
        let mean = report.mean_error_m().expect("some outcomes");
        assert!(mean < 6.0, "fleet mean error {mean:.2} m");
    }

    /// The pipeline-diagnostics acceptance run: a session whose RSS trace
    /// switches regime mid-walk must yield a [`PipelineReport`] whose
    /// JSONL stream shows the environment restart, the per-batch refit
    /// latencies, and the ANF innovation samples.
    #[test]
    fn report_captures_env_restart_and_latencies() {
        use locble_dsp::TimeSeries;
        use locble_rf::randn::normal;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // Long walk in the parking lot so the stream spans many 2.2 s
        // batches.
        let env = environment_by_index(9).unwrap();
        let beacons = vec![BeaconSpec {
            id: BeaconId(1),
            position: Vec2::new(8.0, 8.0),
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        }];
        let plan = plan_l_walk(&env, Vec2::new(1.5, 1.5), 13.0, 12.0, 0.5).unwrap();
        let mut session =
            simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(11));

        // Splice a two-regime trace over the walk: clear LOS for the
        // first 60%, then a deep NLOS level (the probe-calibrated class
        // centers of the default-trained classifier).
        let t_end = session.walk.imu.last().unwrap().t;
        let mut rng = StdRng::seed_from_u64(42);
        let mut t = Vec::new();
        let mut v = Vec::new();
        let mut clock = 0.0;
        while clock < t_end {
            let (mean, sigma) = if clock < 0.6 * t_end {
                (-65.0, 1.8)
            } else {
                (-93.0, 6.0)
            };
            t.push(clock);
            v.push(normal(&mut rng, mean, sigma));
            clock += 0.11;
        }
        session.rss.insert(BeaconId(1), TimeSeries::new(t, v));

        let estimator =
            Estimator::with_envaware(EstimatorConfig::default(), train_default_envaware(21));
        let obs = Obs::ring(8192);
        let (_, report) = localize_streaming(&session, BeaconId(1), &estimator, &obs);

        assert!(report.restarts >= 1, "no env restart detected");
        assert_eq!(report.dropped_events, 0, "ring overflowed");

        let jsonl = report.events_jsonl();
        assert!(jsonl.contains("env_restart"), "restart missing from JSONL");
        assert!(
            jsonl.contains("zero_phase_filter"),
            "ANF diagnostics missing from JSONL"
        );
        let parsed = locble_obs::events_from_jsonl(&jsonl).expect("JSONL parses back");
        assert_eq!(parsed.len(), report.events.len());

        // Per-batch refit latencies and ANF innovation samples landed in
        // the metric histograms.
        let hist = |name: &str| {
            report
                .metrics
                .histograms
                .iter()
                .find(|(n, _)| n.as_str() == name)
                .map(|(_, h)| h.clone())
                .unwrap_or_else(|| panic!("{name} histogram missing"))
        };
        assert_eq!(hist("core.streaming.refit.us").count, report.batches as u64);
        assert!(hist("anf.innovation_abs_db").count > 0);
    }
}
