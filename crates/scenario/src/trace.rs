//! Plain-text session traces.
//!
//! The reproduction bands note that for this paper "only offline filter
//! replay \[is\] feasible" — so sessions serialize to a line-oriented
//! trace holding exactly what the app would have logged on-device (IMU
//! samples, per-beacon RSSI, metadata), and parse back into a
//! [`ReplayTrace`] that can be fed through the motion tracker and
//! estimator offline.
//!
//! Format (one record per line, space-separated, `#` comments ignored):
//!
//! ```text
//! # locble-trace v1
//! ENV 7
//! START <x> <y> <heading>
//! BEACON <id> <x> <y>
//! IMU <t> <ax> <ay> <az> <gx> <gy> <gz> <mag_heading>
//! RSS <t> <beacon-id> <rssi>
//! ```

use crate::world::Session;
use locble_ble::BeaconId;
use locble_dsp::TimeSeries;
use locble_geom::{Pose2, Vec2};
use locble_sensors::ImuSample;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed trace: the app-visible data plus scoring metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayTrace {
    /// Table-1 environment index.
    pub env_index: usize,
    /// Observer starting pose (world frame).
    pub start: Pose2,
    /// Beacon ground-truth positions (world frame).
    pub beacons: Vec<(BeaconId, Vec2)>,
    /// IMU stream.
    pub imu: Vec<ImuSample>,
    /// Per-beacon RSSI series.
    pub rss: BTreeMap<BeaconId, TimeSeries>,
}

/// Serializes a session to the trace format.
pub fn session_trace_to_string(session: &Session) -> String {
    let mut out = String::new();
    out.push_str("# locble-trace v1\n");
    let _ = writeln!(out, "ENV {}", session.env.index);
    let _ = writeln!(
        out,
        "START {} {} {}",
        session.start.position.x, session.start.position.y, session.start.heading
    );
    for b in &session.beacons {
        let _ = writeln!(out, "BEACON {} {} {}", b.id.0, b.position.x, b.position.y);
    }
    for s in &session.walk.imu {
        let _ = writeln!(
            out,
            "IMU {} {} {} {} {} {} {} {}",
            s.t, s.accel[0], s.accel[1], s.accel[2], s.gyro[0], s.gyro[1], s.gyro[2], s.mag_heading
        );
    }
    for (id, series) in &session.rss {
        for (&t, &v) in series.t.iter().zip(&series.v) {
            let _ = writeln!(out, "RSS {} {} {}", t, id.0, v);
        }
    }
    out
}

/// Parses a trace produced by [`session_trace_to_string`].
pub fn parse_session_trace(text: &str) -> Result<ReplayTrace, String> {
    let mut env_index = None;
    let mut start = None;
    let mut beacons = Vec::new();
    let mut imu = Vec::new();
    let mut rss_raw: BTreeMap<BeaconId, Vec<(f64, f64)>> = BTreeMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty line has a tag");
        let fields: Vec<&str> = parts.collect();
        let ctx = |what: &str| format!("line {}: bad {what}: {line:?}", lineno + 1);
        // Non-finite numbers are rejected at the parse boundary: a NaN
        // timestamp would otherwise corrupt every downstream sort and
        // monotonicity invariant.
        let f = |s: &str, what: &str| -> Result<f64, String> {
            match s.parse::<f64>() {
                Ok(x) if x.is_finite() => Ok(x),
                _ => Err(ctx(what)),
            }
        };
        match tag {
            "ENV" => {
                let idx: usize = fields
                    .first()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ctx("ENV"))?;
                env_index = Some(idx);
            }
            "START" => {
                if fields.len() != 3 {
                    return Err(ctx("START"));
                }
                start = Some(Pose2::new(
                    Vec2::new(f(fields[0], "START")?, f(fields[1], "START")?),
                    f(fields[2], "START")?,
                ));
            }
            "BEACON" => {
                if fields.len() != 3 {
                    return Err(ctx("BEACON"));
                }
                let id: u32 = fields[0].parse().map_err(|_| ctx("BEACON id"))?;
                beacons.push((
                    BeaconId(id),
                    Vec2::new(f(fields[1], "BEACON")?, f(fields[2], "BEACON")?),
                ));
            }
            "IMU" => {
                if fields.len() != 8 {
                    return Err(ctx("IMU"));
                }
                let v: Result<Vec<f64>, String> = fields.iter().map(|s| f(s, "IMU")).collect();
                let v = v?;
                imu.push(ImuSample {
                    t: v[0],
                    accel: [v[1], v[2], v[3]],
                    gyro: [v[4], v[5], v[6]],
                    mag_heading: v[7],
                });
            }
            "RSS" => {
                if fields.len() != 3 {
                    return Err(ctx("RSS"));
                }
                let id: u32 = fields[1].parse().map_err(|_| ctx("RSS id"))?;
                rss_raw
                    .entry(BeaconId(id))
                    .or_default()
                    .push((f(fields[0], "RSS t")?, f(fields[2], "RSS v")?));
            }
            other => return Err(format!("line {}: unknown tag {other:?}", lineno + 1)),
        }
    }

    let mut rss = BTreeMap::new();
    for (id, mut samples) in rss_raw {
        samples.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut series = TimeSeries::default();
        for (t, v) in samples {
            series.push(t, v);
        }
        rss.insert(id, series);
    }

    Ok(ReplayTrace {
        env_index: env_index.ok_or("missing ENV record")?,
        start: start.ok_or("missing START record")?,
        beacons,
        imu,
        rss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environments::environment_by_index;
    use crate::paths::plan_l_walk;
    use crate::world::{simulate_session, BeaconSpec, SessionConfig};
    use locble_ble::{BeaconHardware, BeaconKind};

    fn session() -> Session {
        let env = environment_by_index(2).unwrap();
        let beacons = vec![
            BeaconSpec {
                id: BeaconId(1),
                position: Vec2::new(6.0, 1.5),
                hardware: BeaconHardware::ideal(BeaconKind::Estimote),
            },
            BeaconSpec {
                id: BeaconId(2),
                position: Vec2::new(7.0, 2.0),
                hardware: BeaconHardware::ideal(BeaconKind::RadBeacon),
            },
        ];
        let plan = plan_l_walk(&env, Vec2::new(1.0, 1.0), 2.5, 1.2, 0.3).unwrap();
        simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(31))
    }

    #[test]
    fn round_trip_preserves_data() {
        let s = session();
        let text = session_trace_to_string(&s);
        let replay = parse_session_trace(&text).unwrap();
        assert_eq!(replay.env_index, 2);
        assert!(replay.start.position.distance(s.start.position) < 1e-12);
        assert_eq!(replay.beacons.len(), 2);
        assert_eq!(replay.imu.len(), s.walk.imu.len());
        assert_eq!(replay.imu[10], s.walk.imu[10]);
        for (id, series) in &s.rss {
            let got = &replay.rss[id];
            assert_eq!(got.t, series.t, "beacon {id}");
            assert_eq!(got.v, series.v, "beacon {id}");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\nENV 3\nSTART 0 0 0\n";
        let replay = parse_session_trace(text).unwrap();
        assert_eq!(replay.env_index, 3);
        assert!(replay.imu.is_empty());
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(parse_session_trace("START 0 0 0\n").is_err());
        assert!(parse_session_trace("ENV 1\n").is_err());
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let err = parse_session_trace("ENV 1\nSTART 0 0 0\nIMU bad\n").unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        let err = parse_session_trace("WAT 1\n").unwrap_err();
        assert!(err.contains("unknown tag"), "{err}");
    }

    #[test]
    fn non_finite_numbers_are_parse_errors_not_panics() {
        // Used to reach `partial_cmp(..).expect("finite times")` and
        // panic; a corrupt trace must surface as Err instead.
        for bad in ["NaN", "inf", "-inf"] {
            let text = format!("ENV 1\nSTART 0 0 0\nRSS {bad} 1 -60\n");
            let err = parse_session_trace(&text).unwrap_err();
            assert!(err.contains("line 3"), "{err}");
        }
        let err = parse_session_trace("ENV 1\nSTART 0 0 NaN\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn replay_reproduces_localization() {
        // The whole point of the trace: offline replay gives the same
        // estimate as the live session.
        use crate::runner::localize;
        use locble_core::{Estimator, EstimatorConfig};
        use locble_motion::{track, TrackerConfig};

        let s = session();
        let live = localize(&s, BeaconId(1), &Estimator::new(EstimatorConfig::default()))
            .expect("live estimate");

        let replay = parse_session_trace(&session_trace_to_string(&s)).unwrap();
        let observer = track(&replay.imu, &TrackerConfig::default());
        let est = Estimator::new(EstimatorConfig::default())
            .estimate_stationary(&replay.rss[&BeaconId(1)], &observer)
            .expect("replay estimate");
        assert!(
            est.position.distance(live.estimate.position) < 1e-9,
            "live {:?} vs replay {:?}",
            live.estimate.position,
            est.position
        );
    }
}
