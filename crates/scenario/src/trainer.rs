//! EnvAware training-data generation.
//!
//! The paper collected labeled RSS traces offline: "for the blocked
//! type, we placed one device behind a blocking object, the other device
//! stores all the RSS data while moving around in front of the object.
//! We also varied the blocking object, like wall, human body, etc."
//! (§4.1). This module reproduces that collection protocol against the
//! channel simulator: for each class a transmitter sits behind nothing /
//! a low-coefficient blocker / a high-coefficient blocker, a receiver
//! wanders in front, and the captured RSS is chopped into labeled 2 s
//! windows.

use locble_core::envaware::{EnvAware, EnvAwareConfig, LabeledWindow};
use locble_geom::{EnvClass, Vec2};
use locble_rf::{LinkConfig, LinkSimulator, Material, Obstacle, ReceiverProfile};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Generates labeled training windows (`windows_per_class` per class).
pub fn training_windows(windows_per_class: usize, seed: u64) -> Vec<LabeledWindow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(windows_per_class * 3);
    let samples_per_window = 18; // 2 s at ~9 Hz

    // Blocking objects per class, varied as in the paper.
    let blockers: [Vec<Option<Material>>; 3] = [
        vec![None],
        vec![
            Some(Material::Wood),
            Some(Material::Glass),
            Some(Material::HumanBody),
            Some(Material::Drywall),
        ],
        vec![
            Some(Material::Concrete),
            Some(Material::CinderBlock),
            Some(Material::Metal),
        ],
    ];

    for (class_idx, class) in EnvClass::ALL.into_iter().enumerate() {
        for w in 0..windows_per_class {
            let blocker = &blockers[class_idx][w % blockers[class_idx].len()];
            let obstacles: Vec<Obstacle> = blocker
                .map(|m| vec![Obstacle::new(Vec2::new(2.0, -3.0), Vec2::new(2.0, 3.0), m)])
                .unwrap_or_default();
            // One phone collects the whole training set (as in the
            // paper), so the chipset offset is a constant the feature
            // standardization absorbs.
            let mut link = LinkSimulator::new(
                LinkConfig::default(),
                ReceiverProfile::smartphone(0.0),
                seed ^ ((class_idx as u64) << 32) ^ (w as u64),
            );
            // Receiver wanders in a confined area in front of the
            // blocker ("moving around in front of the object", §4.1),
            // ~4-5 m from the transmitter.
            let tx = Vec2::new(4.0, 0.0);
            let base = Vec2::new(-rng.random_range(0.0..1.0), rng.random_range(-1.0..1.0));
            let mut window = Vec::with_capacity(samples_per_window);
            let mut t = w as f64 * 100.0; // decorrelate windows
            let mut pos = base;
            for i in 0..samples_per_window {
                if let Some(m) = link.measure(t, tx, pos, &obstacles, 37 + (i % 3) as u8) {
                    window.push(m.rssi_dbm);
                }
                // Wander at walking speed (~1.3 m/s at 9 Hz), so the
                // within-window statistics match what the classifier sees
                // during a real measurement walk.
                pos += Vec2::new(rng.random_range(-0.18..0.18), rng.random_range(-0.18..0.18));
                t += 0.111;
            }
            if window.len() >= 3 {
                out.push((window, class));
            }
        }
    }
    out
}

/// Trains the default EnvAware model on freshly generated windows.
pub fn train_default_envaware(seed: u64) -> EnvAware {
    let windows = training_windows(150, seed);
    EnvAware::train(&windows, &EnvAwareConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_balanced_labeled_windows() {
        let windows = training_windows(40, 11);
        assert!(windows.len() >= 110, "got {}", windows.len());
        for class in EnvClass::ALL {
            let n = windows.iter().filter(|(_, c)| *c == class).count();
            assert!(n >= 35, "{class}: {n} windows");
        }
    }

    #[test]
    fn class_statistics_are_physically_ordered() {
        let windows = training_windows(60, 12);
        let mean_of = |class: EnvClass| {
            let vals: Vec<f64> = windows
                .iter()
                .filter(|(_, c)| *c == class)
                .flat_map(|(w, _)| w.iter().copied())
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let los = mean_of(EnvClass::Los);
        let plos = mean_of(EnvClass::PartialLos);
        let nlos = mean_of(EnvClass::NonLos);
        assert!(los > plos, "LOS {los:.1} vs pLOS {plos:.1}");
        assert!(plos > nlos, "pLOS {plos:.1} vs NLOS {nlos:.1}");
    }

    #[test]
    fn trained_model_separates_held_out_windows() {
        let envaware = train_default_envaware(13);
        let held_out = training_windows(50, 14);
        let cm = envaware.evaluate(&held_out);
        // The paper reports 94.7 % / 94.5 % on real data; the simulated
        // channel should land in the same regime.
        assert!(
            cm.macro_precision() > 0.85,
            "precision {}",
            cm.macro_precision()
        );
        assert!(cm.macro_recall() > 0.85, "recall {}", cm.macro_recall());
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let a = training_windows(10, 15);
        let b = training_windows(10, 15);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].0, b[0].0);
    }
}
