//! One end-to-end measurement session.
//!
//! A [`Session`] is everything a phone app would have after the user
//! performs the measurement walk: the IMU stream, one timestamped RSSI
//! series per heard beacon — plus the simulation's ground truth (true
//! trajectory, true beacon positions) for scoring. The composition
//! mirrors the physical experiment exactly: beacons advertise per the
//! BLE spec, the RF channel distorts each transmission, the scanner
//! captures per its window/channel schedule, and the receiver chain
//! reports an integer RSSI or drops the packet.

use crate::environments::Environment;
use locble_ble::{
    AdvEvent, Advertiser, AdvertiserConfig, BeaconHardware, BeaconId, BeaconKind, Scanner,
    ScannerConfig,
};
use locble_dsp::TimeSeries;
use locble_geom::{Pose2, Vec2};
use locble_rf::{randn, LinkConfig, LinkSimulator, ReceiverProfile, SpatialShadowing};
use locble_sensors::{simulate_walk, GaitConfig, WalkPlan, WalkSimulation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// One deployed beacon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeaconSpec {
    /// Identifier.
    pub id: BeaconId,
    /// World position, metres.
    pub position: Vec2,
    /// Hardware profile (kind + unit calibration error).
    pub hardware: BeaconHardware,
}

/// Session knobs.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Advertiser timing (paper: 10 Hz non-connectable).
    pub advertiser: AdvertiserConfig,
    /// Scanner timing and loss model.
    pub scanner: ScannerConfig,
    /// The observer phone's receiver chain.
    pub receiver: ReceiverProfile,
    /// Gait / IMU noise parameters.
    pub gait: GaitConfig,
    /// Per-beacon link configuration override; defaults to the
    /// environment's.
    pub link: Option<LinkConfig>,
    /// Transient blockage events `(t_start, t_end, extra_dB)`: a person
    /// stepping into the propagation path for a moment ("people randomly
    /// come in between during the observer's movement", paper §4.3).
    /// Applied to every link.
    pub transient_blockages: Vec<(f64, f64, f64)>,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
}

impl SessionConfig {
    /// The paper's experimental defaults with the given seed.
    pub fn paper_default(seed: u64) -> SessionConfig {
        SessionConfig {
            advertiser: AdvertiserConfig::paper_default(),
            scanner: ScannerConfig::paper_default(),
            receiver: ReceiverProfile::smartphone(0.0),
            gait: GaitConfig::default(),
            link: None,
            transient_blockages: Vec::new(),
            seed,
        }
    }
}

/// The simulated measurement session.
#[derive(Debug, Clone)]
pub struct Session {
    /// Environment it ran in.
    pub env: Environment,
    /// Deployed beacons.
    pub beacons: Vec<BeaconSpec>,
    /// The observer's walk (IMU + ground-truth trajectory).
    pub walk: WalkSimulation,
    /// The observer's starting pose (defines the local frame).
    pub start: Pose2,
    /// Per-beacon captured RSSI series.
    pub rss: BTreeMap<BeaconId, TimeSeries>,
}

impl Session {
    /// RSSI series of one beacon, if it was ever heard.
    pub fn rss_of(&self, id: BeaconId) -> Option<&TimeSeries> {
        self.rss.get(&id)
    }

    /// The capture stream as the scanner actually saw it: every heard
    /// advertisement of every beacon, merged into one time-ordered
    /// interleaved sequence of `(beacon, t, rssi_dbm)`. Ties (several
    /// beacons heard in the same scanner tick) break by beacon id, so
    /// the stream is a pure function of the session. This is the input
    /// shape the multi-beacon tracking engine ingests.
    pub fn interleaved_rss(&self) -> Vec<(BeaconId, f64, f64)> {
        let mut stream: Vec<(BeaconId, f64, f64)> = self
            .rss
            .iter()
            .flat_map(|(&id, ts)| ts.t.iter().zip(&ts.v).map(move |(&t, &v)| (id, t, v)))
            .collect();
        stream.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0 .0.cmp(&b.0 .0)));
        stream
    }

    /// The spec of one beacon.
    pub fn beacon(&self, id: BeaconId) -> Option<&BeaconSpec> {
        self.beacons.iter().find(|b| b.id == id)
    }

    /// Ground-truth position of a beacon in the observer's local frame
    /// (origin = walk start, +x = initial heading) — the frame location
    /// estimates are expressed in.
    pub fn truth_local(&self, id: BeaconId) -> Option<Vec2> {
        Some(self.start.world_to_local(self.beacon(id)?.position))
    }
}

/// Deploys a fleet of `n` beacons across the environment: a jittered
/// grid filling the floor with ~0.5 m wall clearance, hardware kinds
/// cycling through the paper's three profiles with per-unit calibration
/// error. Deterministic per seed — the fixture for fleet-scale engine
/// experiments (a store aisle full of tags).
pub fn fleet_beacons(env: &Environment, n: usize, seed: u64) -> Vec<BeaconSpec> {
    use rand::Rng;
    assert!(n > 0, "fleet needs at least one beacon");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1EE7);
    let margin = 0.5;
    let w = (env.width_m - 2.0 * margin).max(0.1);
    let d = (env.depth_m - 2.0 * margin).max(0.1);
    // Grid dense enough for n cells, shaped to the floor's aspect ratio.
    let cols = ((n as f64 * w / d).sqrt().ceil() as usize).max(1);
    let rows = n.div_ceil(cols);
    let kinds = [
        BeaconKind::Estimote,
        BeaconKind::RadBeacon,
        BeaconKind::IosDevice,
    ];
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let (col, row) = (k % cols, k / cols);
        let cell_w = w / cols as f64;
        let cell_d = d / rows as f64;
        // Jitter within the central 80 % of the cell keeps beacons
        // inside bounds and away from exact grid degeneracy.
        let x = margin + (col as f64 + 0.1 + 0.8 * rng.random_range(0.0..1.0)) * cell_w;
        let y = margin + (row as f64 + 0.1 + 0.8 * rng.random_range(0.0..1.0)) * cell_d;
        out.push(BeaconSpec {
            id: BeaconId(k as u32),
            position: Vec2::new(x.min(env.width_m), y.min(env.depth_m)),
            hardware: BeaconHardware::manufacture(kinds[k % kinds.len()], &mut rng),
        });
    }
    out
}

/// The standard fleet-scale measurement session every engine-facing
/// consumer shares (differential suites, the `fleet`/`serve`
/// experiments, `loadgen`): `n` beacons from [`fleet_beacons`] in the
/// parking-lot environment, heard over one fixed L-walk. Pure function
/// of `(n, seed)`, so two callers with the same arguments replay
/// bit-identical traffic.
///
/// # Panics
/// Panics when `n == 0`.
pub fn fleet_session(n: usize, seed: u64) -> Session {
    let env = crate::environments::environment_by_index(9).expect("parking lot environment exists");
    let fleet = fleet_beacons(&env, n, seed);
    let plan = crate::paths::plan_l_walk(&env, Vec2::new(4.0, 4.0), 4.0, 3.0, 0.5)
        .expect("standard fleet walk fits the parking lot");
    simulate_session(&env, &fleet, &plan, &SessionConfig::paper_default(seed))
}

/// The interleaved advert stream of [`fleet_session`] — the exact
/// traffic shape a central tracking service ingests, exported so
/// network load generators replay the same deterministic workload the
/// in-process suites verify against.
pub fn fleet_traffic(n: usize, seed: u64) -> Vec<(BeaconId, f64, f64)> {
    fleet_session(n, seed).interleaved_rss()
}

/// Runs one measurement session: the observer walks `plan` while every
/// beacon advertises; returns the captured data plus ground truth.
///
/// # Panics
/// Panics when a beacon sits outside the environment or no beacons are
/// given.
pub fn simulate_session(
    env: &Environment,
    beacons: &[BeaconSpec],
    plan: &WalkPlan,
    config: &SessionConfig,
) -> Session {
    assert!(!beacons.is_empty(), "session needs at least one beacon");
    for b in beacons {
        assert!(
            env.contains(b.position),
            "beacon {} at {:?} is outside {}",
            b.id,
            b.position,
            env.name
        );
    }

    // The observer's walk and true world trajectory.
    let walk = simulate_walk(plan, &config.gait, config.seed ^ 0x5751);
    let duration = walk.imu.last().map_or(0.0, |s| s.t);

    // Every beacon advertises independently; merge events in time order.
    let mut events: Vec<AdvEvent> = Vec::new();
    for (k, b) in beacons.iter().enumerate() {
        let mut adv = Advertiser::new(config.advertiser, b.id, config.seed ^ (0xAD0 + k as u64));
        events.extend(adv.events_until(duration));
    }
    events.sort_by(|a, b| a.t.total_cmp(&b.t));

    // One RF link per beacon, plus per-beacon TX instability RNG. All
    // links share one geometry-driven shadowing field so co-located
    // beacons see correlated shadowing (the basis of §6's clustering).
    let base_link = config.link.unwrap_or(env.link);
    let field = SpatialShadowing::new(1.2, config.seed ^ 0xF1E1D);
    let mut links: BTreeMap<BeaconId, (LinkSimulator, BeaconHardware, StdRng)> = BTreeMap::new();
    for (k, b) in beacons.iter().enumerate() {
        let link_cfg = LinkConfig {
            gamma_1m_dbm: base_link.gamma_1m_dbm + b.hardware.unit_offset_db,
            ..base_link
        };
        links.insert(
            b.id,
            (
                LinkSimulator::new(link_cfg, config.receiver, config.seed ^ (0x117 + k as u64))
                    .with_spatial_shadowing(field.clone()),
                b.hardware,
                StdRng::seed_from_u64(config.seed ^ (0x7F0 + k as u64)),
            ),
        );
    }

    // The scanner hears what the channel delivers.
    let positions: BTreeMap<BeaconId, Vec2> = beacons.iter().map(|b| (b.id, b.position)).collect();
    let trajectory = walk.trajectory.clone();
    let mut scanner = Scanner::new(config.scanner, config.seed ^ 0x5CA);
    let samples = scanner.capture(&events, |e| {
        let (link, hw, rng) = links.get_mut(&e.beacon).expect("link exists");
        let rx = trajectory.sample(e.t).expect("trajectory covers walk");
        let tx = positions[&e.beacon];
        // Per-transmission Tx instability (beacon hardware profile); the
        // unit's static calibration error is already folded into Γ.
        let mut jitter = randn::normal(rng, 0.0, hw.kind.instability_sigma_db());
        // Transient blockers (a passer-by) attenuate every link.
        for &(t0, t1, db) in &config.transient_blockages {
            if e.t >= t0 && e.t < t1 {
                jitter -= db;
            }
        }
        link.measure_with_tx_offset(e.t, tx, rx, &env.obstacles, e.channel, jitter)
            .map(|m| m.rssi_dbm)
    });

    // Split the capture stream into per-beacon series.
    let mut rss: BTreeMap<BeaconId, TimeSeries> = BTreeMap::new();
    for s in samples {
        rss.entry(s.beacon).or_default().push(s.t, s.rssi_dbm);
    }

    Session {
        env: env.clone(),
        beacons: beacons.to_vec(),
        walk,
        start: plan.start,
        rss,
    }
}

/// A moving-target session (paper §7.4.2): the target carries an
/// advertising device and walks its own path while the observer walks
/// the measurement L; afterwards the target's motion trace is transferred
/// to the observer.
#[derive(Debug, Clone)]
pub struct MovingSession {
    /// Environment.
    pub env: Environment,
    /// The observer's walk.
    pub observer_walk: WalkSimulation,
    /// The target's walk.
    pub target_walk: WalkSimulation,
    /// Observer starting pose (world).
    pub observer_start: Pose2,
    /// Target starting pose (world).
    pub target_start: Pose2,
    /// RSSI of the target's beacon as heard by the observer.
    pub rss: TimeSeries,
    /// The target's beacon id.
    pub target_beacon: BeaconId,
}

impl MovingSession {
    /// Ground truth: the target's *initial* position in the observer's
    /// local frame (the paper measures moving-target error at the
    /// initial location, §7.2).
    pub fn truth_local_initial(&self) -> Vec2 {
        self.observer_start
            .world_to_local(self.target_start.position)
    }
}

/// Runs a moving-target session.
pub fn simulate_moving_session(
    env: &Environment,
    observer_plan: &WalkPlan,
    target_plan: &WalkPlan,
    hardware: BeaconHardware,
    config: &SessionConfig,
) -> MovingSession {
    let observer_walk = simulate_walk(observer_plan, &config.gait, config.seed ^ 0x0B5);
    let target_walk = simulate_walk(target_plan, &config.gait, config.seed ^ 0x769);
    let duration = observer_walk
        .imu
        .last()
        .map_or(0.0, |s| s.t)
        .min(target_walk.imu.last().map_or(0.0, |s| s.t));

    let beacon = BeaconId(0);
    let mut adv = Advertiser::new(config.advertiser, beacon, config.seed ^ 0xADB);
    let events = adv.events_until(duration);

    let base_link = config.link.unwrap_or(env.link);
    let link_cfg = LinkConfig {
        gamma_1m_dbm: base_link.gamma_1m_dbm + hardware.unit_offset_db,
        ..base_link
    };
    let field = SpatialShadowing::new(1.2, config.seed ^ 0xF1E1D);
    let mut link = LinkSimulator::new(link_cfg, config.receiver, config.seed ^ 0x11B)
        .with_spatial_shadowing(field);
    let mut jitter_rng = StdRng::seed_from_u64(config.seed ^ 0x7FB);

    let obs_traj = observer_walk.trajectory.clone();
    let tgt_traj = target_walk.trajectory.clone();
    let mut scanner = Scanner::new(config.scanner, config.seed ^ 0x5CB);
    let samples = scanner.capture(&events, |e| {
        let rx = obs_traj
            .sample(e.t)
            .expect("observer trajectory covers walk");
        let tx = tgt_traj.sample(e.t).expect("target trajectory covers walk");
        let mut jitter = randn::normal(&mut jitter_rng, 0.0, hardware.kind.instability_sigma_db());
        for &(t0, t1, db) in &config.transient_blockages {
            if e.t >= t0 && e.t < t1 {
                jitter -= db;
            }
        }
        link.measure_with_tx_offset(e.t, tx, rx, &env.obstacles, e.channel, jitter)
            .map(|m| m.rssi_dbm)
    });
    let mut rss = TimeSeries::default();
    for s in samples {
        rss.push(s.t, s.rssi_dbm);
    }

    MovingSession {
        env: env.clone(),
        observer_walk,
        target_walk,
        observer_start: observer_plan.start,
        target_start: target_plan.start,
        rss,
        target_beacon: beacon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environments::environment_by_index;
    use crate::paths::plan_l_walk;
    use locble_ble::BeaconKind;

    fn one_beacon_session(seed: u64) -> Session {
        let env = environment_by_index(1).unwrap();
        let beacons = vec![BeaconSpec {
            id: BeaconId(1),
            position: Vec2::new(4.0, 4.0),
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        }];
        let plan = plan_l_walk(&env, Vec2::new(1.0, 1.0), 2.5, 2.0, 0.3).unwrap();
        simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(seed))
    }

    #[test]
    fn session_produces_paper_rate_rss() {
        let s = one_beacon_session(1);
        let rss = s.rss_of(BeaconId(1)).expect("beacon heard");
        let duration = s.walk.imu.last().unwrap().t;
        let rate = rss.len() as f64 / duration;
        // ~10 Hz advertising through a continuous scanner with ~5 %
        // losses lands in the paper's 8–9.5 Hz regime.
        assert!((6.5..=10.0).contains(&rate), "rate {rate} Hz");
    }

    #[test]
    fn rss_values_are_physically_plausible() {
        let s = one_beacon_session(2);
        let rss = s.rss_of(BeaconId(1)).unwrap();
        for &v in &rss.v {
            assert!((-100.0..=-35.0).contains(&v), "rssi {v}");
            // Integer grid from the receiver quantizer.
            assert!((v - v.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn truth_local_matches_manual_transform() {
        let s = one_beacon_session(3);
        let truth = s.truth_local(BeaconId(1)).unwrap();
        let manual = s.start.world_to_local(Vec2::new(4.0, 4.0));
        assert!(truth.distance(manual) < 1e-12);
        // The beacon is a few metres away, in front of the walk origin.
        assert!(truth.norm() > 1.0 && truth.norm() < 6.0);
    }

    #[test]
    fn multiple_beacons_all_heard() {
        let env = environment_by_index(5).unwrap();
        let beacons: Vec<BeaconSpec> = (0..4)
            .map(|k| BeaconSpec {
                id: BeaconId(k),
                position: Vec2::new(2.0 + k as f64 * 1.5, 7.0),
                hardware: BeaconHardware::ideal(BeaconKind::Estimote),
            })
            .collect();
        let plan = plan_l_walk(&env, Vec2::new(2.0, 2.0), 3.0, 2.5, 0.3).unwrap();
        let s = simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(4));
        for k in 0..4 {
            let rss = s
                .rss_of(BeaconId(k))
                .unwrap_or_else(|| panic!("beacon {k} unheard"));
            assert!(rss.len() > 20, "beacon {k}: {} samples", rss.len());
        }
    }

    #[test]
    fn sessions_are_deterministic_per_seed() {
        let a = one_beacon_session(7);
        let b = one_beacon_session(7);
        assert_eq!(
            a.rss_of(BeaconId(1)).unwrap().v,
            b.rss_of(BeaconId(1)).unwrap().v
        );
        let c = one_beacon_session(8);
        assert_ne!(
            a.rss_of(BeaconId(1)).unwrap().v,
            c.rss_of(BeaconId(1)).unwrap().v
        );
    }

    #[test]
    fn closer_beacon_is_louder() {
        let env = environment_by_index(9).unwrap(); // open parking lot
        let beacons = vec![
            BeaconSpec {
                id: BeaconId(1),
                position: Vec2::new(5.0, 6.0),
                hardware: BeaconHardware::ideal(BeaconKind::Estimote),
            },
            BeaconSpec {
                id: BeaconId(2),
                position: Vec2::new(14.0, 14.0),
                hardware: BeaconHardware::ideal(BeaconKind::Estimote),
            },
        ];
        let plan = plan_l_walk(&env, Vec2::new(4.0, 4.0), 3.0, 2.5, 0.5).unwrap();
        let s = simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(5));
        let mean = |ts: &TimeSeries| ts.v.iter().sum::<f64>() / ts.v.len() as f64;
        let near = mean(s.rss_of(BeaconId(1)).unwrap());
        let far = mean(s.rss_of(BeaconId(2)).unwrap());
        assert!(near > far + 5.0, "near {near:.1}, far {far:.1}");
    }

    #[test]
    fn moving_session_produces_rss_and_truth() {
        let env = environment_by_index(9).unwrap();
        let obs_plan = plan_l_walk(&env, Vec2::new(4.0, 4.0), 3.0, 2.5, 0.5).unwrap();
        let tgt_plan = plan_l_walk(&env, Vec2::new(10.0, 9.0), 2.5, 2.0, 0.5).unwrap();
        let ms = simulate_moving_session(
            &env,
            &obs_plan,
            &tgt_plan,
            BeaconHardware::ideal(BeaconKind::IosDevice),
            &SessionConfig::paper_default(41),
        );
        assert!(ms.rss.len() > 20, "{} samples", ms.rss.len());
        let truth = ms.truth_local_initial();
        let world_dist = Vec2::new(4.0, 4.0).distance(Vec2::new(10.0, 9.0));
        assert!((truth.norm() - world_dist).abs() < 1e-9);
    }

    #[test]
    fn fleet_beacons_fill_the_environment_deterministically() {
        let env = environment_by_index(9).unwrap();
        let fleet = fleet_beacons(&env, 24, 5);
        assert_eq!(fleet.len(), 24);
        for (k, b) in fleet.iter().enumerate() {
            assert_eq!(b.id, BeaconId(k as u32));
            assert!(env.contains(b.position), "beacon {k} at {:?}", b.position);
        }
        // Mixed hardware, not a monoculture.
        let kinds: std::collections::BTreeSet<_> = fleet
            .iter()
            .map(|b| format!("{:?}", b.hardware.kind))
            .collect();
        assert_eq!(kinds.len(), 3);
        // Pure function of (env, n, seed).
        let again = fleet_beacons(&env, 24, 5);
        assert_eq!(fleet, again);
        let other = fleet_beacons(&env, 24, 6);
        assert_ne!(fleet, other);
    }

    #[test]
    fn interleaved_rss_is_time_sorted_and_complete() {
        let env = environment_by_index(5).unwrap();
        let beacons: Vec<BeaconSpec> = (0..4)
            .map(|k| BeaconSpec {
                id: BeaconId(k),
                position: Vec2::new(2.0 + k as f64 * 1.5, 7.0),
                hardware: BeaconHardware::ideal(BeaconKind::Estimote),
            })
            .collect();
        let plan = plan_l_walk(&env, Vec2::new(2.0, 2.0), 3.0, 2.5, 0.3).unwrap();
        let s = simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(4));
        let stream = s.interleaved_rss();
        let total: usize = s.rss.values().map(TimeSeries::len).sum();
        assert_eq!(stream.len(), total, "stream must carry every sample");
        for w in stream.windows(2) {
            assert!(
                w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].0 .0 <= w[1].0 .0),
                "stream out of order: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        // Demultiplexing the stream reproduces each per-beacon series.
        for (&id, ts) in &s.rss {
            let times: Vec<f64> = stream.iter().filter(|e| e.0 == id).map(|e| e.1).collect();
            assert_eq!(times, ts.t, "beacon {id} series mangled");
        }
    }

    #[test]
    fn interleaved_rss_tolerates_non_finite_times() {
        // A NaN capture timestamp (e.g. from a corrupt on-device log)
        // used to panic the merge sort; total_cmp orders it after every
        // finite time instead.
        let mut s = one_beacon_session(9);
        let ts = s.rss.get_mut(&BeaconId(1)).unwrap();
        ts.t.push(f64::NAN);
        ts.v.push(-60.0);
        let stream = s.interleaved_rss();
        assert!(stream.last().unwrap().1.is_nan(), "NaN must sort last");
        for w in stream[..stream.len() - 1].windows(2) {
            assert!(w[0].1 <= w[1].1, "finite prefix out of order");
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn beacon_outside_room_rejected() {
        let env = environment_by_index(1).unwrap();
        let beacons = vec![BeaconSpec {
            id: BeaconId(1),
            position: Vec2::new(40.0, 4.0),
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        }];
        let plan = plan_l_walk(&env, Vec2::new(1.0, 1.0), 2.0, 2.0, 0.3).unwrap();
        simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(0));
    }
}
