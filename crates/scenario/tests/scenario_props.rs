//! Property tests for the scenario substrate: walk planning stays in
//! bounds, sessions are structurally sound, and the trace parser is
//! total (never panics on arbitrary text).

use locble_ble::{BeaconHardware, BeaconId, BeaconKind};
use locble_geom::Vec2;
use locble_scenario::world::simulate_session;
use locble_scenario::{
    all_environments, environment_by_index, parse_session_trace, plan_l_walk,
    session_trace_to_string, BeaconSpec, SessionConfig,
};
use locble_sensors::simulate_walk;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever walk the planner produces stays inside the environment
    /// when actually walked (including gait noise).
    #[test]
    fn planned_walks_stay_in_bounds(
        env_index in 1usize..=9,
        fx in 0.15..0.5f64,
        fy in 0.15..0.5f64,
        leg1 in 1.5..3.5f64,
        leg2 in 1.0..3.0f64,
        seed in 0u64..200,
    ) {
        let env = environment_by_index(env_index).expect("env");
        let start = Vec2::new(env.width_m * fx, env.depth_m * fy);
        let Some(plan) = plan_l_walk(&env, start, leg1, leg2, 0.4) else {
            return Ok(()); // planner may legitimately refuse
        };
        let sim = simulate_walk(&plan, &Default::default(), seed);
        for p in sim.trajectory.points() {
            prop_assert!(
                env.contains(p.pos),
                "{}: walked out of bounds at {:?}",
                env.name,
                p.pos
            );
        }
    }

    /// Sessions deliver well-formed RSSI streams for arbitrary beacon
    /// placements.
    #[test]
    fn sessions_are_wellformed(
        env_index in 1usize..=9,
        bx in 0.1..0.9f64,
        by in 0.1..0.9f64,
        seed in 0u64..200,
    ) {
        let env = environment_by_index(env_index).expect("env");
        let beacon = BeaconSpec {
            id: BeaconId(1),
            position: Vec2::new(env.width_m * bx, env.depth_m * by),
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        };
        let start = Vec2::new(env.width_m * 0.25, env.depth_m * 0.25);
        let Some(plan) = plan_l_walk(&env, start, 2.5, 2.0, 0.4) else {
            return Ok(());
        };
        let session =
            simulate_session(&env, &[beacon], &plan, &SessionConfig::paper_default(seed));
        if let Some(rss) = session.rss_of(BeaconId(1)) {
            for w in rss.t.windows(2) {
                prop_assert!(w[1] >= w[0]);
            }
            for &v in &rss.v {
                prop_assert!(v.is_finite());
                prop_assert!((-110.0..=-20.0).contains(&v), "rssi {v}");
            }
        }
    }

    /// The trace parser is total: arbitrary text parses or errors, never
    /// panics.
    #[test]
    fn trace_parser_is_total(text in "\\PC{0,400}") {
        let _ = parse_session_trace(&text);
    }

    /// Structured-ish garbage (valid tags, random fields) is also safe.
    #[test]
    fn trace_parser_survives_tag_garbage(
        lines in prop::collection::vec(
            prop_oneof![
                Just("ENV 3".to_string()),
                Just("START 0 0 0".to_string()),
                "(ENV|START|BEACON|IMU|RSS) [0-9a-z\\-\\. ]{0,40}",
                "\\PC{0,60}",
            ],
            0..30,
        ),
    ) {
        let _ = parse_session_trace(&lines.join("\n"));
    }
}

#[test]
fn environments_have_stable_count() {
    assert_eq!(all_environments().len(), 9);
}

#[test]
fn trace_round_trip_is_lossless_for_real_sessions() {
    let env = environment_by_index(1).expect("env");
    let beacon = BeaconSpec {
        id: BeaconId(1),
        position: Vec2::new(4.0, 4.0),
        hardware: BeaconHardware::ideal(BeaconKind::Estimote),
    };
    let plan = plan_l_walk(&env, Vec2::new(1.0, 1.0), 2.5, 2.0, 0.3).expect("plan");
    let session = simulate_session(&env, &[beacon], &plan, &SessionConfig::paper_default(77));
    let replay = parse_session_trace(&session_trace_to_string(&session)).expect("parse");
    assert_eq!(replay.imu.len(), session.walk.imu.len());
}
