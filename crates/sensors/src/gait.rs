//! Pedestrian gait synthesis.
//!
//! Generates the phone-frame IMU streams a walking observer produces,
//! together with full ground truth. The model:
//!
//! * **Steps** — the walker advances at `step_length × step_frequency`;
//!   each gait cycle puts one vertical acceleration burst (fundamental +
//!   second harmonic, per-step amplitude jitter) on the accelerometer.
//!   Step length follows the linear frequency relation of [Li et al.
//!   2012] that the paper's §5.2.1 borrows ("we can infer step length by
//!   inspecting the step frequency").
//! * **Turns** — between legs the walker rotates in place with a
//!   raised-cosine angular-rate bump (what the paper's turn detector looks
//!   for in gyroscope data, §5.2.2 / Fig. 8b).
//! * **Magnetometer** — true heading plus a slowly drifting AR(1) indoor
//!   disturbance plus white noise: "known to fluctuate in indoor
//!   environments, but … accurate over a short period time".
//! * **Phone posture** — all vectors are rotated into an arbitrary phone
//!   attitude, so consumers must perform coordinate alignment to recover
//!   the earth frame (paper §5.2).

use crate::imu::{ImuSample, TurnTruth};
use crate::mat3::Mat3;
use crate::GRAVITY;
use locble_geom::{Pose2, Trajectory, Vec2};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Step length (metres) from step frequency (Hz) — the shared linear
/// model of [Li et al. 2012]: `L = 0.3 + 0.25·f`.
pub fn step_length_from_frequency(freq_hz: f64) -> f64 {
    0.3 + 0.25 * freq_hz
}

/// One straight walking leg.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkLeg {
    /// Distance to walk, metres.
    pub distance_m: f64,
}

/// A scripted walk: legs separated by in-place turns.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkPlan {
    /// Starting pose in the world frame.
    pub start: Pose2,
    /// Straight legs.
    pub legs: Vec<WalkLeg>,
    /// Signed turn angles between consecutive legs (radians,
    /// counter-clockwise positive). Must have `legs.len() − 1` entries.
    pub turn_angles: Vec<f64>,
}

impl WalkPlan {
    /// The paper's canonical measurement movement: leg 1, a 90° left
    /// turn, leg 2 (Fig. 7).
    pub fn l_shape(start: Pose2, leg1_m: f64, leg2_m: f64) -> WalkPlan {
        WalkPlan {
            start,
            legs: vec![
                WalkLeg { distance_m: leg1_m },
                WalkLeg { distance_m: leg2_m },
            ],
            turn_angles: vec![std::f64::consts::FRAC_PI_2],
        }
    }

    /// A single straight leg (used by the §9.2 straight-walk variant).
    pub fn straight(start: Pose2, distance_m: f64) -> WalkPlan {
        WalkPlan {
            start,
            legs: vec![WalkLeg { distance_m }],
            turn_angles: vec![],
        }
    }

    /// Total planned walking distance.
    pub fn total_distance(&self) -> f64 {
        self.legs.iter().map(|l| l.distance_m).sum()
    }

    /// Validates leg/turn counts and distances.
    pub fn validate(&self) -> Result<(), String> {
        if self.legs.is_empty() {
            return Err("walk plan needs at least one leg".into());
        }
        if self.turn_angles.len() + 1 != self.legs.len() {
            return Err(format!(
                "{} legs need {} turns, got {}",
                self.legs.len(),
                self.legs.len() - 1,
                self.turn_angles.len()
            ));
        }
        if self.legs.iter().any(|l| l.distance_m <= 0.0) {
            return Err("leg distances must be positive".into());
        }
        Ok(())
    }
}

/// Gait and sensor-noise parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaitConfig {
    /// IMU sample rate, Hz.
    pub sample_rate_hz: f64,
    /// Step frequency, Hz.
    pub step_frequency_hz: f64,
    /// Peak vertical acceleration per step, m/s².
    pub step_amplitude: f64,
    /// Fractional per-step amplitude jitter.
    pub amplitude_jitter: f64,
    /// Accelerometer white-noise σ, m/s².
    pub accel_noise: f64,
    /// Gyroscope white-noise σ, rad/s.
    pub gyro_noise: f64,
    /// Magnetometer heading white-noise σ, rad.
    pub heading_noise: f64,
    /// Stationary σ of the slow indoor magnetic disturbance, rad.
    pub heading_drift_sigma: f64,
    /// Time constant of the disturbance, seconds.
    pub heading_drift_tau_s: f64,
    /// Duration of an in-place turn, seconds.
    pub turn_duration_s: f64,
    /// Phone posture relative to the walker: yaw, pitch, roll (radians).
    pub phone_ypr: [f64; 3],
}

impl Default for GaitConfig {
    fn default() -> Self {
        GaitConfig {
            sample_rate_hz: 50.0,
            step_frequency_hz: 1.8,
            step_amplitude: 2.4,
            amplitude_jitter: 0.15,
            accel_noise: 0.25,
            gyro_noise: 0.02,
            heading_noise: 0.02,
            heading_drift_sigma: 0.06,
            heading_drift_tau_s: 20.0,
            turn_duration_s: 1.2,
            phone_ypr: [0.3, -0.4, 0.15],
        }
    }
}

/// The generated walk: sensor streams plus ground truth.
#[derive(Debug, Clone)]
pub struct WalkSimulation {
    /// Phone-frame IMU samples at the configured rate.
    pub imu: Vec<ImuSample>,
    /// True world-frame trajectory, sampled at the IMU rate.
    pub trajectory: Trajectory,
    /// True step times (acceleration-peak instants).
    pub true_step_times: Vec<f64>,
    /// True turns.
    pub true_turns: Vec<TurnTruth>,
    /// Walking speed used, m/s.
    pub speed_mps: f64,
}

impl WalkSimulation {
    /// Total true walked distance.
    pub fn distance(&self) -> f64 {
        self.trajectory.path_length()
    }

    /// True number of completed steps.
    pub fn true_step_count(&self) -> usize {
        self.true_step_times.len()
    }
}

/// Simulates a scripted walk.
///
/// # Panics
/// Panics on an invalid plan or non-positive rates.
pub fn simulate_walk(plan: &WalkPlan, config: &GaitConfig, seed: u64) -> WalkSimulation {
    plan.validate()
        .unwrap_or_else(|e| panic!("invalid walk plan: {e}"));
    assert!(config.sample_rate_hz > 0.0, "sample rate must be positive");
    assert!(
        config.step_frequency_hz > 0.0,
        "step frequency must be positive"
    );
    assert!(
        config.turn_duration_s > 0.0,
        "turn duration must be positive"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let step_len = step_length_from_frequency(config.step_frequency_hz);
    let speed = step_len * config.step_frequency_hz;
    let dt = 1.0 / config.sample_rate_hz;
    let phone = Mat3::from_ypr(
        config.phone_ypr[0],
        config.phone_ypr[1],
        config.phone_ypr[2],
    );

    // Phase schedule: Walk(leg) [Turn Walk(leg)]...
    enum Phase {
        Walk { duration: f64 },
        Turn { duration: f64, angle: f64 },
    }
    let mut phases = Vec::new();
    for (i, leg) in plan.legs.iter().enumerate() {
        if i > 0 {
            phases.push(Phase::Turn {
                duration: config.turn_duration_s,
                angle: plan.turn_angles[i - 1],
            });
        }
        phases.push(Phase::Walk {
            duration: leg.distance_m / speed,
        });
    }

    let mut imu = Vec::new();
    let mut trajectory = Trajectory::new();
    let mut true_step_times = Vec::new();
    let mut true_turns = Vec::new();

    let mut t = 0.0;
    let mut pos = plan.start.position;
    let mut heading = plan.start.heading;
    let mut gait_phase: f64 = 0.0; // step cycles, fractional
    let mut drift = 0.0; // magnetic disturbance state
    let drift_rho = (-dt / config.heading_drift_tau_s).exp();
    let drift_innov = config.heading_drift_sigma * (1.0 - drift_rho * drift_rho).sqrt();
    let mut amp = config.step_amplitude;

    let emit = |t: f64,
                heading: f64,
                vert_bounce: f64,
                fwd_acc: f64,
                turn_rate: f64,
                drift: f64,
                rng: &mut StdRng| {
        // Earth-frame specific force (accelerometer convention: +g up at
        // rest).
        let ax = fwd_acc * heading.cos();
        let ay = fwd_acc * heading.sin();
        let az = GRAVITY + vert_bounce;
        let noise = |rng: &mut StdRng, s: f64| locble_rf::randn::normal(rng, 0.0, s);
        let earth_acc = [
            ax + noise(rng, config.accel_noise),
            ay + noise(rng, config.accel_noise),
            az + noise(rng, config.accel_noise),
        ];
        let earth_gyro = [
            noise(rng, config.gyro_noise),
            noise(rng, config.gyro_noise),
            turn_rate + noise(rng, config.gyro_noise),
        ];
        // Phone attitude = walker yaw ∘ posture; readings are in the
        // phone frame.
        let attitude = Mat3::rot_z(heading).mul(&phone);
        let inv = attitude.transpose();
        ImuSample {
            t,
            accel: inv.apply(earth_acc),
            gyro: inv.apply(earth_gyro),
            mag_heading: heading + drift + noise(rng, config.heading_noise),
        }
    };

    for phase in &phases {
        match *phase {
            Phase::Walk { duration } => {
                let end = t + duration;
                while t < end - 1e-9 {
                    drift =
                        drift_rho * drift + locble_rf::randn::normal(&mut rng, 0.0, drift_innov);
                    // Step-cycle bookkeeping: record the burst peak at
                    // phase 0.25 of each cycle and redraw the amplitude
                    // each new cycle.
                    let prev_phase = gait_phase;
                    gait_phase += config.step_frequency_hz * dt;
                    let prev_k = (prev_phase - 0.25).floor();
                    let new_k = (gait_phase - 0.25).floor();
                    if new_k > prev_k {
                        true_step_times.push(t);
                        amp = config.step_amplitude
                            * (1.0
                                + config.amplitude_jitter
                                    * locble_rf::randn::standard_normal(&mut rng));
                    }
                    let cyc = 2.0 * std::f64::consts::PI * gait_phase;
                    let vert = amp * cyc.sin() + 0.3 * amp * (2.0 * cyc).sin();
                    let fwd = 0.4 * amp * (cyc + 0.9).cos();

                    imu.push(emit(t, heading, vert, fwd, 0.0, drift, &mut rng));
                    trajectory.push(t, pos);
                    pos += Vec2::from_angle(heading) * (speed * dt);
                    t += dt;
                }
            }
            Phase::Turn { duration, angle } => {
                let start_t = t;
                let end = t + duration;
                while t < end - 1e-9 {
                    drift =
                        drift_rho * drift + locble_rf::randn::normal(&mut rng, 0.0, drift_innov);
                    let tau = (t - start_t) / duration;
                    // Raised-cosine rate bump integrating to `angle`.
                    let rate = angle / duration * (1.0 - (2.0 * std::f64::consts::PI * tau).cos());
                    imu.push(emit(t, heading, 0.0, 0.0, rate, drift, &mut rng));
                    trajectory.push(t, pos);
                    heading += rate * dt;
                    t += dt;
                }
                true_turns.push(TurnTruth {
                    t_start: start_t,
                    t_end: end,
                    angle,
                });
            }
        }
    }
    // Final sample at the end pose.
    imu.push(emit(t, heading, 0.0, 0.0, 0.0, drift, &mut rng));
    trajectory.push(t, pos);

    WalkSimulation {
        imu,
        trajectory,
        true_step_times,
        true_turns,
        speed_mps: speed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_walk(seed: u64) -> WalkSimulation {
        let plan = WalkPlan::l_shape(Pose2::IDENTITY, 4.0, 3.0);
        simulate_walk(&plan, &GaitConfig::default(), seed)
    }

    #[test]
    fn trajectory_ends_at_planned_corner() {
        let sim = l_walk(1);
        let end = sim.trajectory.points().last().unwrap().pos;
        // 4 m east, then 3 m north.
        assert!((end.x - 4.0).abs() < 0.15, "end.x {}", end.x);
        assert!((end.y - 3.0).abs() < 0.15, "end.y {}", end.y);
    }

    #[test]
    fn step_count_matches_distance_over_step_length() {
        let sim = l_walk(2);
        let step_len = step_length_from_frequency(1.8);
        let expected = (7.0 / step_len).floor() as usize;
        let got = sim.true_step_count();
        assert!(
            got.abs_diff(expected) <= 1,
            "expected ~{expected} steps, got {got}"
        );
    }

    #[test]
    fn turn_truth_records_90_degrees() {
        let sim = l_walk(3);
        assert_eq!(sim.true_turns.len(), 1);
        let turn = sim.true_turns[0];
        assert!((turn.angle - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!(turn.t_end > turn.t_start);
    }

    #[test]
    fn gyro_integrates_to_turn_angle() {
        let sim = l_walk(4);
        let turn = sim.true_turns[0];
        let dt = 1.0 / 50.0;
        // Project phone gyro back through the known posture is what the
        // motion tracker does; here we check the magnitude is right by
        // integrating the gyro norm (the turn is the only rotation).
        let integrated: f64 = sim
            .imu
            .iter()
            .filter(|s| s.t >= turn.t_start && s.t < turn.t_end)
            .map(|s| {
                (s.gyro[0] * s.gyro[0] + s.gyro[1] * s.gyro[1] + s.gyro[2] * s.gyro[2]).sqrt() * dt
            })
            .sum();
        assert!(
            (integrated - turn.angle).abs() < 0.12,
            "integrated {integrated:.3} vs {:.3}",
            turn.angle
        );
    }

    #[test]
    fn accel_mean_recovers_gravity_magnitude() {
        let sim = l_walk(5);
        let n = sim.imu.len() as f64;
        let mean: [f64; 3] = sim.imu.iter().fold([0.0; 3], |mut acc, s| {
            for k in 0..3 {
                acc[k] += s.accel[k] / n;
            }
            acc
        });
        let norm = (mean[0] * mean[0] + mean[1] * mean[1] + mean[2] * mean[2]).sqrt();
        assert!((norm - GRAVITY).abs() < 0.35, "gravity norm {norm}");
    }

    #[test]
    fn heading_is_usable_over_short_windows() {
        // §5.2.2: magnetic heading fluctuates but is accurate short-term.
        let sim = l_walk(6);
        let first_leg: Vec<f64> = sim
            .imu
            .iter()
            .take_while(|s| s.t < 1.0)
            .map(|s| s.mag_heading)
            .collect();
        let mean = first_leg.iter().sum::<f64>() / first_leg.len() as f64;
        assert!(mean.abs() < 0.15, "first-leg heading mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = l_walk(7);
        let b = l_walk(7);
        assert_eq!(a.imu.len(), b.imu.len());
        assert_eq!(a.imu[100], b.imu[100]);
        assert_eq!(a.true_step_times, b.true_step_times);
    }

    #[test]
    fn straight_plan_has_no_turns() {
        let plan = WalkPlan::straight(Pose2::IDENTITY, 5.0);
        let sim = simulate_walk(&plan, &GaitConfig::default(), 8);
        assert!(sim.true_turns.is_empty());
        let end = sim.trajectory.points().last().unwrap().pos;
        assert!((end.x - 5.0).abs() < 0.15);
        assert!(end.y.abs() < 1e-9);
    }

    #[test]
    fn speed_comes_from_step_model() {
        let sim = l_walk(9);
        let expected = step_length_from_frequency(1.8) * 1.8;
        assert!((sim.speed_mps - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid walk plan")]
    fn mismatched_turn_count_rejected() {
        let plan = WalkPlan {
            start: Pose2::IDENTITY,
            legs: vec![WalkLeg { distance_m: 1.0 }, WalkLeg { distance_m: 1.0 }],
            turn_angles: vec![],
        };
        simulate_walk(&plan, &GaitConfig::default(), 0);
    }
}
