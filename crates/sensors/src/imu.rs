//! IMU sample types shared between the simulator and the motion tracker.

/// One IMU sample in the *phone* frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuSample {
    /// Sample time, seconds.
    pub t: f64,
    /// Accelerometer reading in the phone frame, m/s², gravity included.
    pub accel: [f64; 3],
    /// Gyroscope reading in the phone frame, rad/s.
    pub gyro: [f64; 3],
    /// Tilt-compensated magnetic heading, radians from the world +x axis
    /// counter-clockwise (what CoreMotion exposes as heading after its
    /// own fusion), including indoor disturbance.
    pub mag_heading: f64,
}

/// Ground truth for one turning maneuver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TurnTruth {
    /// Turn start time, seconds.
    pub t_start: f64,
    /// Turn end time, seconds.
    pub t_end: f64,
    /// Signed turn angle, radians (counter-clockwise positive).
    pub angle: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_are_plain_data() {
        let s = ImuSample {
            t: 0.0,
            accel: [0.0, 0.0, 9.8],
            gyro: [0.0; 3],
            mag_heading: 0.5,
        };
        let t = TurnTruth {
            t_start: 1.0,
            t_end: 2.0,
            angle: 1.57,
        };
        assert_eq!(s, s);
        assert!(t.t_end > t.t_start);
    }
}
