//! Smartphone IMU simulator for the LocBLE reproduction.
//!
//! The paper's data-collection layer reads CoreMotion: accelerometer,
//! gyroscope, magnetometer (§3, §5.2). There is no phone here, so this
//! crate synthesizes those streams from a scripted walk:
//!
//! * [`gait`] — a pedestrian gait model: per-step vertical acceleration
//!   bursts whose frequency sets the step length (the [Li et al. 2012]
//!   relation the paper borrows in §5.2.1), gyroscope bumps during turns,
//!   magnetometer heading with slowly-drifting indoor disturbance
//!   ("magnetic field reading is known to fluctuate in indoor
//!   environments, but it is accurate over a short period time", §5.2.2).
//! * [`mat3`] — minimal 3-D rotation support so the synthetic phone can be
//!   held at an arbitrary posture; `locble-motion`'s coordinate alignment
//!   has to undo it, exactly as the real system uses "the well-known
//!   coordinate alignment for transforming phone coordinate to earth
//!   coordinate" (§5.2).
//! * [`imu`] — the sample types shared with `locble-motion`.
//!
//! The generator also emits ground truth (true trajectory, true step
//! times, true turn intervals) so the motion tracker's accuracy can be
//! scored (paper: 94.77 % step accuracy, 3.45° turn error).

#![warn(missing_docs)]

pub mod gait;
pub mod imu;
pub mod mat3;

pub use gait::{simulate_walk, GaitConfig, WalkLeg, WalkPlan, WalkSimulation};
pub use imu::{ImuSample, TurnTruth};
pub use mat3::Mat3;

/// Standard gravity, m/s².
pub const GRAVITY: f64 = 9.80665;
