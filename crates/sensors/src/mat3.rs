//! Minimal 3×3 rotation matrices.
//!
//! Just enough 3-D algebra to pose the simulated phone: compose intrinsic
//! roll/pitch/yaw rotations, rotate vectors, and transpose (= invert, for
//! rotations). Row-major, right-handed, column vectors.

/// A 3×3 matrix (row-major).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3(pub [[f64; 3]; 3]);

impl Mat3 {
    /// Identity.
    pub const IDENTITY: Mat3 = Mat3([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]);

    /// Rotation about the x axis by `a` radians.
    pub fn rot_x(a: f64) -> Mat3 {
        let (s, c) = a.sin_cos();
        Mat3([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])
    }

    /// Rotation about the y axis by `a` radians.
    pub fn rot_y(a: f64) -> Mat3 {
        let (s, c) = a.sin_cos();
        Mat3([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])
    }

    /// Rotation about the z axis by `a` radians.
    pub fn rot_z(a: f64) -> Mat3 {
        let (s, c) = a.sin_cos();
        Mat3([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
    }

    /// Phone attitude from yaw (z), pitch (y), roll (x), applied in that
    /// order: `R = Rz(yaw)·Ry(pitch)·Rx(roll)`.
    pub fn from_ypr(yaw: f64, pitch: f64, roll: f64) -> Mat3 {
        Mat3::rot_z(yaw)
            .mul(&Mat3::rot_y(pitch))
            .mul(&Mat3::rot_x(roll))
    }

    /// Matrix product.
    pub fn mul(&self, other: &Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.0[i][k] * other.0[k][j]).sum();
            }
        }
        Mat3(out)
    }

    /// Applies the rotation to a vector.
    pub fn apply(&self, v: [f64; 3]) -> [f64; 3] {
        let mut out = [0.0; 3];
        for (i, o) in out.iter_mut().enumerate() {
            *o = (0..3).map(|k| self.0[i][k] * v[k]).sum();
        }
        out
    }

    /// Transpose (the inverse, for a rotation matrix).
    pub fn transpose(&self) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = self.0[j][i];
            }
        }
        Mat3(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn close(a: [f64; 3], b: [f64; 3]) -> bool {
        a.iter().zip(&b).all(|(x, y)| (x - y).abs() < 1e-12)
    }

    #[test]
    fn identity_is_noop() {
        let v = [1.0, -2.0, 3.0];
        assert!(close(Mat3::IDENTITY.apply(v), v));
    }

    #[test]
    fn quarter_turns() {
        assert!(close(
            Mat3::rot_z(FRAC_PI_2).apply([1.0, 0.0, 0.0]),
            [0.0, 1.0, 0.0]
        ));
        assert!(close(
            Mat3::rot_x(FRAC_PI_2).apply([0.0, 1.0, 0.0]),
            [0.0, 0.0, 1.0]
        ));
        assert!(close(
            Mat3::rot_y(FRAC_PI_2).apply([0.0, 0.0, 1.0]),
            [1.0, 0.0, 0.0]
        ));
    }

    #[test]
    fn transpose_inverts_rotation() {
        let r = Mat3::from_ypr(0.4, -0.7, 1.1);
        let v = [0.3, -2.2, 5.0];
        let back = r.transpose().apply(r.apply(v));
        assert!(close(back, v));
    }

    #[test]
    fn rotation_preserves_length() {
        let r = Mat3::from_ypr(1.0, 0.5, -0.3);
        let v = [3.0, 4.0, 12.0];
        let w = r.apply(v);
        let n = |u: [f64; 3]| (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]).sqrt();
        assert!((n(v) - n(w)).abs() < 1e-12);
    }

    #[test]
    fn composition_matches_sequential_application() {
        let a = Mat3::rot_z(0.3);
        let b = Mat3::rot_x(0.8);
        let v = [1.0, 2.0, 3.0];
        let seq = a.apply(b.apply(v));
        let comp = a.mul(&b).apply(v);
        assert!(close(seq, comp));
    }
}
