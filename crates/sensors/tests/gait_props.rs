//! Property tests for the gait simulator: ground-truth consistency for
//! arbitrary walk plans and gait parameters.

use locble_geom::{Pose2, Vec2};
use locble_sensors::{simulate_walk, GaitConfig, WalkLeg, WalkPlan};
use proptest::prelude::*;

fn arb_plan() -> impl Strategy<Value = WalkPlan> {
    (
        1.0..6.0f64,
        1.0..6.0f64,
        -3.0..3.0f64,
        -1.2..1.2f64,
        -8.0..8.0f64,
        -8.0..8.0f64,
    )
        .prop_map(|(leg1, leg2, heading, turn, sx, sy)| WalkPlan {
            start: Pose2::new(Vec2::new(sx, sy), heading),
            legs: vec![WalkLeg { distance_m: leg1 }, WalkLeg { distance_m: leg2 }],
            turn_angles: vec![if turn.abs() < 0.3 { 0.5 } else { turn }],
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The true trajectory walks the planned distance (within sampling
    /// granularity) and starts at the planned pose.
    #[test]
    fn trajectory_matches_plan(plan in arb_plan(), seed in 0u64..500) {
        let sim = simulate_walk(&plan, &GaitConfig::default(), seed);
        let start = sim.trajectory.points().first().expect("non-empty").pos;
        prop_assert!(start.distance(plan.start.position) < 1e-9);
        let planned = plan.total_distance();
        prop_assert!(
            (sim.distance() - planned).abs() < 0.2,
            "walked {:.2} vs planned {planned:.2}", sim.distance()
        );
    }

    /// Step ground truth is consistent with the step-length model.
    #[test]
    fn step_count_matches_distance(plan in arb_plan(), seed in 0u64..500) {
        let cfg = GaitConfig::default();
        let sim = simulate_walk(&plan, &cfg, seed);
        let step_len = locble_sensors::gait::step_length_from_frequency(cfg.step_frequency_hz);
        let expected = (plan.total_distance() / step_len).floor() as usize;
        prop_assert!(
            sim.true_step_count().abs_diff(expected) <= 1,
            "{} steps vs expected ~{expected}", sim.true_step_count()
        );
    }

    /// Turn truth records exactly the planned turns.
    #[test]
    fn turn_truth_matches_plan(plan in arb_plan(), seed in 0u64..500) {
        let sim = simulate_walk(&plan, &GaitConfig::default(), seed);
        prop_assert_eq!(sim.true_turns.len(), plan.turn_angles.len());
        for (truth, &planned) in sim.true_turns.iter().zip(&plan.turn_angles) {
            prop_assert!((truth.angle - planned).abs() < 1e-9);
            prop_assert!(truth.t_end > truth.t_start);
        }
    }

    /// IMU timestamps are strictly increasing and samples are finite.
    #[test]
    fn imu_stream_is_wellformed(plan in arb_plan(), seed in 0u64..500) {
        let sim = simulate_walk(&plan, &GaitConfig::default(), seed);
        for w in sim.imu.windows(2) {
            prop_assert!(w[1].t > w[0].t);
        }
        for s in &sim.imu {
            prop_assert!(s.accel.iter().all(|a| a.is_finite()));
            prop_assert!(s.gyro.iter().all(|g| g.is_finite()));
            prop_assert!(s.mag_heading.is_finite());
        }
    }
}
