//! Bit-exact binary codec for durable state, reusing the wire idiom
//! from `locble-net`: integers big-endian, every `f64` as its IEEE-754
//! bit pattern in a big-endian `u64`, option flags as single bytes,
//! variable-length sequences as a `u32` count validated against the
//! bytes actually present before any allocation. The decoder is total:
//! for any byte slice it returns a value or a typed [`CodecError`],
//! never a panic.

use locble_ble::BeaconId;
use locble_core::{
    BackendState, FingerprintState, FitMethod, LocationEstimate, ParticleState, StreamingState,
};
use locble_engine::{Advert, BeaconSessionState, EngineState, EngineStats, SessionState};
use locble_geom::{EnvClass, TimedPoint, Trajectory, Vec2};
use locble_motion::{DetectedTurn, MotionTrack, StepResult};

/// Why a byte slice did not decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The slice ends before the value does.
    Truncated {
        /// What was being parsed when the bytes ran out.
        context: &'static str,
    },
    /// The bytes contradict their own layout (bad discriminant, count
    /// larger than the remaining bytes, trailing garbage).
    Malformed {
        /// What the decoder was parsing when it gave up.
        context: &'static str,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { context } => write!(f, "truncated while reading {context}"),
            CodecError::Malformed { context } => write!(f, "malformed {context}"),
        }
    }
}

impl std::error::Error for CodecError {}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_f64(out, v);
    }
}

pub fn put_advert(out: &mut Vec<u8>, a: &Advert) {
    put_u32(out, a.beacon.0);
    put_f64(out, a.t);
    put_f64(out, a.rssi_dbm);
}

fn env_byte(env: Option<EnvClass>) -> u8 {
    match env {
        None => 0,
        Some(EnvClass::Los) => 1,
        Some(EnvClass::PartialLos) => 2,
        Some(EnvClass::NonLos) => 3,
    }
}

fn put_estimate(out: &mut Vec<u8>, e: &LocationEstimate) {
    put_f64(out, e.position.x);
    put_f64(out, e.position.y);
    match e.mirror {
        Some(m) => {
            out.push(1);
            put_f64(out, m.x);
            put_f64(out, m.y);
        }
        None => out.push(0),
    }
    put_f64(out, e.confidence);
    put_f64(out, e.exponent);
    put_f64(out, e.gamma_dbm);
    out.push(env_byte(e.env));
    put_u64(out, e.points_used as u64);
    out.push(match e.method {
        FitMethod::FreeJoint => 1,
        FitMethod::Anchored => 2,
        FitMethod::Leg => 3,
        FitMethod::Gradient => 4,
        FitMethod::Particle => 5,
        FitMethod::Fingerprint => 6,
    });
    put_f64(out, e.residual_db);
}

fn put_estimate_opt(out: &mut Vec<u8>, e: &Option<LocationEstimate>) {
    match e {
        Some(e) => {
            out.push(1);
            put_estimate(out, e);
        }
        None => out.push(0),
    }
}

fn put_streaming(out: &mut Vec<u8>, s: &StreamingState) {
    put_f64s(out, &s.series_t);
    put_f64s(out, &s.series_v);
    put_u64(out, s.restarts as u64);
    put_estimate_opt(out, &s.current);
    put_u64(out, s.refit_stride as u64);
    put_u64(out, s.batches_since_refit as u64);
    out.push(env_byte(s.env_current));
    match s.env_pending {
        Some((class, votes)) => {
            out.push(env_byte(Some(class)));
            put_u64(out, votes as u64);
        }
        None => out.push(0),
    }
}

fn put_particle(out: &mut Vec<u8>, s: &ParticleState) {
    put_f64s(out, &s.xs);
    put_f64s(out, &s.ys);
    put_f64s(out, &s.log_w);
    put_u64(out, s.rng);
    put_u64(out, s.batches);
    put_u64(out, s.samples);
    put_u64(out, s.resamples);
    put_estimate_opt(out, &s.current);
}

fn put_fingerprint(out: &mut Vec<u8>, s: &FingerprintState) {
    put_f64s(out, &s.series_t);
    put_f64s(out, &s.series_v);
    put_u64(out, s.refit_stride as u64);
    put_u64(out, s.batches_since_refit as u64);
    put_u64(out, s.batches);
    put_estimate_opt(out, &s.current);
}

/// Serializes a backend-tagged session state: one discriminant byte,
/// then the backend's own payload. The tag is what lets restore refuse
/// a snapshot exported under a different backend with a typed error
/// instead of misreading bytes.
fn put_backend_state(out: &mut Vec<u8>, s: &BackendState) {
    match s {
        BackendState::Streaming(s) => {
            out.push(1);
            put_streaming(out, s);
        }
        BackendState::Particle(s) => {
            out.push(2);
            put_particle(out, s);
        }
        BackendState::Fingerprint(s) => {
            out.push(3);
            put_fingerprint(out, s);
        }
    }
}

fn put_motion(out: &mut Vec<u8>, m: &MotionTrack) {
    let points = m.trajectory.points();
    put_u32(out, points.len() as u32);
    for p in points {
        put_f64(out, p.t);
        put_f64(out, p.pos.x);
        put_f64(out, p.pos.y);
    }
    put_f64s(out, &m.steps.step_times);
    put_f64(out, m.steps.frequency_hz);
    put_f64(out, m.steps.step_length_m);
    put_f64(out, m.steps.distance_m);
    put_u32(out, m.turns.len() as u32);
    for t in &m.turns {
        put_f64(out, t.t_start);
        put_f64(out, t.t_end);
        put_f64(out, t.angle);
        put_f64(out, t.gyro_angle);
    }
}

fn put_stats(out: &mut Vec<u8>, s: &EngineStats) {
    for v in [
        s.samples_routed,
        s.samples_rejected,
        s.samples_processed,
        s.sessions_created,
        s.sessions_evicted,
        s.sessions_live as u64,
        s.batches_pushed,
        s.batches_rejected,
        s.processes,
    ] {
        put_u64(out, v);
    }
}

/// Serializes a complete [`EngineState`].
pub fn put_engine_state(out: &mut Vec<u8>, state: &EngineState) {
    put_u32(out, state.shards as u32);
    put_f64(out, state.watermark);
    put_stats(out, &state.stats);
    put_motion(out, &state.motion);
    put_u32(out, state.sessions.len() as u32);
    for s in &state.sessions {
        put_u32(out, s.beacon.0);
        put_u64(out, s.shard as u64);
        put_f64(out, s.last_t);
        put_f64(out, s.created_t);
        put_u64(out, s.samples_routed);
        match &s.session {
            Some(b) => {
                out.push(1);
                put_backend_state(out, &b.estimator);
                put_f64s(out, &b.batch_t);
                put_f64s(out, &b.batch_v);
                put_f64(out, b.batch_start);
                put_u64(out, b.samples);
                put_u64(out, b.batches);
            }
            None => out.push(0),
        }
    }
    put_u32(out, state.queued.len() as u32);
    for queue in &state.queued {
        put_u32(out, queue.len() as u32);
        for a in queue {
            put_advert(out, a);
        }
    }
}

/// Bounds-checked reader over a decoded body.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self, context: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, context)?[0])
    }

    pub fn u32(&mut self, context: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, context)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self, context: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, context)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn f64(&mut self, context: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a `u32` element count and validates it against the bytes
    /// actually present (`min_item` each), so a corrupt count cannot
    /// drive allocation.
    pub fn counted(&mut self, min_item: usize, context: &'static str) -> Result<usize, CodecError> {
        let n = self.u32(context)? as usize;
        if n.saturating_mul(min_item) > self.remaining() {
            return Err(CodecError::Malformed { context });
        }
        Ok(n)
    }

    fn f64s(&mut self, context: &'static str) -> Result<Vec<f64>, CodecError> {
        let n = self.counted(8, context)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64(context)?);
        }
        Ok(out)
    }

    /// Decodes one advert.
    pub fn advert(&mut self) -> Result<Advert, CodecError> {
        Ok(Advert {
            beacon: BeaconId(self.u32("advert beacon")?),
            t: self.f64("advert t")?,
            rssi_dbm: self.f64("advert rssi")?,
        })
    }

    fn env(&mut self, context: &'static str) -> Result<Option<EnvClass>, CodecError> {
        match self.u8(context)? {
            0 => Ok(None),
            1 => Ok(Some(EnvClass::Los)),
            2 => Ok(Some(EnvClass::PartialLos)),
            3 => Ok(Some(EnvClass::NonLos)),
            _ => Err(CodecError::Malformed { context }),
        }
    }

    fn estimate(&mut self) -> Result<LocationEstimate, CodecError> {
        let x = self.f64("estimate x")?;
        let y = self.f64("estimate y")?;
        let mirror = match self.u8("mirror flag")? {
            0 => None,
            1 => Some(Vec2::new(self.f64("mirror x")?, self.f64("mirror y")?)),
            _ => {
                return Err(CodecError::Malformed {
                    context: "mirror flag",
                })
            }
        };
        let confidence = self.f64("confidence")?;
        let exponent = self.f64("exponent")?;
        let gamma_dbm = self.f64("gamma")?;
        let env = self.env("estimate env")?;
        let points_used = self.u64("points_used")? as usize;
        let method = match self.u8("fit method")? {
            1 => FitMethod::FreeJoint,
            2 => FitMethod::Anchored,
            3 => FitMethod::Leg,
            4 => FitMethod::Gradient,
            5 => FitMethod::Particle,
            6 => FitMethod::Fingerprint,
            _ => {
                return Err(CodecError::Malformed {
                    context: "fit method",
                })
            }
        };
        let residual_db = self.f64("residual")?;
        Ok(LocationEstimate {
            position: Vec2::new(x, y),
            mirror,
            confidence,
            exponent,
            gamma_dbm,
            env,
            points_used,
            method,
            residual_db,
        })
    }

    fn estimate_opt(&mut self) -> Result<Option<LocationEstimate>, CodecError> {
        match self.u8("estimate flag")? {
            0 => Ok(None),
            1 => Ok(Some(self.estimate()?)),
            _ => Err(CodecError::Malformed {
                context: "estimate flag",
            }),
        }
    }

    fn streaming(&mut self) -> Result<StreamingState, CodecError> {
        let series_t = self.f64s("series_t")?;
        let series_v = self.f64s("series_v")?;
        if series_t.len() != series_v.len() {
            return Err(CodecError::Malformed {
                context: "series length mismatch",
            });
        }
        let restarts = self.u64("restarts")? as usize;
        let current = self.estimate_opt()?;
        let refit_stride = self.u64("refit_stride")? as usize;
        let batches_since_refit = self.u64("batches_since_refit")? as usize;
        let env_current = self.env("env_current")?;
        let env_pending = match self.u8("env_pending")? {
            0 => None,
            b @ 1..=3 => {
                let class = match b {
                    1 => EnvClass::Los,
                    2 => EnvClass::PartialLos,
                    _ => EnvClass::NonLos,
                };
                Some((class, self.u64("pending votes")? as usize))
            }
            _ => {
                return Err(CodecError::Malformed {
                    context: "env_pending",
                })
            }
        };
        Ok(StreamingState {
            series_t,
            series_v,
            restarts,
            current,
            refit_stride,
            batches_since_refit,
            env_current,
            env_pending,
        })
    }

    fn particle(&mut self) -> Result<ParticleState, CodecError> {
        let xs = self.f64s("particle xs")?;
        let ys = self.f64s("particle ys")?;
        let log_w = self.f64s("particle log_w")?;
        if xs.len() != ys.len() || xs.len() != log_w.len() {
            return Err(CodecError::Malformed {
                context: "particle cloud length mismatch",
            });
        }
        Ok(ParticleState {
            xs,
            ys,
            log_w,
            rng: self.u64("particle rng")?,
            batches: self.u64("particle batches")?,
            samples: self.u64("particle samples")?,
            resamples: self.u64("particle resamples")?,
            current: self.estimate_opt()?,
        })
    }

    fn fingerprint(&mut self) -> Result<FingerprintState, CodecError> {
        let series_t = self.f64s("fingerprint series_t")?;
        let series_v = self.f64s("fingerprint series_v")?;
        if series_t.len() != series_v.len() {
            return Err(CodecError::Malformed {
                context: "fingerprint series length mismatch",
            });
        }
        Ok(FingerprintState {
            series_t,
            series_v,
            refit_stride: self.u64("fingerprint refit_stride")? as usize,
            batches_since_refit: self.u64("fingerprint batches_since_refit")? as usize,
            batches: self.u64("fingerprint batches")?,
            current: self.estimate_opt()?,
        })
    }

    /// Decodes a backend-tagged session state (see `put_backend_state`).
    fn backend_state(&mut self) -> Result<BackendState, CodecError> {
        match self.u8("backend tag")? {
            1 => Ok(BackendState::Streaming(self.streaming()?)),
            2 => Ok(BackendState::Particle(self.particle()?)),
            3 => Ok(BackendState::Fingerprint(self.fingerprint()?)),
            _ => Err(CodecError::Malformed {
                context: "backend tag",
            }),
        }
    }

    fn motion(&mut self) -> Result<MotionTrack, CodecError> {
        let n_points = self.counted(24, "trajectory points")?;
        let mut points = Vec::with_capacity(n_points);
        for _ in 0..n_points {
            let t = self.f64("point t")?;
            let x = self.f64("point x")?;
            let y = self.f64("point y")?;
            points.push(TimedPoint {
                t,
                pos: Vec2::new(x, y),
            });
        }
        let step_times = self.f64s("step_times")?;
        let frequency_hz = self.f64("frequency_hz")?;
        let step_length_m = self.f64("step_length_m")?;
        let distance_m = self.f64("distance_m")?;
        let n_turns = self.counted(32, "turns")?;
        let mut turns = Vec::with_capacity(n_turns);
        for _ in 0..n_turns {
            turns.push(DetectedTurn {
                t_start: self.f64("turn t_start")?,
                t_end: self.f64("turn t_end")?,
                angle: self.f64("turn angle")?,
                gyro_angle: self.f64("turn gyro_angle")?,
            });
        }
        Ok(MotionTrack {
            trajectory: Trajectory::from_points(points),
            steps: StepResult {
                step_times,
                frequency_hz,
                step_length_m,
                distance_m,
            },
            turns,
        })
    }

    fn stats(&mut self) -> Result<EngineStats, CodecError> {
        Ok(EngineStats {
            samples_routed: self.u64("samples_routed")?,
            samples_rejected: self.u64("samples_rejected")?,
            samples_processed: self.u64("samples_processed")?,
            sessions_created: self.u64("sessions_created")?,
            sessions_evicted: self.u64("sessions_evicted")?,
            sessions_live: self.u64("sessions_live")? as usize,
            batches_pushed: self.u64("batches_pushed")?,
            batches_rejected: self.u64("batches_rejected")?,
            processes: self.u64("processes")?,
        })
    }

    /// Decodes a complete [`EngineState`]; rejects trailing bytes.
    pub fn engine_state(&mut self) -> Result<EngineState, CodecError> {
        let shards = self.u32("shards")? as usize;
        let watermark = self.f64("watermark")?;
        let stats = self.stats()?;
        let motion = self.motion()?;
        let n_sessions = self.counted(29, "sessions")?;
        let mut sessions = Vec::with_capacity(n_sessions);
        for _ in 0..n_sessions {
            let beacon = BeaconId(self.u32("session beacon")?);
            let shard = self.u64("session shard")? as usize;
            let last_t = self.f64("session last_t")?;
            let created_t = self.f64("session created_t")?;
            let samples_routed = self.u64("session samples_routed")?;
            let session = match self.u8("session flag")? {
                0 => None,
                1 => {
                    let estimator = self.backend_state()?;
                    let batch_t = self.f64s("batch_t")?;
                    let batch_v = self.f64s("batch_v")?;
                    if batch_t.len() != batch_v.len() {
                        return Err(CodecError::Malformed {
                            context: "batch length mismatch",
                        });
                    }
                    Some(BeaconSessionState {
                        estimator,
                        batch_t,
                        batch_v,
                        batch_start: self.f64("batch_start")?,
                        samples: self.u64("session samples")?,
                        batches: self.u64("session batches")?,
                    })
                }
                _ => {
                    return Err(CodecError::Malformed {
                        context: "session flag",
                    })
                }
            };
            sessions.push(SessionState {
                beacon,
                shard,
                last_t,
                created_t,
                samples_routed,
                session,
            });
        }
        let n_queues = self.counted(4, "shard queues")?;
        if n_queues != shards {
            return Err(CodecError::Malformed {
                context: "queue count does not match shard count",
            });
        }
        let mut queued = Vec::with_capacity(n_queues);
        for _ in 0..n_queues {
            let n = self.counted(20, "queued adverts")?;
            let mut q = Vec::with_capacity(n);
            for _ in 0..n {
                q.push(self.advert()?);
            }
            queued.push(q);
        }
        if self.remaining() != 0 {
            return Err(CodecError::Malformed {
                context: "trailing bytes after engine state",
            });
        }
        Ok(EngineState {
            shards,
            watermark,
            stats,
            motion,
            sessions,
            queued,
        })
    }
}
