//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the guard
//! on every WAL record and snapshot body. Table-driven, built at
//! compile time; no dependencies.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (initial value `0xFFFFFFFF`, final XOR-out).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = b"locble wal record".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
