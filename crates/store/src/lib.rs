//! # locble-store — crash-safe session durability
//!
//! The estimation engine ([`locble_engine::Engine`]) is deterministic:
//! the same advert stream produces bit-identical estimates and
//! counters. This crate extends that guarantee across crashes with two
//! std-only pieces:
//!
//! * **WAL** ([`wal`]): every advert *offered* to the engine, logged in
//!   offer order before ingest, one CRC-guarded length-prefixed record
//!   each. A torn final record (the signature of a crash mid-write) is
//!   detected and tolerated.
//! * **Snapshots** ([`snapshot`]): the engine's complete state
//!   ([`locble_engine::EngineState`]) written atomically
//!   (tmp + rename), stamped with the WAL position it covers.
//!
//! Recovery ([`SessionStore::recover`]) loads the snapshot, replays the
//! WAL tail through the *normal ingest path*, and yields an engine
//! bit-identical to one that never crashed — same estimates (compared
//! as IEEE-754 bit patterns), same admit/reject counters. The
//! serialization reuses the `locble-net` wire idiom: big-endian
//! integers, `f64::to_bits` for floats, so NaN payloads survive
//! round-trips exactly.
//!
//! ```
//! use locble_engine::{Advert, Engine, EngineConfig};
//! use locble_store::{FsyncPolicy, SessionStore};
//! use locble_ble::BeaconId;
//! use locble_core::Estimator;
//! use locble_obs::Obs;
//!
//! let dir = std::env::temp_dir().join(format!("locble-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let config = EngineConfig { shards: 2, ..EngineConfig::default() };
//!
//! // Session: log first, then ingest.
//! let mut store = SessionStore::open(&dir, FsyncPolicy::EveryAppend, Obs::noop()).unwrap();
//! let mut engine = Engine::new(config.clone(), Estimator::new(Default::default()), Obs::noop());
//! let batch = [Advert { beacon: BeaconId(7), t: 0.1, rssi_dbm: -63.0 }];
//! store.append(&batch).unwrap();
//! engine.ingest_all(&batch);
//! store.checkpoint(&engine).unwrap();
//! drop((store, engine)); // crash here — or anywhere
//!
//! // Recovery: bit-identical engine, ready to keep appending.
//! let (_store, recovered, report) = SessionStore::recover(
//!     &dir,
//!     FsyncPolicy::EveryAppend,
//!     config,
//!     Estimator::new(Default::default()),
//!     Obs::noop(),
//! )
//! .unwrap();
//! assert!(report.snapshot_found);
//! assert_eq!(recovered.stats().samples_routed, 1);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod codec;
pub mod crc32;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use snapshot::{read_snapshot, write_snapshot, Snapshot, SnapshotError};
pub use store::{RecoverError, RecoveryReport, SessionStore, SNAPSHOT_FILE, WAL_FILE};
pub use wal::{parse_wal, read_wal, FsyncPolicy, Wal, WalReadReport, WalTailer};
