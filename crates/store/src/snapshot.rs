//! Engine snapshots: the full [`EngineState`] plus the WAL position it
//! was taken at, in one CRC-guarded, atomically-replaced file.
//!
//! File layout (integers big-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "LBSN"
//! 4       1     format version (currently 1)
//! 5       4     body length N (u32)
//! 9       N     body: wal_records u64, then the EngineState codec
//! 9+N     4     CRC-32 of the body
//! ```
//!
//! `wal_records` is the number of WAL records already *folded into*
//! this state. Recovery replays only records after that position —
//! position-based skipping is what makes replay idempotent even though
//! duplicate adverts (equal timestamps are legal) would be re-admitted
//! by the engine itself.
//!
//! Writes go to a `.tmp` sibling, are fsynced, then renamed over the
//! live file, so a crash mid-checkpoint leaves the previous snapshot
//! untouched. A missing file reads as "no snapshot"; a damaged one is
//! an error (the caller decides whether to fall back to WAL-only
//! recovery or surface it).

use crate::codec::{put_u64, CodecError, Reader};
use crate::crc32::crc32;
use locble_engine::EngineState;
use std::io::Write as _;
use std::path::Path;

const MAGIC: [u8; 4] = *b"LBSN";
const VERSION: u8 = 1;

/// Why a snapshot file could not be loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file does not start with the `LBSN` magic.
    BadMagic,
    /// The format version is newer than this build understands.
    BadVersion(u8),
    /// The file is shorter than its header claims.
    Truncated,
    /// The body CRC does not match — the file is damaged.
    CrcMismatch,
    /// The body CRC matched but the state did not decode.
    Codec(CodecError),
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "snapshot: bad magic"),
            SnapshotError::BadVersion(v) => write!(f, "snapshot: unsupported version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot: file shorter than header claims"),
            SnapshotError::CrcMismatch => write!(f, "snapshot: body CRC mismatch"),
            SnapshotError::Codec(e) => write!(f, "snapshot: {e}"),
            SnapshotError::Io(e) => write!(f, "snapshot: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> Self {
        SnapshotError::Codec(e)
    }
}

/// A decoded snapshot: the engine state and the WAL position it covers.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// WAL records already folded into `state`.
    pub wal_records: u64,
    /// The engine state at that position.
    pub state: EngineState,
}

/// Serializes a snapshot to its file image.
pub fn encode_snapshot(wal_records: u64, state: &EngineState) -> Vec<u8> {
    let mut body = Vec::new();
    put_u64(&mut body, wal_records);
    crate::codec::put_engine_state(&mut body, state);
    let mut out = Vec::with_capacity(body.len() + 13);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_be_bytes());
    out
}

/// Decodes a snapshot file image.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    if bytes.len() < 9 {
        return Err(
            if bytes.get(..bytes.len().min(4)) == Some(&MAGIC[..bytes.len().min(4)]) {
                SnapshotError::Truncated
            } else {
                SnapshotError::BadMagic
            },
        );
    }
    if bytes[..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes[4] != VERSION {
        return Err(SnapshotError::BadVersion(bytes[4]));
    }
    let body_len = u32::from_be_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]) as usize;
    let Some(body) = bytes.get(9..9 + body_len) else {
        return Err(SnapshotError::Truncated);
    };
    let Some(crc_bytes) = bytes.get(9 + body_len..9 + body_len + 4) else {
        return Err(SnapshotError::Truncated);
    };
    let crc = u32::from_be_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(body) != crc {
        return Err(SnapshotError::CrcMismatch);
    }
    let mut reader = Reader::new(body);
    let wal_records = reader.u64("snapshot wal position")?;
    let state = reader.engine_state()?;
    Ok(Snapshot { wal_records, state })
}

/// Writes a snapshot atomically: tmp file, fsync, rename over `path`.
/// Returns the file size in bytes.
pub fn write_snapshot(path: &Path, wal_records: u64, state: &EngineState) -> std::io::Result<u64> {
    let image = encode_snapshot(wal_records, state);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&image)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(image.len() as u64)
}

/// Reads the snapshot at `path`. A missing file is `Ok(None)`.
pub fn read_snapshot(path: &Path) -> Result<Option<Snapshot>, SnapshotError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(SnapshotError::Io(e)),
    };
    decode_snapshot(&bytes).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use locble_geom::Trajectory;
    use locble_motion::{MotionTrack, StepResult};

    fn empty_state(shards: usize) -> EngineState {
        EngineState {
            shards,
            watermark: 12.5,
            stats: Default::default(),
            motion: MotionTrack {
                trajectory: Trajectory::new(),
                steps: StepResult {
                    step_times: Vec::new(),
                    frequency_hz: 0.0,
                    step_length_m: 0.0,
                    distance_m: 0.0,
                },
                turns: Vec::new(),
            },
            sessions: Vec::new(),
            queued: vec![Vec::new(); shards],
        }
    }

    #[test]
    fn roundtrip_empty_state() {
        let image = encode_snapshot(42, &empty_state(4));
        let snap = decode_snapshot(&image).expect("decode");
        assert_eq!(snap.wal_records, 42);
        assert_eq!(snap.state.shards, 4);
        assert_eq!(snap.state.watermark.to_bits(), 12.5f64.to_bits());
    }

    #[test]
    fn damage_is_detected() {
        let image = encode_snapshot(7, &empty_state(2));
        // Magic.
        let mut bad = image.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            decode_snapshot(&bad),
            Err(SnapshotError::BadMagic)
        ));
        // Version.
        let mut bad = image.clone();
        bad[4] = 99;
        assert!(matches!(
            decode_snapshot(&bad),
            Err(SnapshotError::BadVersion(99))
        ));
        // Truncation at every prefix shorter than the full image.
        for cut in 0..image.len() {
            let r = decode_snapshot(&image[..cut]);
            assert!(r.is_err(), "truncation at {cut} must not decode");
        }
        // Body corruption.
        let mut bad = image.clone();
        bad[15] ^= 0x01;
        assert!(matches!(
            decode_snapshot(&bad),
            Err(SnapshotError::CrcMismatch)
        ));
    }

    #[test]
    fn atomic_write_and_missing_file() {
        let mut path = std::env::temp_dir();
        path.push(format!("locble-snap-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        assert!(read_snapshot(&path).expect("missing is None").is_none());
        let bytes = write_snapshot(&path, 3, &empty_state(1)).expect("write");
        assert!(bytes > 0);
        let snap = read_snapshot(&path).expect("read").expect("present");
        assert_eq!(snap.wal_records, 3);
        // Overwrite is atomic (tmp sibling must not survive).
        write_snapshot(&path, 9, &empty_state(1)).expect("rewrite");
        assert!(!path.with_extension("tmp").exists());
        let snap = read_snapshot(&path).expect("read").expect("present");
        assert_eq!(snap.wal_records, 9);
        let _ = std::fs::remove_file(&path);
    }
}
