//! The durability facade: one directory holding a WAL (`wal.log`) and
//! the latest snapshot (`snapshot.bin`), with a recovery path that
//! rebuilds an [`Engine`] bit-identical to the uninterrupted run.
//!
//! Write path (the server's ingest loop, under the engine lock):
//!
//! 1. [`SessionStore::append`] every *offered* batch **before**
//!    handing it to [`Engine::ingest`] — offered-before-ingest is the
//!    "write-ahead" in WAL: an advert the engine saw is always on disk
//!    first, so a crash between the two replays it instead of losing it.
//! 2. [`SessionStore::checkpoint`] periodically and at shutdown. The
//!    snapshot records the WAL position it covers; older records become
//!    dead weight (skipped on recovery) but are never needed again.
//!
//! Recovery ordering ([`SessionStore::recover`]): read the snapshot (if
//! any) → read the WAL, tolerating a torn tail → skip the first
//! `snapshot.wal_records` records (position-based skipping is the
//! idempotence mechanism: duplicate adverts carry legal equal
//! timestamps, so replaying them would double-count) → feed the tail
//! through [`Engine::restore`], which replays via normal ingest.

use crate::snapshot::{read_snapshot, write_snapshot, SnapshotError};
use crate::wal::{read_wal, FsyncPolicy, Wal, ADVERT_RECORD_LEN};
use locble_core::Estimator;
use locble_engine::{Advert, Engine, EngineConfig, IngestReport, RestoreError};
use locble_obs::Obs;
use std::path::{Path, PathBuf};

/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";
/// Snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// Why recovery failed. Torn WAL tails and missing files are *not*
/// errors — they are the expected aftermath of a crash.
#[derive(Debug)]
pub enum RecoverError {
    /// A filesystem operation failed.
    Io(std::io::Error),
    /// The snapshot file exists but is damaged beyond its CRC guard.
    Snapshot(SnapshotError),
    /// The snapshot decoded but the engine rejected it (config
    /// mismatch, e.g. different shard count).
    Restore(RestoreError),
    /// The snapshot claims more WAL records than the log holds — the
    /// two files are from different sessions or the WAL was truncated
    /// below the checkpoint. Refusing beats silently replaying the
    /// wrong tail.
    WalBehindSnapshot {
        /// Intact records found in the WAL.
        wal_records: u64,
        /// Records the snapshot claims were already folded in.
        snapshot_records: u64,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "recover: {e}"),
            RecoverError::Snapshot(e) => write!(f, "recover: {e}"),
            RecoverError::Restore(e) => write!(f, "recover: {e}"),
            RecoverError::WalBehindSnapshot {
                wal_records,
                snapshot_records,
            } => write!(
                f,
                "recover: WAL has {wal_records} records but the snapshot \
                 covers {snapshot_records} — mismatched session files"
            ),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<std::io::Error> for RecoverError {
    fn from(e: std::io::Error) -> Self {
        RecoverError::Io(e)
    }
}

impl From<SnapshotError> for RecoverError {
    fn from(e: SnapshotError) -> Self {
        RecoverError::Snapshot(e)
    }
}

impl From<RestoreError> for RecoverError {
    fn from(e: RestoreError) -> Self {
        RecoverError::Restore(e)
    }
}

/// What [`SessionStore::recover`] found and did.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// A snapshot file was present and valid.
    pub snapshot_found: bool,
    /// Intact records in the WAL.
    pub wal_records: u64,
    /// Records replayed through ingest (the tail past the snapshot).
    pub replayed: u64,
    /// Records skipped because the snapshot already covered them.
    pub skipped: u64,
    /// The WAL ended in a torn record (tolerated, truncated on open).
    pub torn_tail: bool,
    /// Wall-clock recovery time, milliseconds.
    pub recovery_ms: f64,
    /// The folded ingest report of the replay — reconciles with the
    /// uninterrupted run's reports for the same adverts.
    pub replay: IngestReport,
}

/// An open durability directory: appendable WAL plus snapshot slot.
#[derive(Debug)]
pub struct SessionStore {
    dir: PathBuf,
    wal: Wal,
    obs: Obs,
}

impl SessionStore {
    /// Opens (creating if needed) the durability directory for a fresh
    /// session. Existing WAL records are preserved and appended after;
    /// use [`SessionStore::recover`] instead when state should be
    /// rebuilt from them.
    pub fn open(dir: &Path, policy: FsyncPolicy, obs: Obs) -> std::io::Result<SessionStore> {
        std::fs::create_dir_all(dir)?;
        let (wal, report) = Wal::open(&dir.join(WAL_FILE), policy)?;
        if report.torn_tail {
            obs.counter_add("store.torn_tails", 1);
        }
        Ok(SessionStore {
            dir: dir.to_path_buf(),
            wal,
            obs,
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total records in the WAL (pre-existing + appended).
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    /// Logs one offered batch, in offer order, before it reaches the
    /// engine. Returns the WAL record count after the append.
    pub fn append(&mut self, adverts: &[Advert]) -> std::io::Result<u64> {
        let records = self.wal.append(adverts)?;
        // Hoisted behind the enabled check so the hot append path pays
        // nothing — not even the byte arithmetic — under a noop handle.
        if self.obs.enabled() {
            self.obs
                .counter_add("store.wal_appends", adverts.len() as u64);
            self.obs.counter_add(
                "store.wal_bytes",
                (adverts.len() * ADVERT_RECORD_LEN) as u64,
            );
        }
        Ok(records)
    }

    /// Forces appended records to stable storage regardless of policy.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.wal.sync()
    }

    /// Snapshots the engine's current state, stamped with the current
    /// WAL position. Call with the engine lock held (or otherwise
    /// quiesced relative to [`SessionStore::append`]) so the position
    /// and the state agree. Returns the snapshot size in bytes.
    pub fn checkpoint(&mut self, engine: &Engine) -> std::io::Result<u64> {
        // Records appended but not yet synced must be durable before
        // the snapshot claims to cover them: if the rename landed and
        // the tail didn't, recovery would skip records that never made
        // it to disk.
        self.wal.sync()?;
        let bytes = write_snapshot(
            &self.dir.join(SNAPSHOT_FILE),
            self.wal.records(),
            &engine.export_state(),
        )?;
        self.obs.counter_add("store.snapshots", 1);
        self.obs.gauge_set("store.snapshot_bytes", bytes as f64);
        Ok(bytes)
    }

    /// Rebuilds the engine from the directory's snapshot + WAL tail and
    /// returns the store re-opened for appending. `config` and
    /// `prototype` must match the crashed session's (they are not
    /// persisted — they are code/deployment configuration, not state).
    pub fn recover(
        dir: &Path,
        policy: FsyncPolicy,
        config: EngineConfig,
        prototype: Estimator,
        obs: Obs,
    ) -> Result<(SessionStore, Engine, RecoveryReport), RecoverError> {
        let started = std::time::Instant::now();
        std::fs::create_dir_all(dir)?;
        let snapshot = read_snapshot(&dir.join(SNAPSHOT_FILE))?;
        let (adverts, wal_report) = read_wal(&dir.join(WAL_FILE))?;

        let skipped = snapshot.as_ref().map_or(0, |s| s.wal_records);
        if skipped > wal_report.records {
            return Err(RecoverError::WalBehindSnapshot {
                wal_records: wal_report.records,
                snapshot_records: skipped,
            });
        }
        let tail = &adverts[skipped as usize..];

        let snapshot_found = snapshot.is_some();
        let (engine, replay) = match snapshot {
            Some(s) => Engine::restore(config, prototype, obs.clone(), s.state, tail)?,
            None => {
                // WAL-only recovery: a crash before the first
                // checkpoint. Replay the whole log into a fresh engine.
                let mut engine = Engine::new(config, prototype, obs.clone());
                let replay = engine.ingest_all(tail);
                (engine, replay)
            }
        };

        let store = SessionStore::open(dir, policy, obs.clone())?;
        let report = RecoveryReport {
            snapshot_found,
            wal_records: wal_report.records,
            replayed: tail.len() as u64,
            skipped,
            torn_tail: wal_report.torn_tail,
            recovery_ms: started.elapsed().as_secs_f64() * 1e3,
            replay,
        };
        obs.counter_add("store.recoveries", 1);
        obs.counter_add("store.replayed", report.replayed);
        obs.gauge_set("store.recovery_ms", report.recovery_ms);
        Ok((store, engine, report))
    }
}
