//! The write-ahead log: every advert *offered* to the engine, in offer
//! order, one CRC-guarded record each.
//!
//! Record layout (integers big-endian, `f64`s as IEEE-754 bit
//! patterns — the `locble-net` wire idiom):
//!
//! ```text
//! offset  size  field
//! 0       4     payload length N (u32) — bytes after the CRC word
//! 4       4     CRC-32 of the payload
//! 8       1     record tag (1 = advert)
//! 9       N-1   tag-specific body (advert: beacon u32, t u64, rssi u64)
//! ```
//!
//! Logging *offered* (pre-validation) adverts is what makes replay
//! exact: the recovered engine re-runs every admit/reject decision
//! through the normal ingest path, so rejection counters — not just
//! estimates — reconcile bit-for-bit with an uninterrupted run.
//!
//! **Torn-tail rule:** a crash can leave a final record with a short
//! header, a short payload, or a CRC mismatch. Readers stop at the
//! first such record and report `torn_tail = true`; everything before
//! it is intact (each record is self-delimiting). Opening the log for
//! append truncates the torn bytes so the next record starts clean —
//! the torn record was never acknowledged as durable, so dropping it
//! loses nothing a correct client hasn't already retried.

use crate::codec::{put_advert, Reader};
use crate::crc32::crc32;
use locble_engine::Advert;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Record tag: one advert.
const TAG_ADVERT: u8 = 1;

/// Bytes of an encoded advert payload (tag + beacon + t + rssi).
const ADVERT_PAYLOAD_LEN: usize = 1 + 4 + 8 + 8;

/// Per-record framing overhead (length prefix + CRC word).
const RECORD_HEADER_LEN: usize = 8;

/// On-disk size of one advert record, header included.
pub const ADVERT_RECORD_LEN: usize = RECORD_HEADER_LEN + ADVERT_PAYLOAD_LEN;

/// Largest payload a reader will accept — a defence against interpreting
/// garbage as a multi-gigabyte record, sized generously above any
/// payload this module writes.
const MAX_PAYLOAD_LEN: usize = 1 << 16;

/// When the log file is forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync (the OS flushes on its own schedule). Fastest;
    /// recent records may be lost on power failure, though not on a
    /// process crash.
    Never,
    /// fsync after every append call — full durability, highest cost.
    EveryAppend,
    /// fsync once every `n` records (counted across append calls).
    EveryN(u64),
}

/// What a full WAL read found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalReadReport {
    /// Intact records decoded.
    pub records: u64,
    /// Bytes of intact records (the offset a torn tail starts at).
    pub intact_bytes: u64,
    /// `true` when trailing bytes did not form a complete, CRC-valid
    /// record (tolerated: the tail is ignored).
    pub torn_tail: bool,
}

/// An open, appendable WAL file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    records: u64,
    appends_since_sync: u64,
    policy: FsyncPolicy,
}

impl Wal {
    /// Opens (or creates) the log at `path` for appending. Existing
    /// intact records are counted; a torn tail is truncated away so new
    /// records start on a clean boundary. Returns the WAL and the read
    /// report of the pre-existing content.
    pub fn open(path: &Path, policy: FsyncPolicy) -> std::io::Result<(Wal, WalReadReport)> {
        let (_, report) = read_wal(path)?;
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        file.set_len(report.intact_bytes)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                records: report.records,
                appends_since_sync: 0,
                policy,
            },
            report,
        ))
    }

    /// Records appended so far (pre-existing + this process).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record per advert, in slice order, then applies the
    /// fsync policy. Returns the number of records now in the log.
    pub fn append(&mut self, adverts: &[Advert]) -> std::io::Result<u64> {
        if adverts.is_empty() {
            return Ok(self.records);
        }
        let mut buf = Vec::with_capacity(adverts.len() * (RECORD_HEADER_LEN + ADVERT_PAYLOAD_LEN));
        let mut payload = Vec::with_capacity(ADVERT_PAYLOAD_LEN);
        for advert in adverts {
            payload.clear();
            payload.push(TAG_ADVERT);
            put_advert(&mut payload, advert);
            buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            buf.extend_from_slice(&crc32(&payload).to_be_bytes());
            buf.extend_from_slice(&payload);
        }
        self.file.write_all(&buf)?;
        self.records += adverts.len() as u64;
        self.appends_since_sync += adverts.len() as u64;
        let sync = match self.policy {
            FsyncPolicy::Never => false,
            FsyncPolicy::EveryAppend => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync >= n.max(1),
        };
        if sync {
            self.file.sync_data()?;
            self.appends_since_sync = 0;
        }
        Ok(self.records)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()?;
        self.appends_since_sync = 0;
        Ok(())
    }
}

/// An incremental reader over a live WAL file — the replication source
/// for streaming an owner's log to a follower node.
///
/// A tailer remembers the byte offset of the last *complete* record it
/// emitted and, on each [`WalTailer::poll`], parses only the bytes
/// appended since. A partial record at the end of the file (an append
/// in flight, or a torn tail after a crash) is left unconsumed: the
/// next poll retries it from the same offset, so a record is emitted
/// exactly once and only when whole and CRC-valid. Corruption below
/// the high-water mark therefore parks the tailer permanently at the
/// damaged record — exactly the torn-tail rule readers already follow.
///
/// The tailer holds no lock and keeps no file handle between polls, so
/// it may trail a [`Wal`] owned by the same process or by another one.
#[derive(Debug)]
pub struct WalTailer {
    path: PathBuf,
    offset: u64,
    records: u64,
}

impl WalTailer {
    /// A tailer positioned at the start of the log at `path` (which may
    /// not exist yet — polls treat a missing file as empty).
    pub fn open(path: &Path) -> WalTailer {
        WalTailer {
            path: path.to_path_buf(),
            offset: 0,
            records: 0,
        }
    }

    /// Complete records emitted (or skipped) so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Byte offset of the next unread record.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Emits up to `max` complete records appended since the last poll.
    /// An empty result means the tailer has caught up (or the tail is
    /// still partial).
    pub fn poll(&mut self, max: usize) -> std::io::Result<Vec<Advert>> {
        use std::io::Read;
        let mut file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        file.seek(SeekFrom::Start(self.offset))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while out.len() < max {
            let Some(header) = bytes.get(pos..pos + RECORD_HEADER_LEN) else {
                break;
            };
            let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
            let crc = u32::from_be_bytes([header[4], header[5], header[6], header[7]]);
            if len == 0 || len > MAX_PAYLOAD_LEN {
                break;
            }
            let Some(payload) = bytes.get(pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + len)
            else {
                break;
            };
            if crc32(payload) != crc {
                break;
            }
            let mut reader = Reader::new(payload);
            let decoded = match reader.u8("record tag") {
                Ok(TAG_ADVERT) => reader.advert().ok().filter(|_| reader.remaining() == 0),
                _ => None,
            };
            let Some(advert) = decoded else {
                break;
            };
            out.push(advert);
            pos += RECORD_HEADER_LEN + len;
            self.records += 1;
        }
        self.offset += pos as u64;
        Ok(out)
    }

    /// Skips the next `n` records without emitting them (positioning a
    /// fresh tailer past what a follower already holds). Skipping stops
    /// early at a partial tail; returns how many records were skipped.
    pub fn skip(&mut self, n: u64) -> std::io::Result<u64> {
        let mut skipped = 0u64;
        while skipped < n {
            let chunk = self.poll(((n - skipped).min(4096)) as usize)?;
            if chunk.is_empty() {
                break;
            }
            skipped += chunk.len() as u64;
        }
        Ok(skipped)
    }
}

/// Reads every intact record from the log at `path`. A missing file is
/// an empty log. Trailing bytes that do not form a complete CRC-valid
/// record set `torn_tail` and are ignored.
pub fn read_wal(path: &Path) -> std::io::Result<(Vec<Advert>, WalReadReport)> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    Ok(parse_wal(&bytes))
}

/// Parses an in-memory WAL image (the file-reading half split out for
/// torn-tail property tests over every truncation point).
pub fn parse_wal(bytes: &[u8]) -> (Vec<Advert>, WalReadReport) {
    let mut adverts = Vec::new();
    let mut report = WalReadReport::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + RECORD_HEADER_LEN) else {
            report.torn_tail = true;
            break;
        };
        let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
        let crc = u32::from_be_bytes([header[4], header[5], header[6], header[7]]);
        if len == 0 || len > MAX_PAYLOAD_LEN {
            // A zero or absurd length prefix is corruption, not a
            // record; treat everything from here as the torn tail.
            report.torn_tail = true;
            break;
        }
        let Some(payload) = bytes.get(pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + len)
        else {
            report.torn_tail = true;
            break;
        };
        if crc32(payload) != crc {
            report.torn_tail = true;
            break;
        }
        let mut reader = Reader::new(payload);
        let decoded = match reader.u8("record tag") {
            Ok(TAG_ADVERT) => reader.advert().ok().filter(|_| reader.remaining() == 0),
            _ => None,
        };
        let Some(advert) = decoded else {
            // CRC-valid but undecodable payload: written by a future
            // version or corrupt in a CRC-colliding way. Either way the
            // record boundary is still trustworthy, but replaying past
            // an unintelligible record would silently skip data — stop
            // here, like a torn tail.
            report.torn_tail = true;
            break;
        };
        adverts.push(advert);
        pos += RECORD_HEADER_LEN + len;
        report.records += 1;
        report.intact_bytes = pos as u64;
    }
    (adverts, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use locble_ble::BeaconId;

    fn sample_adverts(n: usize) -> Vec<Advert> {
        (0..n)
            .map(|i| Advert {
                beacon: BeaconId((i % 7) as u32),
                t: i as f64 * 0.05,
                rssi_dbm: -60.0 - (i % 13) as f64,
            })
            .collect()
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("locble-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn bits(adverts: &[Advert]) -> Vec<(u32, u64, u64)> {
        adverts
            .iter()
            .map(|a| (a.beacon.0, a.t.to_bits(), a.rssi_dbm.to_bits()))
            .collect()
    }

    #[test]
    fn roundtrip_including_non_finite() {
        let path = temp_path("roundtrip");
        let mut adverts = sample_adverts(25);
        adverts.push(Advert {
            beacon: BeaconId(9),
            t: f64::NAN,
            rssi_dbm: f64::NEG_INFINITY,
        });
        let (mut wal, report) = Wal::open(&path, FsyncPolicy::EveryAppend).expect("open");
        assert_eq!(report.records, 0);
        wal.append(&adverts).expect("append");
        assert_eq!(wal.records(), 26);
        let (read, report) = read_wal(&path).expect("read");
        assert!(!report.torn_tail);
        assert_eq!(report.records, 26);
        assert_eq!(bits(&read), bits(&adverts), "WAL must be bit-exact");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn every_truncation_point_is_tolerated() {
        let adverts = sample_adverts(8);
        let mut image = Vec::new();
        let mut payload = Vec::new();
        for a in &adverts {
            payload.clear();
            payload.push(TAG_ADVERT);
            put_advert(&mut payload, a);
            image.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            image.extend_from_slice(&crc32(&payload).to_be_bytes());
            image.extend_from_slice(&payload);
        }
        let record_len = RECORD_HEADER_LEN + ADVERT_PAYLOAD_LEN;
        for cut in 0..image.len() {
            let (read, report) = parse_wal(&image[..cut]);
            let whole = cut / record_len;
            assert_eq!(read.len(), whole, "cut at {cut}");
            assert_eq!(report.records as usize, whole);
            assert_eq!(report.torn_tail, cut % record_len != 0, "cut at {cut}");
            assert_eq!(report.intact_bytes as usize, whole * record_len);
            assert_eq!(bits(&read), bits(&adverts[..whole]));
        }
    }

    #[test]
    fn corrupt_byte_stops_at_the_damaged_record() {
        let adverts = sample_adverts(5);
        let mut image = Vec::new();
        let mut payload = Vec::new();
        for a in &adverts {
            payload.clear();
            payload.push(TAG_ADVERT);
            put_advert(&mut payload, a);
            image.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            image.extend_from_slice(&crc32(&payload).to_be_bytes());
            image.extend_from_slice(&payload);
        }
        let record_len = RECORD_HEADER_LEN + ADVERT_PAYLOAD_LEN;
        // Flip one payload byte in record 3: records 0..3 survive.
        let mut corrupt = image.clone();
        corrupt[3 * record_len + RECORD_HEADER_LEN + 2] ^= 0x40;
        let (read, report) = parse_wal(&corrupt);
        assert_eq!(read.len(), 3);
        assert!(report.torn_tail);
        assert_eq!(bits(&read), bits(&adverts[..3]));
    }

    #[test]
    fn open_truncates_torn_tail_and_appends_cleanly() {
        let path = temp_path("truncate");
        let adverts = sample_adverts(6);
        {
            let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).expect("open");
            wal.append(&adverts).expect("append");
        }
        // Tear the last record mid-payload.
        let len = std::fs::metadata(&path).expect("meta").len();
        let torn = len - 7;
        let f = OpenOptions::new().write(true).open(&path).expect("open");
        f.set_len(torn).expect("truncate");
        drop(f);
        // Re-open: the torn tail is dropped; appending keeps going.
        let (mut wal, report) = Wal::open(&path, FsyncPolicy::EveryN(4)).expect("reopen");
        assert!(report.torn_tail);
        assert_eq!(report.records, 5);
        assert_eq!(wal.records(), 5);
        wal.append(&sample_adverts(2)[..1])
            .expect("append after tear");
        let (read, report) = read_wal(&path).expect("read");
        assert!(!report.torn_tail, "tail must be clean after re-append");
        assert_eq!(report.records, 6);
        assert_eq!(bits(&read[..5]), bits(&adverts[..5]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn garbage_prefix_is_reported_not_panicked() {
        let (read, report) = parse_wal(&[0xFF; 37]);
        assert!(read.is_empty());
        assert!(report.torn_tail);
        assert_eq!(report.intact_bytes, 0);
        let (read, report) = parse_wal(&[]);
        assert!(read.is_empty());
        assert!(!report.torn_tail);
    }

    #[test]
    fn tailer_emits_each_record_exactly_once_across_appends() {
        let path = temp_path("tailer");
        let adverts = sample_adverts(9);
        let mut tailer = WalTailer::open(&path);
        // Missing file: an empty log, not an error.
        assert!(tailer.poll(16).expect("poll missing").is_empty());
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).expect("open");
        wal.append(&adverts[..4]).expect("append");
        let first = tailer.poll(16).expect("poll");
        assert_eq!(bits(&first), bits(&adverts[..4]));
        // Caught up: nothing new, no repeats.
        assert!(tailer.poll(16).expect("poll again").is_empty());
        wal.append(&adverts[4..]).expect("append");
        // A small `max` chunks without losing position.
        let mut rest = Vec::new();
        loop {
            let chunk = tailer.poll(2).expect("poll chunk");
            if chunk.is_empty() {
                break;
            }
            rest.extend(chunk);
        }
        assert_eq!(bits(&rest), bits(&adverts[4..]));
        assert_eq!(tailer.records(), 9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tailer_parks_at_a_torn_tail_until_it_heals() {
        let path = temp_path("tailer-torn");
        let adverts = sample_adverts(6);
        {
            let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).expect("open");
            wal.append(&adverts).expect("append");
        }
        // Tear the final record mid-payload.
        let len = std::fs::metadata(&path).expect("meta").len();
        let f = OpenOptions::new().write(true).open(&path).expect("open");
        f.set_len(len - 5).expect("truncate");
        drop(f);
        let mut tailer = WalTailer::open(&path);
        let read = tailer.poll(16).expect("poll");
        assert_eq!(bits(&read), bits(&adverts[..5]));
        // The torn record is not consumed; re-opening for append heals
        // the tail and the tailer resumes from the same offset.
        assert!(tailer.poll(16).expect("poll torn").is_empty());
        let (mut wal, report) = Wal::open(&path, FsyncPolicy::Never).expect("reopen");
        assert!(report.torn_tail);
        wal.append(&adverts[5..]).expect("append");
        let healed = tailer.poll(16).expect("poll healed");
        assert_eq!(bits(&healed), bits(&adverts[5..]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tailer_skip_positions_past_already_replicated_records() {
        let path = temp_path("tailer-skip");
        let adverts = sample_adverts(8);
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).expect("open");
        wal.append(&adverts).expect("append");
        let mut tailer = WalTailer::open(&path);
        assert_eq!(tailer.skip(5).expect("skip"), 5);
        let rest = tailer.poll(16).expect("poll");
        assert_eq!(bits(&rest), bits(&adverts[5..]));
        // Skipping past the end stops at the high-water mark.
        let mut beyond = WalTailer::open(&path);
        assert_eq!(beyond.skip(100).expect("skip beyond"), 8);
        let _ = std::fs::remove_file(&path);
    }
}
