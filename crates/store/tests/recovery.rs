//! Kill-and-recover differential: crash a durable session at several
//! points — including mid-record torn writes — recover it, finish the
//! stream, and require the result to be **bit-identical** (estimates as
//! IEEE-754 bit patterns, counters exactly, `processes` excluded — the
//! number of `process()` calls legitimately differs between runs) to an
//! engine that never crashed.
//!
//! The recovered run deliberately re-slices the stream differently from
//! the reference (replay is one big ingest); the engine's determinism
//! guarantee makes slicing irrelevant, so any mismatch here indicts the
//! durability layer, not the engine.

use locble_ble::BeaconId;
use locble_core::{Estimator, EstimatorConfig, LocationEstimate};
use locble_engine::{Advert, Engine, EngineConfig, EngineStats};
use locble_motion::MotionTrack;
use locble_obs::Obs;
use locble_scenario::runner::track_observer;
use locble_scenario::world::simulate_session;
use locble_scenario::{environment_by_index, fleet_beacons, plan_l_walk, SessionConfig};
use locble_store::{FsyncPolicy, SessionStore, WAL_FILE};
use std::path::PathBuf;

const CHUNK: usize = 53;

fn fleet_adverts(n_beacons: usize, seed: u64) -> (Vec<Advert>, MotionTrack) {
    let env = environment_by_index(9).expect("parking lot exists");
    let fleet = fleet_beacons(&env, n_beacons, seed);
    let plan =
        plan_l_walk(&env, locble_geom::Vec2::new(4.0, 4.0), 4.0, 3.0, 0.5).expect("walk fits");
    let session = simulate_session(&env, &fleet, &plan, &SessionConfig::paper_default(seed));
    let motion = track_observer(&session);
    let adverts = session
        .interleaved_rss()
        .into_iter()
        .map(Advert::from)
        .collect();
    (adverts, motion)
}

fn config() -> EngineConfig {
    EngineConfig {
        shards: 8,
        threads: 2,
        // The fleet walk is shorter than any idle window; pin eviction
        // off so counter comparisons don't hinge on that.
        idle_evict_s: f64::INFINITY,
        ..EngineConfig::default()
    }
}

fn estimator() -> Estimator {
    Estimator::new(EstimatorConfig::default())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("locble-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The uninterrupted run every crash scenario must reproduce.
fn reference_run(adverts: &[Advert], motion: &MotionTrack) -> Engine {
    let mut engine = Engine::new(config(), estimator(), Obs::noop());
    engine.set_motion(motion.clone());
    engine.ingest_all(adverts);
    engine.finish();
    engine
}

/// Every [`EngineStats`] field except `processes`.
fn stats_sans_processes(s: EngineStats) -> [u64; 8] {
    [
        s.samples_routed,
        s.samples_rejected,
        s.samples_processed,
        s.sessions_created,
        s.sessions_evicted,
        s.sessions_live as u64,
        s.batches_pushed,
        s.batches_rejected,
    ]
}

fn assert_estimates_bit_identical(
    label: &str,
    got: &[(BeaconId, LocationEstimate)],
    want: &[(BeaconId, LocationEstimate)],
) {
    assert_eq!(
        got.iter().map(|(b, _)| *b).collect::<Vec<_>>(),
        want.iter().map(|(b, _)| *b).collect::<Vec<_>>(),
        "{label}: beacon sets differ"
    );
    for ((b, g), (_, w)) in got.iter().zip(want) {
        let fields = [
            ("position.x", g.position.x, w.position.x),
            ("position.y", g.position.y, w.position.y),
            ("confidence", g.confidence, w.confidence),
            ("exponent", g.exponent, w.exponent),
            ("gamma_dbm", g.gamma_dbm, w.gamma_dbm),
            ("residual_db", g.residual_db, w.residual_db),
        ];
        for (field, gv, wv) in fields {
            assert_eq!(
                gv.to_bits(),
                wv.to_bits(),
                "{label}: beacon {b} {field}: {gv} != {wv}"
            );
        }
        assert_eq!(
            g.mirror.map(|m| (m.x.to_bits(), m.y.to_bits())),
            w.mirror.map(|m| (m.x.to_bits(), m.y.to_bits())),
            "{label}: beacon {b} mirror"
        );
        assert_eq!(g.points_used, w.points_used, "{label}: beacon {b} points");
        assert_eq!(g.env, w.env, "{label}: beacon {b} env");
        assert_eq!(g.method, w.method, "{label}: beacon {b} method");
    }
}

fn assert_engines_match(label: &str, got: &Engine, want: &Engine) {
    assert_estimates_bit_identical(label, &got.snapshot(), &want.snapshot());
    assert_eq!(
        stats_sans_processes(got.stats()),
        stats_sans_processes(want.stats()),
        "{label}: counters diverged"
    );
}

/// One kill-and-recover scenario: stream `adverts[..crash_at]` durably
/// (checkpointing once `checkpoint_at` offered adverts are on disk),
/// crash, optionally tear the final WAL record, recover, re-offer
/// everything past the durable prefix, finish, and diff against the
/// uninterrupted run.
fn crash_scenario(tag: &str, crash_at: usize, checkpoint_at: usize, tear: bool) {
    let (adverts, motion) = fleet_adverts(10, 77);
    assert!(crash_at <= adverts.len() && crash_at > 0);
    let dir = temp_dir(tag);

    // Phase 1: the doomed session. Log-then-ingest, with a checkpoint
    // right after set_motion (motion is not WAL-logged) and another
    // mid-stream once `checkpoint_at` adverts are durable.
    {
        let mut store =
            SessionStore::open(&dir, FsyncPolicy::EveryAppend, Obs::noop()).expect("open store");
        let mut engine = Engine::new(config(), estimator(), Obs::noop());
        engine.set_motion(motion.clone());
        store.checkpoint(&engine).expect("motion checkpoint");
        let mut checkpointed = false;
        for chunk in adverts[..crash_at].chunks(CHUNK) {
            store.append(chunk).expect("wal append");
            engine.ingest_all(chunk);
            if !checkpointed && store.wal_records() as usize >= checkpoint_at {
                engine.process();
                store.checkpoint(&engine).expect("mid-stream checkpoint");
                checkpointed = true;
            }
        }
        // Crash: drop everything. No finish, no final checkpoint.
    }

    // Optionally tear the last record mid-payload, as a crash inside
    // the write syscall would.
    let durable = if tear {
        let wal = dir.join(WAL_FILE);
        let len = std::fs::metadata(&wal).expect("wal exists").len();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .expect("open wal");
        f.set_len(len - 5).expect("tear");
        crash_at - 1
    } else {
        crash_at
    };

    // Phase 2: recover and finish the stream. The advert lost to the
    // torn record is re-offered, as a client retrying an unacknowledged
    // batch would.
    let (mut store, mut engine, report) = SessionStore::recover(
        &dir,
        FsyncPolicy::EveryAppend,
        config(),
        estimator(),
        Obs::noop(),
    )
    .expect("recover");
    assert!(report.snapshot_found, "{tag}: snapshot must be found");
    assert_eq!(report.torn_tail, tear, "{tag}: torn-tail detection");
    assert_eq!(
        report.wal_records as usize, durable,
        "{tag}: durable records"
    );
    assert_eq!(
        report.skipped + report.replayed,
        durable as u64,
        "{tag}: skip + replay must cover the log"
    );
    if checkpoint_at < crash_at {
        assert!(
            report.skipped >= checkpoint_at as u64,
            "{tag}: the mid-stream checkpoint should spare its prefix from replay"
        );
    }
    for chunk in adverts[durable..].chunks(CHUNK) {
        store.append(chunk).expect("wal append after recovery");
        engine.ingest_all(chunk);
    }
    engine.finish();

    let reference = reference_run(&adverts, &motion);
    assert_engines_match(tag, &engine, &reference);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn crash_early_before_mid_stream_checkpoint() {
    // Only the motion checkpoint exists: the whole prefix replays.
    let (adverts, _) = fleet_adverts(10, 77);
    crash_scenario("early", adverts.len() / 4, usize::MAX, false);
}

#[test]
fn crash_mid_stream_after_checkpoint() {
    let (adverts, _) = fleet_adverts(10, 77);
    crash_scenario("mid", adverts.len() / 2, adverts.len() / 4, false);
}

#[test]
fn crash_at_end_of_stream_before_finish() {
    let (adverts, _) = fleet_adverts(10, 77);
    crash_scenario("end", adverts.len(), (adverts.len() * 3) / 4, false);
}

#[test]
fn crash_tearing_the_final_wal_record() {
    let (adverts, _) = fleet_adverts(10, 77);
    crash_scenario("torn", (adverts.len() * 2) / 3, adverts.len() / 3, true);
}

#[test]
fn recover_from_empty_directory_yields_empty_engine() {
    let dir = temp_dir("empty");
    let (store, engine, report) =
        SessionStore::recover(&dir, FsyncPolicy::Never, config(), estimator(), Obs::noop())
            .expect("recover from nothing");
    assert!(!report.snapshot_found);
    assert_eq!(report.wal_records, 0);
    assert_eq!(report.replayed, 0);
    assert_eq!(report.skipped, 0);
    assert!(!report.torn_tail);
    assert_eq!(store.wal_records(), 0);
    assert!(engine.snapshot().is_empty());
    assert_eq!(stats_sans_processes(engine.stats()), [0; 8]);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn recover_from_snapshot_only_replays_nothing() {
    // The snapshot covers every WAL record: recovery must rebuild state
    // purely by injection, with an empty replay.
    let (adverts, motion) = fleet_adverts(8, 101);
    let dir = temp_dir("snapshot-only");
    {
        let mut store =
            SessionStore::open(&dir, FsyncPolicy::Never, Obs::noop()).expect("open store");
        let mut engine = Engine::new(config(), estimator(), Obs::noop());
        engine.set_motion(motion.clone());
        store.append(&adverts).expect("append");
        engine.ingest_all(&adverts);
        store.checkpoint(&engine).expect("checkpoint");
    }
    let (_store, mut engine, report) =
        SessionStore::recover(&dir, FsyncPolicy::Never, config(), estimator(), Obs::noop())
            .expect("recover");
    assert!(report.snapshot_found);
    assert_eq!(report.replayed, 0, "snapshot covers the whole log");
    assert_eq!(report.skipped, adverts.len() as u64);
    assert_eq!(report.replay, Default::default());
    engine.finish();
    let reference = reference_run(&adverts, &motion);
    assert_engines_match("snapshot-only", &engine, &reference);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn recover_from_wal_only_replays_everything() {
    // Crash before the first checkpoint: no snapshot at all. Motion is
    // not WAL-logged, so the caller re-supplies it before processing —
    // the documented contract (checkpoint right after set_motion to
    // avoid depending on this).
    let (adverts, motion) = fleet_adverts(8, 55);
    let dir = temp_dir("wal-only");
    {
        let mut store =
            SessionStore::open(&dir, FsyncPolicy::Never, Obs::noop()).expect("open store");
        let mut engine = Engine::new(config(), estimator(), Obs::noop());
        engine.set_motion(motion.clone());
        for chunk in adverts.chunks(CHUNK) {
            store.append(chunk).expect("append");
            engine.ingest_all(chunk);
        }
        store.sync().expect("sync");
    }
    let (_store, mut engine, report) =
        SessionStore::recover(&dir, FsyncPolicy::Never, config(), estimator(), Obs::noop())
            .expect("recover");
    assert!(!report.snapshot_found);
    assert_eq!(report.skipped, 0);
    assert_eq!(report.replayed, adverts.len() as u64);
    engine.set_motion(motion.clone());
    engine.finish();
    let reference = reference_run(&adverts, &motion);
    assert_engines_match("wal-only", &engine, &reference);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn duplicate_adverts_replay_exactly_once_each() {
    // Duplicate adverts (same beacon, same timestamp — legal input) are
    // durable as distinct records. The checkpoint lands *inside* the
    // duplicated run, so value- or timestamp-based skipping would
    // mis-count; only position-based skipping keeps the replay exact.
    let (base, motion) = fleet_adverts(6, 91);
    let third = base.len() / 3;
    let mut adverts: Vec<Advert> = base[..third].to_vec();
    for a in &base[third..2 * third] {
        adverts.push(*a);
        adverts.push(*a); // consecutive duplicate
    }
    adverts.extend_from_slice(&base[2 * third..]);

    let dir = temp_dir("duplicates");
    let crash_at = 2 * third; // inside the duplicated region
    {
        let mut store =
            SessionStore::open(&dir, FsyncPolicy::Never, Obs::noop()).expect("open store");
        let mut engine = Engine::new(config(), estimator(), Obs::noop());
        engine.set_motion(motion.clone());
        for chunk in adverts[..crash_at].chunks(CHUNK) {
            store.append(chunk).expect("append");
            engine.ingest_all(chunk);
        }
        engine.process();
        store
            .checkpoint(&engine)
            .expect("checkpoint inside duplicates");
        for chunk in adverts[crash_at..].chunks(CHUNK) {
            store.append(chunk).expect("append");
            engine.ingest_all(chunk);
        }
        store.sync().expect("sync");
        // Crash before finish.
    }
    let (_store, mut engine, report) =
        SessionStore::recover(&dir, FsyncPolicy::Never, config(), estimator(), Obs::noop())
            .expect("recover");
    assert_eq!(report.skipped, crash_at as u64);
    assert_eq!(report.replayed, (adverts.len() - crash_at) as u64);
    engine.finish();
    let reference = reference_run(&adverts, &motion);
    assert_engines_match("duplicates", &engine, &reference);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Kill-and-recover with a non-default estimation backend: the
/// backend-tagged session state must survive the snapshot codec and
/// continue bit-identically, exactly like the streaming default.
fn backend_crash_recover(tag: &str, backend: locble_core::BackendSpec) {
    let backend_config = || EngineConfig {
        backend: backend.clone(),
        ..config()
    };
    let (adverts, motion) = fleet_adverts(6, 21);
    let crash_at = adverts.len() / 2;
    let dir = temp_dir(tag);
    {
        let mut store =
            SessionStore::open(&dir, FsyncPolicy::Never, Obs::noop()).expect("open store");
        let mut engine = Engine::new(backend_config(), estimator(), Obs::noop());
        engine.set_motion(motion.clone());
        for chunk in adverts[..crash_at].chunks(CHUNK) {
            store.append(chunk).expect("wal append");
            engine.ingest_all(chunk);
        }
        engine.process();
        store.checkpoint(&engine).expect("checkpoint");
        // Crash: drop everything.
    }
    let (_store, mut engine, report) = SessionStore::recover(
        &dir,
        FsyncPolicy::Never,
        backend_config(),
        estimator(),
        Obs::noop(),
    )
    .expect("recover");
    assert!(report.snapshot_found, "{tag}: snapshot must be found");
    for chunk in adverts[crash_at..].chunks(CHUNK) {
        engine.ingest_all(chunk);
    }
    engine.finish();

    let mut reference = Engine::new(backend_config(), estimator(), Obs::noop());
    reference.set_motion(motion.clone());
    reference.ingest_all(&adverts);
    reference.finish();
    assert_engines_match(tag, &engine, &reference);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn particle_sessions_snapshot_and_recover_bit_identically() {
    backend_crash_recover(
        "particle-backend",
        locble_core::BackendSpec::Particle(locble_core::ParticleConfig::default()),
    );
}

#[test]
fn fingerprint_sessions_snapshot_and_recover_bit_identically() {
    backend_crash_recover(
        "fingerprint-backend",
        locble_core::BackendSpec::Fingerprint(locble_core::FingerprintConfig::default()),
    );
}

#[test]
fn mismatched_backend_is_rejected_not_garbled() {
    let (adverts, motion) = fleet_adverts(4, 13);
    let dir = temp_dir("backend-mismatch");
    let particle = EngineConfig {
        backend: locble_core::BackendSpec::Particle(locble_core::ParticleConfig::default()),
        ..config()
    };
    {
        let mut store =
            SessionStore::open(&dir, FsyncPolicy::Never, Obs::noop()).expect("open store");
        let mut engine = Engine::new(particle, estimator(), Obs::noop());
        engine.set_motion(motion.clone());
        store.append(&adverts).expect("append");
        engine.ingest_all(&adverts);
        engine.process();
        store.checkpoint(&engine).expect("checkpoint");
    }
    // Recover with the default (streaming) backend: the tagged session
    // states must be refused with the typed mismatch, not misread.
    let err = SessionStore::recover(&dir, FsyncPolicy::Never, config(), estimator(), Obs::noop())
        .err()
        .expect("backend mismatch must fail");
    assert!(
        matches!(
            err,
            locble_store::RecoverError::Restore(locble_engine::RestoreError::BackendMismatch {
                expected: locble_core::BackendKind::Streaming,
                found: locble_core::BackendKind::Particle,
            })
        ),
        "unexpected error: {err}"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn mismatched_shard_count_is_rejected_not_garbled() {
    let (adverts, motion) = fleet_adverts(4, 13);
    let dir = temp_dir("shard-mismatch");
    {
        let mut store =
            SessionStore::open(&dir, FsyncPolicy::Never, Obs::noop()).expect("open store");
        let mut engine = Engine::new(config(), estimator(), Obs::noop());
        engine.set_motion(motion.clone());
        store.append(&adverts).expect("append");
        engine.ingest_all(&adverts);
        store.checkpoint(&engine).expect("checkpoint");
    }
    let wrong = EngineConfig {
        shards: config().shards + 1,
        ..config()
    };
    let err = SessionStore::recover(&dir, FsyncPolicy::Never, wrong, estimator(), Obs::noop())
        .err()
        .expect("shard mismatch must fail");
    assert!(
        matches!(err, locble_store::RecoverError::Restore(_)),
        "unexpected error: {err}"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The WAL-append instrumentation counts exactly when a recorder is
/// attached — and the counters never drift from what actually hit the
/// log.
#[test]
fn wal_append_counters_track_records_and_bytes() {
    let (adverts, _) = fleet_adverts(3, 77);
    let dir = temp_dir("obs-counters");
    let obs = Obs::ring(64);
    {
        let mut store =
            SessionStore::open(&dir, FsyncPolicy::Never, obs.clone()).expect("open store");
        store.append(&adverts[..40]).expect("append");
        store.append(&adverts[40..100]).expect("append");
        assert_eq!(store.wal_records(), 100);
    }
    let m = obs.metrics();
    assert_eq!(m.counter("store.wal_appends"), 100);
    assert_eq!(
        m.counter("store.wal_bytes"),
        (100 * locble_store::wal::ADVERT_RECORD_LEN) as u64
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
