//! Finding a lost item (paper Fig. 1a + §7.3's navigation demo).
//!
//! A beacon-tagged item is lost somewhere in the living room. The user
//! performs one L-shaped measurement, then follows LocBLE's navigation
//! instructions toward the estimate. The paper's demo reports median
//! overall error 1.5 m, p75 2 m, max < 3 m over 20 runs — this example
//! reruns exactly that protocol and prints the same statistics.
//!
//! ```text
//! cargo run --example find_lost_item
//! ```

use locble_repro::prelude::*;

fn main() {
    let env = environment_by_index(4).expect("living room");
    let estimator = Estimator::with_envaware(EstimatorConfig::default(), train_default_envaware(7));

    println!("losing an item 20 times in the {} ...", env.name);
    let mut overall_errors = Vec::new();

    for run in 0..20u64 {
        // The item lands somewhere random-ish but in-bounds.
        let item = Vec2::new(
            1.0 + (run as f64 * 0.73) % (env.width_m - 2.0),
            1.0 + (run as f64 * 1.31) % (env.depth_m - 2.0),
        );
        let beacon = BeaconSpec {
            id: BeaconId(1),
            position: item,
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        };
        // The user starts from the door.
        let start = Vec2::new(0.8, 0.8);
        let Some(plan) = plan_l_walk(&env, start, 2.5, 2.0, 0.4) else {
            continue;
        };
        let session = simulate_session(
            &env,
            &[beacon],
            &plan,
            &SessionConfig::paper_default(900 + run),
        );
        let Some(outcome) = localize(&session, BeaconId(1), &estimator) else {
            continue;
        };

        // Navigate from the walk's end toward the estimate (in the local
        // frame), with mild dead-reckoning noise per step.
        let walk_end_world = session.walk.trajectory.points().last().expect("walk").pos;
        let walk_end_local = session.start.world_to_local(walk_end_world);
        let nav = Navigator::new(outcome.estimate.position);
        let poses = nav.simulate(Pose2::new(walk_end_local, 0.0), 0.7, 60, |k| {
            let s = if k % 2 == 0 { 1.0 } else { -1.0 };
            (s * 0.06, s * 0.04)
        });
        let arrived_local = poses.last().expect("at least start").position;

        // Overall error: where navigation stopped vs the true item.
        let overall = arrived_local.distance(outcome.truth_local);
        overall_errors.push(overall);
        println!(
            "  run {run:>2}: item at ({:.1}, {:.1}), estimate error {:.2} m, overall (after nav) {:.2} m",
            item.x, item.y, outcome.error_m, overall
        );
    }

    overall_errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = overall_errors.len();
    println!();
    println!("-- overall error across {n} runs (paper: median 1.5 m, p75 2 m, max < 3 m) --");
    println!("median: {:.2} m", overall_errors[n / 2]);
    println!("p75:    {:.2} m", overall_errors[n * 3 / 4]);
    println!("max:    {:.2} m", overall_errors[n - 1]);
}
