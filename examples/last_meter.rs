//! Last-meter refinement + straight-walk mirror resolution — the two §9
//! future-work items the paper sketches, working together.
//!
//! The user walks a *straight* line (no L — convenient in a narrow
//! aisle), so the measurement carries the Fig. 7 mirror ambiguity. They
//! then navigate toward the primary candidate: the RSS trend resolves
//! the ambiguity on the fly (§9.2), and once the beacon is within ~2 m
//! the proximity regime engages and Gauss–Newton multilateration pulls
//! the fix under a metre (§9.1).
//!
//! ```text
//! cargo run --example last_meter
//! ```

use locble_repro::core::{LastMeterRefiner, MirrorResolver, ProximityConfig, ProximityObservation};
use locble_repro::prelude::*;
use locble_repro::rf::{LinkSimulator, ReceiverProfile};
use locble_repro::sensors::WalkPlan;

fn main() {
    let env = environment_by_index(9).expect("parking lot");
    let beacon_world = Vec2::new(6.5, 2.5);
    let beacon = BeaconSpec {
        id: BeaconId(1),
        position: beacon_world,
        hardware: BeaconHardware::ideal(BeaconKind::Estimote),
    };

    // 1. Straight measurement walk (no L): 5 m east from (3, 5).
    let plan = WalkPlan::straight(Pose2::new(Vec2::new(3.0, 5.0), 0.0), 5.0);
    let session = simulate_session(&env, &[beacon], &plan, &SessionConfig::paper_default(99));
    let estimator = Estimator::new(EstimatorConfig::default());
    let outcome = localize(&session, BeaconId(1), &estimator).expect("estimate");
    let est = outcome.estimate;
    println!(
        "straight-walk estimate: ({:.2}, {:.2})",
        est.position.x, est.position.y
    );
    match est.mirror {
        Some(m) => println!(
            "mirror candidate:       ({:.2}, {:.2})  <- ambiguity, as §5.1 predicts",
            m.x, m.y
        ),
        None => println!("(no mirror reported — geometry resolved it already)"),
    }
    println!(
        "truth (local frame):    ({:.2}, {:.2})",
        outcome.truth_local.x, outcome.truth_local.y
    );

    // 2. Navigate; the mirror resolver watches the live RSS trend.
    let mut resolver = MirrorResolver::new(est.position, est.mirror.unwrap_or(est.position));
    let mut refiner =
        LastMeterRefiner::new(est.gamma_dbm, est.exponent, ProximityConfig::default());

    // A live link provides navigation-time RSSI (the app keeps scanning
    // while walking).
    let mut link = LinkSimulator::new(env.link, ReceiverProfile::smartphone(0.0), 4242);
    // Navigation starts back at the measurement origin, as the app's
    // navigation mode does.
    let mut pos_local = Vec2::ZERO;
    let mut t = session.walk.imu.last().expect("imu").t;
    let mut measure_at = |pos_local: Vec2, t: f64, step: usize| {
        let pos_world = session.start.local_to_world(pos_local);
        link.measure(
            t,
            beacon_world,
            pos_world,
            &env.obstacles,
            37 + (step % 3) as u8,
        )
        .map(|m| m.rssi_dbm)
    };

    println!();
    println!("navigating (goal may flip once the RSS trend disagrees):");
    let mut step = 0usize;
    while step < 40 {
        step += 1;
        let goal = resolver.goal();
        let to_goal = goal - pos_local;
        if to_goal.norm() < 0.4 {
            break;
        }
        pos_local += to_goal.normalized().expect("non-zero") * 0.35;
        t += 0.4;
        let Some(rssi) = measure_at(pos_local, t, step) else {
            continue;
        };
        let before = resolver.goal();
        let after = resolver.update(pos_local, rssi);
        if before != after {
            println!(
                "  step {step:>2}: RSS trend disagreed -> switched goal to ({:.2}, {:.2})",
                after.x, after.y
            );
        }
        refiner.observe(ProximityObservation {
            position: pos_local,
            rssi_dbm: rssi,
        });
    }

    // At the goal: look around (a small circle) to collect close-range
    // geometry for the last-meter refinement. Pausing ~1 s per spot
    // yields several advertisements to average (the "smoothed RSSI" the
    // refiner expects).
    let around = resolver.goal();
    let mut dwell = |pos: Vec2, t: &mut f64, step: &mut usize, refiner: &mut LastMeterRefiner| {
        let mut readings = Vec::new();
        for _ in 0..8 {
            *step += 1;
            *t += 0.12;
            if let Some(rssi) = measure_at(pos, *t, *step) {
                readings.push(rssi);
            }
        }
        if !readings.is_empty() {
            let mean = readings.iter().sum::<f64>() / readings.len() as f64;
            refiner.observe(ProximityObservation {
                position: pos,
                rssi_dbm: mean,
            });
        }
    };
    for k in 0..12 {
        let angle = k as f64 * std::f64::consts::TAU / 12.0;
        let pos = around + Vec2::from_angle(angle) * 1.2;
        dwell(pos, &mut t, &mut step, &mut refiner);
    }
    println!(
        "  collected {} proximity-regime readings during approach + look-around",
        refiner.observation_count()
    );

    // 3. Last-meter refinement, two rounds: refine, re-centre the
    // look-around on the refined fix, refine again.
    let final_goal = resolver.goal();
    let mut refined = refiner.refine(final_goal).unwrap_or(final_goal);
    for k in 0..12 {
        let angle = (k as f64 + 0.5) * std::f64::consts::TAU / 12.0;
        let pos = refined + Vec2::from_angle(angle) * 0.9;
        dwell(pos, &mut t, &mut step, &mut refiner);
    }
    refined = refiner.refine(refined).unwrap_or(refined);
    println!();
    println!("-- results --");
    println!(
        "measurement-only error: {:.2} m",
        est.position.distance(outcome.truth_local)
    );
    println!(
        "after mirror resolution: {:.2} m",
        final_goal.distance(outcome.truth_local)
    );
    println!(
        "after last-meter refinement: {:.2} m",
        refined.distance(outcome.truth_local)
    );
}
