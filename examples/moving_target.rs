//! Locating a moving target (paper §7.4.2).
//!
//! Two people, each with a phone: the target's phone advertises as a BLE
//! beacon while walking; the observer walks their own path, scanning.
//! After the measurement the target transfers its motion trace (the
//! paper uses UPnP for this), and LocBLE estimates the target's initial
//! relative position. The paper reports < 2.5 m for more than half of
//! the runs in the outdoor test.
//!
//! ```text
//! cargo run --example moving_target
//! ```

use locble_repro::prelude::*;
use locble_repro::scenario::runner::localize_moving;

fn main() {
    let env = environment_by_index(9).expect("parking lot");
    let estimator = Estimator::new(EstimatorConfig::default());

    println!(
        "two moving devices in the {} ({}x{} m):",
        env.name, env.width_m, env.depth_m
    );
    let mut errors = Vec::new();
    for run in 0..12u64 {
        // Pre-defined start points; directions vary per run via the
        // planner's bounds-aware heading choice at different anchors.
        let obs_start = Vec2::new(4.0 + (run % 3) as f64, 4.0);
        let tgt_start = Vec2::new(9.0, 8.0 + (run % 4) as f64);

        let Some(obs_plan) = plan_l_walk(&env, obs_start, 4.0, 3.0, 0.5) else {
            continue;
        };
        let Some(tgt_plan) = plan_l_walk(&env, tgt_start, 2.5, 2.0, 0.5) else {
            continue;
        };
        let session = simulate_moving_session(
            &env,
            &obs_plan,
            &tgt_plan,
            // A phone advertising as a beacon — the weakest hardware
            // profile (Fig. 14).
            BeaconHardware::ideal(BeaconKind::IosDevice),
            &SessionConfig::paper_default(3000 + run),
        );
        let Some(outcome) = localize_moving(&session, &estimator) else {
            continue;
        };
        let initial_distance = obs_start.distance(tgt_start);
        println!(
            "  run {run:>2}: initial distance {:.1} m, {} RSSI samples, error {:.2} m",
            initial_distance,
            session.rss.len(),
            outcome.error_m
        );
        errors.push(outcome.error_m);
    }

    errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = errors.len();
    println!();
    println!("-- moving-target error over {n} runs (paper: >50% under 2.5 m) --");
    println!("median: {:.2} m", errors[n / 2]);
    println!("p75:    {:.2} m", errors[n * 3 / 4]);
    println!(
        "fraction under 2.5 m: {:.0}%",
        100.0 * errors.iter().filter(|&&e| e < 2.5).count() as f64 / n as f64
    );
}
