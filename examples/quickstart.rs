//! Quickstart: locate one BLE beacon with an L-shaped walk.
//!
//! This is the paper's headline scenario in its simplest form: an
//! Estimote beacon sits somewhere in a 5×5 m meeting room; the user
//! walks an L (a few metres, a 90° turn, a few more metres) while the
//! phone scans; LocBLE fuses RSSI with the phone's motion and reports
//! where the beacon is.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use locble_repro::prelude::*;

fn main() {
    // 1. The world: the meeting room of Table 1, one beacon at (4, 4).
    let env = environment_by_index(1).expect("meeting room");
    let beacon = BeaconSpec {
        id: BeaconId(1),
        position: Vec2::new(4.0, 4.0),
        hardware: BeaconHardware::ideal(BeaconKind::Estimote),
    };
    println!(
        "environment: {} ({}x{} m)",
        env.name, env.width_m, env.depth_m
    );
    println!(
        "true beacon position (world): ({:.1}, {:.1})",
        beacon.position.x, beacon.position.y
    );

    // 2. The measurement walk: L-shape from near the door.
    let plan = plan_l_walk(&env, Vec2::new(1.0, 1.0), 2.5, 2.0, 0.3)
        .expect("an L fits in the meeting room");
    println!(
        "walk: start ({:.1}, {:.1}), heading {:.0} deg, legs {:.1} m + {:.1} m",
        plan.start.position.x,
        plan.start.position.y,
        plan.start.heading.to_degrees(),
        plan.legs[0].distance_m,
        plan.legs[1].distance_m
    );

    // 3. Simulate the session: advertising, RF channel, scanner, IMU.
    let session = simulate_session(&env, &[beacon], &plan, &SessionConfig::paper_default(42));
    let rss = session.rss_of(BeaconId(1)).expect("beacon heard");
    println!(
        "captured {} RSSI samples over {:.1} s (≈{:.1} Hz)",
        rss.len(),
        session.walk.imu.last().map_or(0.0, |s| s.t),
        rss.mean_rate()
    );

    // 4. Run LocBLE: EnvAware + ANF + sensor-fusion regression.
    let estimator = Estimator::with_envaware(EstimatorConfig::default(), train_default_envaware(7));
    let outcome = localize(&session, BeaconId(1), &estimator).expect("estimate");

    println!();
    println!("-- LocBLE estimate (observer's local frame) --");
    println!(
        "position: ({:.2}, {:.2}) m   truth: ({:.2}, {:.2}) m",
        outcome.estimate.position.x,
        outcome.estimate.position.y,
        outcome.truth_local.x,
        outcome.truth_local.y
    );
    println!("error: {:.2} m", outcome.error_m);
    println!("confidence: {:.2}", outcome.estimate.confidence);
    println!(
        "fitted path-loss exponent n(e): {:.2}",
        outcome.estimate.exponent
    );
    println!(
        "fitted reference power: {:.1} dBm",
        outcome.estimate.gamma_dbm
    );
    if let Some(env_class) = outcome.estimate.env {
        println!("recognized environment: {env_class}");
    }

    // 5. Contrast with what a ranging app can say (1-D only).
    let mut dartle = DartleRanger::paper_default();
    if let Some(range) = dartle.range_of(rss) {
        println!();
        println!("-- Dartle-style ranging baseline --");
        println!("range-only estimate: {:.2} m (no direction!)", range);
        println!("true final distance: {:.2} m", {
            let end = session.walk.trajectory.points().last().expect("walk").pos;
            end.distance(beacon.position)
        });
    }
}
