//! Retail shelf tagging (paper Fig. 1b + §6 clustering calibration).
//!
//! "In a retail store, items of the same category are stocked together."
//! Three beacons sit 30 cm apart on one shelf of the store environment;
//! a fourth beacon hangs on the opposite wall. One measurement walk
//! localizes all of them; the DTW voting matcher recognizes which
//! beacons are co-located with the target, and the clustering
//! calibration fuses their estimates with confidence weights — the
//! paper's mechanism for sharpening a single noisy estimate.
//!
//! ```text
//! cargo run --example retail_shelf
//! ```

use locble_repro::prelude::*;
use locble_repro::scenario::runner::{localize_with_track, track_observer};

fn main() {
    let env = environment_by_index(6).expect("store");
    // Shelf cluster: target + two neighbors 0.3 m apart (paper Fig. 9's
    // geometry), plus one unrelated beacon across the store.
    // Beacons on the front edge of the first shelf rack, facing the
    // aisle the user walks in.
    let shelf_y = 2.9;
    let specs = vec![
        BeaconSpec {
            id: BeaconId(4), // the target, as in Fig. 9
            position: Vec2::new(4.0, shelf_y),
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        },
        BeaconSpec {
            id: BeaconId(2),
            position: Vec2::new(3.7, shelf_y),
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        },
        BeaconSpec {
            id: BeaconId(3),
            position: Vec2::new(4.3, shelf_y),
            hardware: BeaconHardware::ideal(BeaconKind::RadBeacon),
        },
        BeaconSpec {
            id: BeaconId(1), // far beacon, ~4 m away
            position: Vec2::new(8.3, 1.5),
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        },
    ];

    let plan = plan_l_walk(&env, Vec2::new(2.0, 1.2), 3.5, 1.5, 0.4).expect("plan fits");
    let session = simulate_session(&env, &specs, &plan, &SessionConfig::paper_default(7));
    let estimator = Estimator::with_envaware(EstimatorConfig::default(), train_default_envaware(7));
    let observer = track_observer(&session);

    // 1. Cluster: which beacons trend like the target?
    let matcher = DtwMatcher::new(ClusterConfig::default());
    let target_rss = session.rss_of(BeaconId(4)).expect("target heard");
    println!("DTW voting against target beacon-4:");
    let mut cluster = vec![BeaconId(4)];
    for id in [BeaconId(2), BeaconId(3), BeaconId(1)] {
        let Some(rss) = session.rss_of(id) else {
            continue;
        };
        let vote = matcher.vote(target_rss, rss);
        println!(
            "  {id}: {}/{} segments matched ({} rejected by lower bound) -> {}",
            vote.matched_segments,
            vote.total_segments,
            vote.lb_rejections,
            if vote.is_match() {
                "CLUSTERED"
            } else {
                "not clustered"
            }
        );
        if vote.is_match() {
            cluster.push(id);
        }
    }

    // 2. Localize every cluster member from the same walk.
    let mut estimates = Vec::new();
    for &id in &cluster {
        if let Some(outcome) = localize_with_track(&session, id, &estimator, &observer) {
            println!(
                "  {id}: estimate ({:.2}, {:.2}), confidence {:.2}, solo error {:.2} m",
                outcome.estimate.position.x,
                outcome.estimate.position.y,
                outcome.estimate.confidence,
                outcome.error_m
            );
            estimates.push((outcome.estimate.position, outcome.estimate.confidence));
        }
    }

    // 3. Calibrate: confidence-weighted fusion (Algorithm 2).
    let truth = session.truth_local(BeaconId(4)).expect("truth");
    let solo_error = estimates
        .first()
        .map(|(p, _)| p.distance(truth))
        .unwrap_or(f64::NAN);
    if let Some(fused) = calibrate(&estimates) {
        println!();
        println!("-- clustering calibration --");
        println!("cluster size: {}", estimates.len());
        println!("target-only error:  {solo_error:.2} m");
        println!("calibrated error:   {:.2} m", fused.distance(truth));
    }
}
