//! Streaming estimation — Algorithm 1 as the app actually runs it.
//!
//! The paper's pipeline is incremental: RSS arrives in 2–3 s batches,
//! the estimate refreshes after every batch, and the user watches it
//! converge while still walking. This example slices one measurement
//! session into batches and prints the evolving estimate — the behaviour
//! behind the measure-mode UI of paper Fig. 10(a).
//!
//! ```text
//! cargo run --release --example streaming
//! ```

use locble_repro::core::{RssBatch, StreamingEstimator};
use locble_repro::motion::{track, TrackerConfig};
use locble_repro::prelude::*;

fn main() {
    let env = environment_by_index(1).expect("meeting room");
    let beacon = BeaconSpec {
        id: BeaconId(1),
        position: Vec2::new(4.0, 4.0),
        hardware: BeaconHardware::ideal(BeaconKind::Estimote),
    };
    let plan = plan_l_walk(&env, Vec2::new(1.0, 1.0), 2.5, 2.0, 0.3).expect("plan");
    let session = simulate_session(&env, &[beacon], &plan, &SessionConfig::paper_default(7));
    let truth = session.truth_local(BeaconId(1)).expect("truth");
    let rss = session.rss_of(BeaconId(1)).expect("heard");

    println!(
        "walking the L in the {}; beacon truth at ({:.2}, {:.2}) local:",
        env.name, truth.x, truth.y
    );

    // The app re-tracks motion continuously; here we reuse the full
    // track (its interpolation serves any prefix of the walk).
    let observer = track(&session.walk.imu, &TrackerConfig::default());
    let estimator = Estimator::with_envaware(EstimatorConfig::default(), train_default_envaware(5));
    let mut streaming = StreamingEstimator::new(estimator);

    // Slice the captured RSS into ~2.2 s batches (≈20 samples each).
    let mut i = 0;
    let mut batch_no = 0;
    while i < rss.len() {
        let j = (i + 20).min(rss.len());
        let batch = RssBatch::new(rss.t[i..j].to_vec(), rss.v[i..j].to_vec());
        batch_no += 1;
        let t_end = batch.t.last().copied().unwrap_or(0.0);
        let est = streaming.push_batch(&batch, &observer).copied();
        let active = streaming.active_samples();
        match est {
            Some(est) => println!(
                "  batch {batch_no} (t={t_end:>4.1} s, {active:>2} samples in regression): \
                 estimate ({:>5.2}, {:>5.2}), error {:.2} m, confidence {:.2}",
                est.position.x,
                est.position.y,
                est.position.distance(truth),
                est.confidence
            ),
            None => println!("  batch {batch_no} (t={t_end:>4.1} s): not enough data yet"),
        }
        i = j;
    }
    println!(
        "\nregression restarts due to environment changes: {}",
        streaming.restarts()
    );
}
