#!/usr/bin/env bash
# Perf ratchet: compare freshly regenerated BENCH_*.json files in the
# working tree against the committed baselines in bench/baselines/, and
# fail when a headline metric regresses beyond tolerance or a boolean
# gate flips to false.
#
#   scripts/bench_compare.sh [--tolerance PCT] [--baseline-dir DIR] [FILE...]
#
# Defaults: all six BENCH files, 30% tolerance (single-core CI boxes
# are noisy; the hard floors — 1M adverts/s, 5x speedup, 3% overhead —
# are enforced separately by the generators themselves). A file with no
# committed baseline (first PR that adds it) is reported and skipped,
# not failed. Override per-run: BENCH_TOLERANCE=50. To ratchet forward
# after a real improvement, copy the fresh file over its baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

tolerance="${BENCH_TOLERANCE:-30}"
baseline_dir="bench/baselines"
files=()
while [ $# -gt 0 ]; do
  case "$1" in
    --tolerance)    tolerance="$2"; shift 2 ;;
    --baseline-dir) baseline_dir="$2"; shift 2 ;;
    -h|--help)      grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *)              files+=("$1"); shift ;;
  esac
done
if [ ${#files[@]} -eq 0 ]; then
  files=(BENCH_backends.json BENCH_cluster.json BENCH_hotpath.json BENCH_obs.json BENCH_refit.json BENCH_serve.json)
fi

status=0
for file in "${files[@]}"; do
  if [ ! -s "$file" ]; then
    echo "bench_compare: $file: missing or empty in working tree"
    status=1
    continue
  fi
  baseline_file="$baseline_dir/$(basename "$file")"
  if [ ! -s "$baseline_file" ]; then
    echo "bench_compare: $file: no baseline at $baseline_file (new benchmark) — skipped"
    continue
  fi
  baseline="$(cat "$baseline_file")"
  if ! BASELINE_JSON="$baseline" python3 - "$file" "$tolerance" <<'PY'
import json, os, sys

fresh_path, tolerance = sys.argv[1], float(sys.argv[2])
fresh = json.load(open(fresh_path))
base = json.loads(os.environ["BASELINE_JSON"])

# Headline higher-is-better metrics per experiment. Paths use dots for
# objects and integers for array indices.
RATCHET = {
    "backends": ["streaming_batches_per_second"],
    "cluster": ["adverts_per_sec"],
    "obs": [
        "noop_throughput_adverts_per_second",
        "instrumented_throughput_adverts_per_second",
    ],
    "hotpath": [
        "kernels.fingerprint_score.speedup",
        "kernels.envelope.speedup",
    ],
    "refit": ["cached_solves_per_second", "speedup"],
    "serve": [
        "engine_direct.adverts_per_second",
        "reactor.0.adverts_per_second",
        "reactor.1.adverts_per_second",
    ],
}

def lookup(doc, path):
    node = doc
    for part in path.split("."):
        if isinstance(node, list):
            node = node[int(part)]
        else:
            node = node[part]
    return node

def bool_gates(doc, prefix=""):
    """Every boolean leaf, so a gate that was true must stay true."""
    if isinstance(doc, bool):
        yield prefix, doc
    elif isinstance(doc, dict):
        for key, value in doc.items():
            yield from bool_gates(value, f"{prefix}{key}." if prefix else f"{key}.")
    elif isinstance(doc, list):
        for idx, value in enumerate(doc):
            yield from bool_gates(value, f"{prefix}{idx}.")

def strip(prefix):
    return prefix.rstrip(".")

experiment = base.get("experiment", "")
failures = []
for path in RATCHET.get(experiment, []):
    try:
        was, now = float(lookup(base, path)), float(lookup(fresh, path))
    except (KeyError, IndexError, TypeError):
        failures.append(f"{path}: present in baseline but unreadable in fresh report")
        continue
    floor = was * (1.0 - tolerance / 100.0)
    verdict = "ok" if now >= floor else "REGRESSED"
    print(f"  {verdict}: {fresh_path} {path}: {was:.0f} -> {now:.0f} (floor {floor:.0f})")
    if now < floor:
        failures.append(f"{path}: {now:.0f} below floor {floor:.0f} (baseline {was:.0f}, tolerance {tolerance:.0f}%)")

fresh_bools = dict(bool_gates(fresh))
for prefix, value in bool_gates(base):
    if value and fresh_bools.get(prefix) is not True:
        failures.append(f"{strip(prefix)}: boolean gate was true in baseline, now {fresh_bools.get(prefix)}")

for failure in failures:
    print(f"  FAIL: {fresh_path}: {failure}")
sys.exit(1 if failures else 0)
PY
  then
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "bench_compare: FAIL (tolerance ${tolerance}%)"
else
  echo "bench_compare: PASS (tolerance ${tolerance}%)"
fi
exit "$status"
