#!/usr/bin/env bash
# Full local gate: everything CI would run, in one shot.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> engine determinism suite (1/2/8 threads)"
cargo test -q -p locble-engine --test determinism

echo "==> fleet smoke (release harness, 200 beacons)"
# Capture rather than pipe into grep -q: an early grep exit would SIGPIPE
# the harness mid-report under pipefail.
fleet_report="$(cargo run --release -q -p locble-bench --bin harness -- fleet --threads 8)"
grep -q "accounting reconciles exactly      true" <<<"$fleet_report" \
  || { echo "fleet smoke failed: accounting did not reconcile"; echo "$fleet_report"; exit 1; }

echo "==> serving smoke (release loadgen over loopback)"
loadgen_report="$(cargo run --release -q -p locble-bench --bin loadgen -- --beacons 40 --connections 4 --threads 4 --seed 0x10AD)"
grep -q "accounting reconciles exactly      true" <<<"$loadgen_report" \
  || { echo "serving smoke failed: accounting did not reconcile"; echo "$loadgen_report"; exit 1; }

echo "==> reactor smoke (release loadgen, 1000 multiplexed epoll connections)"
synth_report="$(cargo run --release -q -p locble-bench --bin loadgen -- --synthetic --connections 1000 --batches 2 --batch-len 64)"
grep -q "accounting reconciles exactly      true" <<<"$synth_report" \
  || { echo "reactor smoke failed: accounting did not reconcile"; echo "$synth_report"; exit 1; }

echo "==> serve bench (release harness, three-arm report + BENCH_serve.json)"
cargo run --release -q -p locble-bench --bin harness -- serve --serve-json BENCH_serve.json
test -s BENCH_serve.json \
  || { echo "serve bench failed: BENCH_serve.json missing or empty"; exit 1; }
grep -q '"sustained_connections":10000' BENCH_serve.json \
  || { echo "serve bench failed: 10k-connection arm missing"; cat BENCH_serve.json; exit 1; }
if grep -q '"reconciles":false' BENCH_serve.json; then
  echo "serve bench failed: an arm did not reconcile"; cat BENCH_serve.json; exit 1
fi
grep -q '"all_arms_reconcile":true' BENCH_serve.json \
  || { echo "serve bench failed: all_arms_reconcile not true"; cat BENCH_serve.json; exit 1; }
grep -q '"meets_1m_target":true' BENCH_serve.json \
  || { echo "serve bench failed: 10k arm below 1M adverts/s"; cat BENCH_serve.json; exit 1; }

echo "==> recovery smoke (release crashtest: SIGKILL mid-stream, recover, diff)"
crashtest_report="$(cargo run --release -q -p locble-bench --bin crashtest)"
grep -q "crashtest: PASS" <<<"$crashtest_report" \
  || { echo "recovery smoke failed"; echo "$crashtest_report"; exit 1; }

echo "==> refit smoke (release harness, streaming-refit speedup + BENCH_refit.json)"
refit_report="$(cargo run --release -q -p locble-bench --bin harness -- refit --refit-json BENCH_refit.json)"
grep -q "matches reference within 1e-9      true" <<<"$refit_report" \
  || { echo "refit smoke failed: cached search drifted from reference"; echo "$refit_report"; exit 1; }
grep -q "search speedup >= 5x               true" <<<"$refit_report" \
  || { echo "refit smoke failed: shared-factorization speedup below 5x"; echo "$refit_report"; exit 1; }
test -s BENCH_refit.json \
  || { echo "refit smoke failed: BENCH_refit.json missing or empty"; exit 1; }

echo "==> backend shootout smoke (release harness, per-backend accuracy/cost + BENCH_backends.json)"
backends_report="$(cargo run --release -q -p locble-bench --bin harness -- backends --backends-json BENCH_backends.json)"
grep -q "default backend bit-identical      true" <<<"$backends_report" \
  || { echo "backend shootout failed: boxed default drifted from concrete StreamingEstimator"; echo "$backends_report"; exit 1; }
grep -q "default overhead within 1.5x       true" <<<"$backends_report" \
  || { echo "backend shootout failed: trait-object overhead above tolerance"; echo "$backends_report"; exit 1; }
test -s BENCH_backends.json \
  || { echo "backend shootout failed: BENCH_backends.json missing or empty"; exit 1; }
grep -q '"default_bit_identical":true' BENCH_backends.json \
  || { echo "backend shootout failed: bit-identity gate false in JSON"; cat BENCH_backends.json; exit 1; }
grep -q '"particle_reconciles":true' BENCH_backends.json \
  || { echo "backend shootout failed: particle backend did not reconcile"; cat BENCH_backends.json; exit 1; }
grep -q '"fingerprint_reconciles":true' BENCH_backends.json \
  || { echo "backend shootout failed: fingerprint backend did not reconcile"; cat BENCH_backends.json; exit 1; }

echo "==> hotpath smoke (release harness, kernel speedups + zero-alloc steady state + BENCH_hotpath.json)"
hotpath_report="$(cargo run --release -q -p locble-bench --bin harness -- hotpath --hotpath-json BENCH_hotpath.json)"
grep -q "all kernels match reference        true" <<<"$hotpath_report" \
  || { echo "hotpath smoke failed: a vectorized kernel drifted from its scalar reference"; echo "$hotpath_report"; exit 1; }
grep -q "fingerprint_score speedup >= 1.5x  true" <<<"$hotpath_report" \
  || { echo "hotpath smoke failed: fingerprint scoring speedup below 1.5x"; echo "$hotpath_report"; exit 1; }
grep -q "envelope speedup >= 1.5x           true" <<<"$hotpath_report" \
  || { echo "hotpath smoke failed: envelope speedup below 1.5x"; echo "$hotpath_report"; exit 1; }
grep -q "streaming zero allocs steady state true" <<<"$hotpath_report" \
  || { echo "hotpath smoke failed: warm streaming backend allocated per batch"; echo "$hotpath_report"; exit 1; }
test -s BENCH_hotpath.json \
  || { echo "hotpath smoke failed: BENCH_hotpath.json missing or empty"; exit 1; }

echo "==> obs smoke (release obsctl: traced batch, introspection scrape, flight dump, 3% overhead gate + BENCH_obs.json)"
obs_report="$(cargo run --release -q -p locble-bench --bin obsctl -- smoke --json BENCH_obs.json)"
grep -q "obs smoke: PASS" <<<"$obs_report" \
  || { echo "obs smoke failed"; echo "$obs_report"; exit 1; }
grep -q "ok: trace.refit.us histogram is non-zero" <<<"$obs_report" \
  || { echo "obs smoke failed: serve histograms empty"; echo "$obs_report"; exit 1; }
grep -q "ok: instrumented overhead within 3% of noop" <<<"$obs_report" \
  || { echo "obs smoke failed: telemetry overhead above 3%"; echo "$obs_report"; exit 1; }
test -s BENCH_obs.json \
  || { echo "obs smoke failed: BENCH_obs.json missing or empty"; exit 1; }

echo "==> cluster smoke (release clusterctl: 3-process cluster, 1M adverts/s gate, SIGKILL failover + BENCH_cluster.json)"
cluster_report="$(cargo run --release -q -p locble-bench --bin clusterctl -- smoke --json BENCH_cluster.json)"
grep -q "cluster smoke: PASS" <<<"$cluster_report" \
  || { echo "cluster smoke failed"; echo "$cluster_report"; exit 1; }
test -s BENCH_cluster.json \
  || { echo "cluster smoke failed: BENCH_cluster.json missing or empty"; exit 1; }
grep -q '"meets_1m_target":true' BENCH_cluster.json \
  || { echo "cluster smoke failed: aggregate below 1M adverts/s"; cat BENCH_cluster.json; exit 1; }
grep -q '"reconciles":true' BENCH_cluster.json \
  || { echo "cluster smoke failed: cluster-wide accounting did not reconcile"; cat BENCH_cluster.json; exit 1; }
grep -q '"failover_zero_loss":true' BENCH_cluster.json \
  || { echo "cluster smoke failed: acked adverts lost across failover"; cat BENCH_cluster.json; exit 1; }

echo "==> bench compare (perf ratchet vs bench/baselines)"
scripts/bench_compare.sh

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "All checks passed."
