#!/usr/bin/env bash
# Full local gate: everything CI would run, in one shot.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "All checks passed."
