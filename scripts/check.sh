#!/usr/bin/env bash
# Full local gate: everything CI would run, in one shot.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> engine determinism suite (1/2/8 threads)"
cargo test -q -p locble-engine --test determinism

echo "==> fleet smoke (release harness, 200 beacons)"
# Capture rather than pipe into grep -q: an early grep exit would SIGPIPE
# the harness mid-report under pipefail.
fleet_report="$(cargo run --release -q -p locble-bench --bin harness -- fleet --threads 8)"
grep -q "accounting reconciles exactly      true" <<<"$fleet_report" \
  || { echo "fleet smoke failed: accounting did not reconcile"; echo "$fleet_report"; exit 1; }

echo "==> serving smoke (release loadgen over loopback)"
loadgen_report="$(cargo run --release -q -p locble-bench --bin loadgen -- --beacons 40 --connections 4 --threads 4 --seed 0x10AD)"
grep -q "accounting reconciles exactly      true" <<<"$loadgen_report" \
  || { echo "serving smoke failed: accounting did not reconcile"; echo "$loadgen_report"; exit 1; }

echo "==> recovery smoke (release crashtest: SIGKILL mid-stream, recover, diff)"
crashtest_report="$(cargo run --release -q -p locble-bench --bin crashtest)"
grep -q "crashtest: PASS" <<<"$crashtest_report" \
  || { echo "recovery smoke failed"; echo "$crashtest_report"; exit 1; }

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "All checks passed."
