//! LocBLE reproduction — umbrella crate.
//!
//! A from-scratch Rust reproduction of *Locating and Tracking BLE
//! Beacons with Smartphones* (CoNEXT '17). This crate re-exports the
//! whole workspace behind one name so the examples and downstream users
//! can write `use locble_repro::prelude::*`.
//!
//! Layer map (bottom-up):
//!
//! | crate | role |
//! |---|---|
//! | [`geom`] | vectors, poses, trajectories, environment classes |
//! | [`dsp`] | Butterworth, Kalman/AKF, DTW, window statistics |
//! | [`ml`] | linear algebra, least squares, SVM / tree / forest |
//! | [`rf`] | path loss, shadowing, fading, receiver impairments |
//! | [`ble`] | advertisement PDUs, beacon codecs, advertiser/scanner |
//! | [`sensors`] | pedestrian-gait IMU simulator |
//! | [`motion`] | coordinate alignment, steps, turns, dead reckoning |
//! | [`core`] | **LocBLE itself**: EnvAware, ANF, sensor-fusion estimation, clustering calibration |
//! | [`engine`] | concurrent multi-beacon tracking engine (sharded sessions) |
//! | [`net`] | wire protocol + TCP ingest/query server over the engine |
//! | [`store`] | crash-safe durability: advert WAL, engine snapshots, recovery |
//! | [`cluster`] | consistent-hash partitioning, WAL replication, warm failover |
//! | [`scenario`] | Table-1 environments and end-to-end sessions |
//! | [`obs`] | structured tracing, metrics, and pipeline diagnostics |

pub use locble_ble as ble;
pub use locble_cluster as cluster;
pub use locble_core as core;
pub use locble_dsp as dsp;
pub use locble_engine as engine;
pub use locble_geom as geom;
pub use locble_ml as ml;
pub use locble_motion as motion;
pub use locble_net as net;
pub use locble_obs as obs;
pub use locble_rf as rf;
pub use locble_scenario as scenario;
pub use locble_sensors as sensors;
pub use locble_store as store;

/// The most commonly used items in one import.
pub mod prelude {
    pub use locble_ble::{BeaconHardware, BeaconId, BeaconKind};
    pub use locble_cluster::{serve_node, ClusterRouter, Front, FrontConfig, NodeSpec};
    pub use locble_core::{
        calibrate, BackendKind, BackendSpec, ClusterConfig, DartleRanger, DtwMatcher, Estimator,
        EstimatorConfig, FingerprintConfig, LocationEstimate, Navigator, ParticleConfig,
    };
    pub use locble_engine::{Advert, Engine, EngineConfig};
    pub use locble_geom::{EnvClass, Pose2, Vec2};
    pub use locble_motion::{track, track_traced, TrackerConfig};
    pub use locble_net::{Client, Server, ServerConfig};
    pub use locble_obs::Obs;
    pub use locble_scenario::world::{simulate_moving_session, simulate_session};
    pub use locble_scenario::{
        all_environments, environment_by_index, fleet_beacons, localize, localize_fleet,
        localize_streaming, plan_l_walk, train_default_envaware, BeaconSpec, FleetReport,
        PipelineReport, Session, SessionConfig,
    };
    pub use locble_store::{FsyncPolicy, SessionStore};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links_all_layers() {
        use crate::prelude::*;
        let env = environment_by_index(1).expect("meeting room exists");
        assert_eq!(env.name, "Meeting room");
        let _ = Estimator::new(EstimatorConfig::default());
        let _ = Navigator::new(Vec2::new(1.0, 1.0));
        let mut engine = Engine::new(
            EngineConfig::default(),
            Estimator::new(EstimatorConfig::default()),
            Obs::noop(),
        );
        engine.ingest_all(&[Advert {
            beacon: BeaconId(1),
            t: 0.0,
            rssi_dbm: -60.0,
        }]);
        engine.finish();
        assert_eq!(engine.beacons(), vec![BeaconId(1)]);
    }
}
