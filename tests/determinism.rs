//! Determinism guarantees: identical seeds reproduce identical bits
//! everywhere — session physics, classifier training, estimation.

use locble_repro::prelude::*;

fn session(seed: u64) -> Session {
    let env = environment_by_index(3).expect("bedroom");
    let beacons = [
        BeaconSpec {
            id: BeaconId(1),
            position: Vec2::new(5.8, 5.0),
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        },
        BeaconSpec {
            id: BeaconId(2),
            position: Vec2::new(2.0, 5.5),
            hardware: BeaconHardware::ideal(BeaconKind::RadBeacon),
        },
    ];
    let plan = plan_l_walk(&env, Vec2::new(0.9, 0.9), 2.8, 2.5, 0.3).expect("plan");
    simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(seed))
}

#[test]
fn sessions_reproduce_bit_for_bit() {
    let a = session(100);
    let b = session(100);
    assert_eq!(a.walk.imu.len(), b.walk.imu.len());
    assert_eq!(a.walk.imu, b.walk.imu);
    for id in [BeaconId(1), BeaconId(2)] {
        assert_eq!(a.rss_of(id).map(|r| &r.v), b.rss_of(id).map(|r| &r.v));
        assert_eq!(a.rss_of(id).map(|r| &r.t), b.rss_of(id).map(|r| &r.t));
    }
}

#[test]
fn different_seeds_differ() {
    let a = session(100);
    let b = session(101);
    assert_ne!(
        a.rss_of(BeaconId(1)).unwrap().v,
        b.rss_of(BeaconId(1)).unwrap().v
    );
    assert_ne!(a.walk.imu, b.walk.imu);
}

#[test]
fn estimation_is_deterministic() {
    let s = session(42);
    let run = || {
        let estimator = Estimator::new(EstimatorConfig::default());
        localize(&s, BeaconId(1), &estimator).map(|o| o.estimate.position)
    };
    let a = run().expect("estimate");
    let b = run().expect("estimate");
    assert_eq!(a, b);
}

#[test]
fn envaware_training_is_deterministic() {
    let s = session(42);
    let run = |train_seed| {
        let estimator = Estimator::with_envaware(
            EstimatorConfig::default(),
            train_default_envaware(train_seed),
        );
        localize(&s, BeaconId(1), &estimator).map(|o| o.estimate.position)
    };
    assert_eq!(run(7), run(7));
}
