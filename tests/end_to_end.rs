//! Cross-crate integration tests: the full pipeline from simulated
//! physics to location estimates, exercised through the public API only.

use locble_repro::prelude::*;
use locble_repro::scenario::runner::{localize_moving, localize_with_track, track_observer};

fn stationary_outcome(
    env_index: usize,
    target: Vec2,
    start: Vec2,
    seed: u64,
) -> Option<locble_repro::scenario::RunOutcome> {
    let env = environment_by_index(env_index)?;
    let beacons = [BeaconSpec {
        id: BeaconId(1),
        position: target,
        hardware: BeaconHardware::ideal(BeaconKind::Estimote),
    }];
    let plan = plan_l_walk(&env, start, 2.8, 2.2, 0.3)?;
    let session = simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(seed));
    let estimator = Estimator::new(EstimatorConfig::default());
    localize(&session, BeaconId(1), &estimator)
}

#[test]
fn meeting_room_envelope() {
    // The easiest environment must stay within a tight envelope across
    // seeds — a canary for accuracy regressions anywhere in the stack.
    let mut errors = Vec::new();
    for seed in 0..10 {
        if let Some(o) = stationary_outcome(1, Vec2::new(4.0, 4.0), Vec2::new(1.0, 1.0), seed) {
            errors.push(o.error_m);
        }
    }
    assert!(errors.len() >= 8, "only {} runs succeeded", errors.len());
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(mean < 2.0, "meeting-room mean error {mean:.2} m");
}

#[test]
fn estimates_carry_full_provenance() {
    let o = stationary_outcome(1, Vec2::new(4.0, 4.0), Vec2::new(1.0, 1.0), 3).expect("estimate");
    let e = o.estimate;
    assert!((0.0..=1.0).contains(&e.confidence));
    assert!(e.exponent > 1.0 && e.exponent < 6.0);
    assert!(
        (-90.0..=-35.0).contains(&e.gamma_dbm),
        "gamma {}",
        e.gamma_dbm
    );
    assert!(e.points_used >= 8);
    assert!(e.position.is_finite());
    assert!(e.range() < 15.0, "BLE range cap violated: {}", e.range());
}

#[test]
fn envaware_pipeline_reports_environment() {
    let env = environment_by_index(7).expect("lab");
    let beacons = [BeaconSpec {
        id: BeaconId(1),
        position: Vec2::new(6.5, 5.0),
        hardware: BeaconHardware::ideal(BeaconKind::Estimote),
    }];
    let plan = plan_l_walk(&env, Vec2::new(1.5, 2.0), 2.5, 2.0, 0.3).expect("plan");
    let session = simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(5));
    let estimator = Estimator::with_envaware(EstimatorConfig::default(), train_default_envaware(5));
    let outcome = localize(&session, BeaconId(1), &estimator).expect("estimate");
    // Behind the concrete wall the majority regime must be blocked.
    let env_class = outcome.estimate.env.expect("EnvAware regime");
    assert_ne!(env_class, EnvClass::Los, "wall path classified as LOS");
}

#[test]
fn moving_target_pipeline_end_to_end() {
    let env = environment_by_index(9).expect("parking lot");
    let obs_plan = plan_l_walk(&env, Vec2::new(4.0, 4.0), 4.0, 3.0, 0.5).expect("plan");
    let tgt_plan = plan_l_walk(&env, Vec2::new(9.0, 8.0), 2.5, 2.0, 0.5).expect("plan");
    let ms = simulate_moving_session(
        &env,
        &obs_plan,
        &tgt_plan,
        BeaconHardware::ideal(BeaconKind::IosDevice),
        &SessionConfig::paper_default(11),
    );
    let estimator = Estimator::new(EstimatorConfig::default());
    let outcome = localize_moving(&ms, &estimator).expect("moving estimate");
    assert!(outcome.error_m.is_finite());
    assert!(
        outcome.error_m < 10.0,
        "moving error {:.2} m",
        outcome.error_m
    );
}

#[test]
fn one_walk_localizes_many_beacons() {
    let env = environment_by_index(5).expect("restaurant");
    let beacons: Vec<BeaconSpec> = (0..4)
        .map(|k| BeaconSpec {
            id: BeaconId(k),
            position: Vec2::new(2.5 + k as f64 * 1.5, 7.8),
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        })
        .collect();
    let plan = plan_l_walk(&env, Vec2::new(2.0, 2.0), 3.0, 2.5, 0.3).expect("plan");
    let session = simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(13));
    let estimator = Estimator::new(EstimatorConfig::default());
    let observer = track_observer(&session);
    let mut located = 0;
    for k in 0..4 {
        if let Some(o) = localize_with_track(&session, BeaconId(k), &estimator, &observer) {
            located += 1;
            assert!(o.error_m < 10.0, "beacon {k}: {:.2} m", o.error_m);
        }
    }
    assert!(located >= 3, "only {located}/4 beacons located");
}

#[test]
fn navigation_reaches_good_estimates() {
    let o = stationary_outcome(1, Vec2::new(4.0, 4.0), Vec2::new(1.0, 1.0), 17).expect("estimate");
    let nav = Navigator::new(o.estimate.position);
    let poses = nav.simulate(Pose2::IDENTITY, 0.7, 60, |_| (0.0, 0.0));
    let arrived = poses.last().expect("poses").position;
    // Navigation lands at the estimate; overall error is bounded by
    // estimate error + arrival radius + one step.
    assert!(
        arrived.distance(o.truth_local) <= o.error_m + nav.arrival_radius + 0.7 + 1e-9,
        "arrived {:.2} m from truth, estimate error {:.2} m",
        arrived.distance(o.truth_local),
        o.error_m
    );
}

#[test]
fn dartle_baseline_is_available_for_comparison() {
    let env = environment_by_index(2).expect("hallway");
    let beacons = [BeaconSpec {
        id: BeaconId(1),
        position: Vec2::new(7.0, 1.8),
        hardware: BeaconHardware::ideal(BeaconKind::Estimote),
    }];
    let plan = plan_l_walk(&env, Vec2::new(0.8, 0.6), 3.2, 1.8, 0.3).expect("plan");
    let session = simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(19));
    let mut ranger = DartleRanger::paper_default();
    let range = ranger
        .range_of(session.rss_of(BeaconId(1)).expect("heard"))
        .expect("range");
    assert!(range > 0.2 && range < 20.0, "range {range}");
}

#[test]
fn streaming_estimator_handles_environment_transients() {
    use locble_repro::core::{RssBatch, StreamingEstimator};
    use locble_repro::motion::{track, TrackerConfig};

    let env = environment_by_index(4).expect("living room");
    let beacon = BeaconSpec {
        id: BeaconId(1),
        position: Vec2::new(5.8, 5.2),
        hardware: BeaconHardware::ideal(BeaconKind::Estimote),
    };
    let plan = plan_l_walk(&env, Vec2::new(0.9, 0.9), 2.8, 2.5, 0.3).expect("plan");
    let mut config = SessionConfig::paper_default(23);
    // A passer-by blocks the path mid-measurement.
    config.transient_blockages = vec![(1.5, 3.0, 7.0)];
    let session = simulate_session(&env, &[beacon], &plan, &config);
    let rss = session.rss_of(BeaconId(1)).expect("heard");
    let observer = track(&session.walk.imu, &TrackerConfig::default());

    let estimator =
        Estimator::with_envaware(EstimatorConfig::default(), train_default_envaware(23));
    let mut streaming = StreamingEstimator::new(estimator);
    let mut i = 0;
    while i < rss.len() {
        let j = (i + 20).min(rss.len());
        streaming.push_batch(
            &RssBatch::new(rss.t[i..j].to_vec(), rss.v[i..j].to_vec()),
            &observer,
        );
        i = j;
    }
    let est = streaming.current().expect("streaming estimate");
    let truth = session.truth_local(BeaconId(1)).expect("truth");
    assert!(
        est.position.distance(truth) < 10.0,
        "streaming estimate {:?} vs truth {truth:?}",
        est.position
    );
}
