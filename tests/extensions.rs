//! Integration tests for the implemented §9 future-work extensions:
//! straight-walk mirror resolution and last-meter proximity refinement.

use locble_repro::core::{LastMeterRefiner, MirrorResolver, ProximityConfig, ProximityObservation};
use locble_repro::prelude::*;
use locble_repro::rf::{LinkSimulator, ReceiverProfile};
use locble_repro::sensors::WalkPlan;

/// Runs the straight-walk → navigate → resolve → refine chain once.
/// Returns (measurement error, post-resolution error, post-refinement
/// error), or `None` when the estimate failed.
fn run_chain(seed: u64, beacon_world: Vec2) -> Option<(f64, f64, f64)> {
    let env = environment_by_index(9)?;
    let beacon = BeaconSpec {
        id: BeaconId(1),
        position: beacon_world,
        hardware: BeaconHardware::ideal(BeaconKind::Estimote),
    };
    let plan = WalkPlan::straight(Pose2::new(Vec2::new(3.0, 5.0), 0.0), 5.0);
    let session = simulate_session(&env, &[beacon], &plan, &SessionConfig::paper_default(seed));
    let estimator = Estimator::new(EstimatorConfig::default());
    let outcome = localize(&session, BeaconId(1), &estimator)?;
    let est = outcome.estimate;
    let truth = outcome.truth_local;
    let measurement_err = est.position.distance(truth);

    let mut resolver = MirrorResolver::with_exponent(
        est.position,
        est.mirror.unwrap_or(est.position),
        est.exponent,
    );
    let mut refiner =
        LastMeterRefiner::new(est.gamma_dbm, est.exponent, ProximityConfig::default());
    let mut link = LinkSimulator::new(env.link, ReceiverProfile::smartphone(0.0), seed ^ 0xAA);
    let mut pos = Vec2::ZERO;
    let mut t = session.walk.imu.last()?.t;
    let mut step = 0usize;
    let mut measure = |pos: Vec2, t: f64, step: usize| {
        let world = session.start.local_to_world(pos);
        link.measure(
            t,
            beacon_world,
            world,
            &env.obstacles,
            37 + (step % 3) as u8,
        )
        .map(|m| m.rssi_dbm)
    };

    // Approach the (possibly wrong-side) goal.
    while step < 60 {
        step += 1;
        let goal = resolver.goal();
        if goal.distance(pos) < 0.4 {
            break;
        }
        pos += (goal - pos).normalized()? * 0.35;
        t += 0.4;
        if let Some(rssi) = measure(pos, t, step) {
            resolver.update(pos, rssi);
            refiner.observe(ProximityObservation {
                position: pos,
                rssi_dbm: rssi,
            });
        }
    }
    let resolved_err = resolver.goal().distance(truth);

    // Hot/cold look-around: circle the current best guess with dwell-
    // averaged readings, walk to the warmest spot, repeat; once readings
    // enter the proximity regime the refiner takes over. (This is what a
    // person does when the app says "here" and the item is not there.)
    let mut center = resolver.goal();
    for round in 0..5 {
        let radius = if round == 0 { 1.2 } else { 1.0 };
        let mut best: Option<(f64, Vec2)> = None;
        for k in 0..12 {
            let angle = (k as f64 + 0.3 * round as f64) * std::f64::consts::TAU / 12.0;
            let spot = center + Vec2::from_angle(angle) * radius;
            let mut readings = Vec::new();
            for _ in 0..8 {
                step += 1;
                t += 0.12;
                if let Some(rssi) = measure(spot, t, step) {
                    readings.push(rssi);
                }
            }
            if readings.is_empty() {
                continue;
            }
            let mean = readings.iter().sum::<f64>() / readings.len() as f64;
            refiner.observe(ProximityObservation {
                position: spot,
                rssi_dbm: mean,
            });
            if best.is_none_or(|(b, _)| mean > b) {
                best = Some((mean, spot));
            }
        }
        if let Some(r) = refiner.refine(center) {
            center = r;
        } else if let Some((_, warmest)) = best {
            center = warmest; // hot/cold: walk toward the strongest spot
        }
    }
    Some((measurement_err, resolved_err, center.distance(truth)))
}

#[test]
fn mirror_resolution_recovers_wrong_side_estimates() {
    // Across seeds, post-resolution error must on average beat the raw
    // straight-walk estimate (which picks an arbitrary mirror side).
    let mut raw = Vec::new();
    let mut resolved = Vec::new();
    for seed in 0..8u64 {
        if let Some((m, r, _)) = run_chain(100 + seed, Vec2::new(6.5, 2.5)) {
            raw.push(m);
            resolved.push(r);
        }
    }
    assert!(raw.len() >= 6, "only {} chains completed", raw.len());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&resolved) < mean(&raw),
        "resolution should help: raw {:.2} m vs resolved {:.2} m",
        mean(&raw),
        mean(&resolved)
    );
}

#[test]
fn last_meter_refinement_reaches_submeter_regime() {
    // §9.1's claim: with proximity incorporated, accuracy approaches the
    // sub-metre regime. Require the median refined error under 1.2 m.
    let mut refined = Vec::new();
    for seed in 0..8u64 {
        if let Some((_, _, f)) = run_chain(200 + seed, Vec2::new(6.5, 2.5)) {
            refined.push(f);
        }
    }
    assert!(
        refined.len() >= 6,
        "only {} chains completed",
        refined.len()
    );
    refined.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = refined[refined.len() / 2];
    assert!(median < 1.2, "median refined error {median:.2} m");
}
