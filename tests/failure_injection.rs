//! Failure injection: the pipeline must degrade gracefully, never panic,
//! when the inputs a phone would produce go bad — dropped packets,
//! sensor dropout, outliers, heavy interference, truncated data.

use locble_repro::dsp::TimeSeries;
use locble_repro::motion::{track, TrackerConfig};
use locble_repro::prelude::*;
use locble_repro::scenario::runner::track_observer;

fn base_session(seed: u64) -> Session {
    let env = environment_by_index(4).expect("living room");
    let beacons = [BeaconSpec {
        id: BeaconId(1),
        position: Vec2::new(5.8, 5.2),
        hardware: BeaconHardware::ideal(BeaconKind::Estimote),
    }];
    let plan = plan_l_walk(&env, Vec2::new(0.9, 0.9), 2.8, 2.5, 0.3).expect("plan");
    simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(seed))
}

#[test]
fn survives_heavy_packet_loss() {
    let session = base_session(1);
    let rss = session.rss_of(BeaconId(1)).expect("heard");
    // Keep every 4th sample (75 % loss).
    let mut sparse = TimeSeries::default();
    for (i, (&t, &v)) in rss.t.iter().zip(&rss.v).enumerate() {
        if i % 4 == 0 {
            sparse.push(t, v);
        }
    }
    let observer = track_observer(&session);
    let estimator = Estimator::new(EstimatorConfig::default());
    // Either a degraded estimate or a clean None — never a panic.
    if let Some(est) = estimator.estimate_stationary(&sparse, &observer) {
        assert!(est.position.is_finite());
        assert!(est.range() <= 15.0 + 1e-9);
    }
}

#[test]
fn survives_rss_outliers() {
    let session = base_session(2);
    let rss = session.rss_of(BeaconId(1)).expect("heard");
    let mut spiky = TimeSeries::default();
    for (i, (&t, &v)) in rss.t.iter().zip(&rss.v).enumerate() {
        // Inject ±25 dB spikes on 10 % of samples (reflections, bursts).
        let v = if i % 10 == 3 {
            v - 25.0
        } else if i % 10 == 7 {
            v + 25.0
        } else {
            v
        };
        spiky.push(t, v);
    }
    let observer = track_observer(&session);
    let estimator = Estimator::new(EstimatorConfig::default());
    let est = estimator
        .estimate_stationary(&spiky, &observer)
        .expect("estimate");
    assert!(est.position.is_finite());
    // Outliers should cost accuracy but not sanity.
    let truth = session.truth_local(BeaconId(1)).expect("truth");
    assert!(est.position.distance(truth) < 15.0);
}

#[test]
fn survives_imu_dropout() {
    let session = base_session(3);
    // Drop the middle third of the IMU trace (sensor hiccup).
    let n = session.walk.imu.len();
    let mut imu = session.walk.imu.clone();
    imu.drain(n / 3..2 * n / 3);
    let observer = track(&imu, &TrackerConfig::default());
    let estimator = Estimator::new(EstimatorConfig::default());
    let rss = session.rss_of(BeaconId(1)).expect("heard");
    // The motion track is degraded; the estimator must still behave.
    if let Some(est) = estimator.estimate_stationary(rss, &observer) {
        assert!(est.position.is_finite());
    }
}

#[test]
fn survives_heavy_interference() {
    // Paper §6.1 saw rates drop to ~3 Hz under interference; crank the
    // interferer count much higher and require graceful behaviour.
    let env = environment_by_index(4).expect("living room");
    let beacons = [BeaconSpec {
        id: BeaconId(1),
        position: Vec2::new(5.8, 5.2),
        hardware: BeaconHardware::ideal(BeaconKind::Estimote),
    }];
    let plan = plan_l_walk(&env, Vec2::new(0.9, 0.9), 2.8, 2.5, 0.3).expect("plan");
    let mut config = SessionConfig::paper_default(4);
    config.scanner.interferers = 25;
    let session = simulate_session(&env, &beacons, &plan, &config);
    let estimator = Estimator::new(EstimatorConfig::default());
    match session.rss_of(BeaconId(1)) {
        None => {} // everything lost: acceptable
        Some(rss) => {
            let observer = track_observer(&session);
            if let Some(est) = estimator.estimate_stationary(rss, &observer) {
                assert!(est.position.is_finite());
            }
        }
    }
}

#[test]
fn empty_and_tiny_inputs_return_none() {
    let session = base_session(5);
    let observer = track_observer(&session);
    let estimator = Estimator::new(EstimatorConfig::default());
    assert!(estimator
        .estimate_stationary(&TimeSeries::default(), &observer)
        .is_none());
    let tiny = TimeSeries::new(vec![0.0, 0.1], vec![-70.0, -71.0]);
    assert!(estimator.estimate_stationary(&tiny, &observer).is_none());
}

#[test]
fn stationary_observer_yields_no_confident_position() {
    // No movement = no geometry; the estimator must not fabricate a
    // confident 2-D fix from a standing phone.
    let session = base_session(6);
    let rss = session.rss_of(BeaconId(1)).expect("heard");
    let imu_static: Vec<_> = session
        .walk
        .imu
        .iter()
        .map(|s| locble_repro::sensors::ImuSample {
            t: s.t,
            accel: [0.0, 0.0, locble_repro::sensors::GRAVITY],
            gyro: [0.0; 3],
            mag_heading: 0.0,
        })
        .collect();
    let observer = track(&imu_static, &TrackerConfig::default());
    let estimator = Estimator::new(EstimatorConfig::default());
    if let Some(est) = estimator.estimate_stationary(rss, &observer) {
        // Only the gradient/anchored degradations can fire; they must
        // stay within BLE range and flag limited confidence.
        assert!(est.range() <= 15.0 + 1e-9);
    }
}

#[test]
fn transient_blockage_does_not_break_estimation() {
    let env = environment_by_index(4).expect("living room");
    let beacons = [BeaconSpec {
        id: BeaconId(1),
        position: Vec2::new(5.8, 5.2),
        hardware: BeaconHardware::ideal(BeaconKind::Estimote),
    }];
    let plan = plan_l_walk(&env, Vec2::new(0.9, 0.9), 2.8, 2.5, 0.3).expect("plan");
    let mut config = SessionConfig::paper_default(7);
    config.transient_blockages = vec![(1.0, 2.5, 8.0), (3.0, 4.0, 6.0)];
    let session = simulate_session(&env, &beacons, &plan, &config);
    let estimator = Estimator::new(EstimatorConfig::default());
    let outcome = localize(&session, BeaconId(1), &estimator).expect("estimate");
    assert!(outcome.error_m < 12.0, "error {:.2}", outcome.error_m);
}
