//! Cross-crate property-based tests (proptest) on the core invariants.

use locble_repro::core::confidence::estimation_confidence;
use locble_repro::core::regression::{CircularFit, RssPoint};
use locble_repro::dsp::{
    dtw_distance, dtw_distance_windowed, lb_keogh, standardize, window_features, Envelope,
};
use locble_repro::geom::{normalize_angle, signed_angle_diff, Segment, Vec2};
use locble_repro::rf::LogDistanceModel;
use proptest::prelude::*;

fn finite_signal(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0..0.0f64, len)
}

proptest! {
    /// DTW is symmetric and zero exactly on identical sequences.
    #[test]
    fn dtw_symmetry(a in finite_signal(1..30), b in finite_signal(1..30)) {
        let d_ab = dtw_distance(&a, &b);
        let d_ba = dtw_distance(&b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-9);
        prop_assert!(dtw_distance(&a, &a) < 1e-9);
    }

    /// Widening the Sakoe-Chiba window never increases DTW distance.
    #[test]
    fn dtw_window_monotone(a in finite_signal(2..25), b in finite_signal(2..25)) {
        let mut prev = f64::INFINITY;
        for w in [0usize, 1, 2, 4, 8, 32] {
            let d = dtw_distance_windowed(&a, &b, w);
            prop_assert!(d <= prev + 1e-9, "window {w}: {d} > {prev}");
            prev = d;
        }
    }

    /// LB_Keogh never exceeds the matching windowed DTW distance.
    #[test]
    fn lb_keogh_is_lower_bound(
        a in finite_signal(3..20),
        b_seed in finite_signal(3..20),
        radius in 0usize..5,
    ) {
        // Make equal lengths by repeating/truncating b.
        let b: Vec<f64> = (0..a.len()).map(|i| b_seed[i % b_seed.len()]).collect();
        let env = Envelope::new(&a, radius);
        let lb = lb_keogh(&b, &env);
        let d = dtw_distance_windowed(&b, &a, radius);
        prop_assert!(lb <= d + 1e-9, "lb {lb} > dtw {d}");
    }

    /// Standardization always yields zero mean and unit (or zero) variance.
    #[test]
    fn standardize_invariants(mut v in finite_signal(1..50)) {
        standardize(&mut v);
        let n = v.len() as f64;
        let mean = v.iter().sum::<f64>() / n;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!(mean.abs() < 1e-9);
        prop_assert!(var < 1.0 + 1e-9);
        prop_assert!(v.iter().all(|x| x.is_finite()));
    }

    /// The 9 EnvAware features are finite and ordered (min ≤ q1 ≤ median
    /// ≤ q3 ≤ max) for any window.
    #[test]
    fn window_features_ordered(w in finite_signal(1..40)) {
        let f = window_features(&w);
        prop_assert!(f.iter().all(|x| x.is_finite()));
        let (min, q1, med, q3, max) = (f[3], f[4], f[5], f[6], f[7]);
        prop_assert!(min <= q1 + 1e-12);
        prop_assert!(q1 <= med + 1e-12);
        prop_assert!(med <= q3 + 1e-12);
        prop_assert!(q3 <= max + 1e-12);
        prop_assert!((f[8] - (max - min)).abs() < 1e-9);
    }

    /// Path-loss model round trip: distance_for(rss_at(d)) == d.
    #[test]
    fn pathloss_round_trip(
        gamma in -80.0..-40.0f64,
        n in 1.2..5.0f64,
        d in 0.2..30.0f64,
    ) {
        let model = LogDistanceModel::new(gamma, n);
        let rss = model.rss_at(d);
        prop_assert!((model.distance_for(rss) - d).abs() < 1e-6);
    }

    /// The circular fit recovers any target exactly from noiseless data
    /// on a non-degenerate L, for any (Γ, n) in the physical band.
    #[test]
    fn circular_fit_exact_recovery(
        tx in -6.0..6.0f64,
        ty in 0.5..8.0f64,
        gamma in -75.0..-45.0f64,
        n in 1.5..4.5f64,
    ) {
        let target = Vec2::new(tx, ty);
        let model = LogDistanceModel::new(gamma, n);
        let mut pts = Vec::new();
        for i in 0..10 {
            let pos = Vec2::new(i as f64 * 0.4, 0.0);
            pts.push(RssPoint::from_observer_displacement(pos, model.rss_at(target.distance(pos))));
        }
        for i in 1..10 {
            let pos = Vec2::new(3.6, i as f64 * 0.35);
            pts.push(RssPoint::from_observer_displacement(pos, model.rss_at(target.distance(pos))));
        }
        let fit = CircularFit::solve(&pts, n).expect("fit");
        // Conditioning worsens when the target grazes the walked path,
        // so the recovery tolerance is loose-ish but still sub-cm.
        prop_assert!(fit.position.distance(target) < 5e-3, "got {:?}", fit.position);
        prop_assert!((fit.gamma_dbm - gamma).abs() < 0.05);
    }

    /// Confidence is always in [0, 1] for arbitrary inputs.
    #[test]
    fn confidence_bounded(
        rss in prop::collection::vec(-100.0..-40.0f64, 3..40),
        px in -10.0..10.0f64,
        py in -10.0..10.0f64,
        gamma in -80.0..-40.0f64,
        n in 1.2..5.0f64,
    ) {
        let pts: Vec<RssPoint> = rss
            .iter()
            .enumerate()
            .map(|(i, &r)| RssPoint { p: i as f64 * 0.3, q: 0.0, rss: r })
            .collect();
        let c = estimation_confidence(&pts, Vec2::new(px, py), gamma, n);
        prop_assert!((0.0..=1.0).contains(&c), "confidence {c}");
    }

    /// Angle normalization always lands in (-π, π] and is idempotent.
    #[test]
    fn angle_normalization(a in -100.0..100.0f64) {
        let n = normalize_angle(a);
        prop_assert!(n > -std::f64::consts::PI - 1e-12);
        prop_assert!(n <= std::f64::consts::PI + 1e-12);
        prop_assert!((normalize_angle(n) - n).abs() < 1e-12);
        // The wrapped angle differs from the original by a multiple of 2π.
        let k = (a - n) / (2.0 * std::f64::consts::PI);
        prop_assert!((k - k.round()).abs() < 1e-9);
    }

    /// Angular differences are antisymmetric after wrapping.
    #[test]
    fn angle_diff_antisymmetric(a in -10.0..10.0f64, b in -10.0..10.0f64) {
        let d1 = signed_angle_diff(a, b);
        let d2 = signed_angle_diff(b, a);
        prop_assert!((normalize_angle(d1 + d2)).abs() < 1e-9);
    }

    /// Segment intersection is symmetric.
    #[test]
    fn segment_intersection_symmetric(
        ax in -5.0..5.0f64, ay in -5.0..5.0f64,
        bx in -5.0..5.0f64, by in -5.0..5.0f64,
        cx in -5.0..5.0f64, cy in -5.0..5.0f64,
        dx in -5.0..5.0f64, dy in -5.0..5.0f64,
    ) {
        let s1 = Segment::new(Vec2::new(ax, ay), Vec2::new(bx, by));
        let s2 = Segment::new(Vec2::new(cx, cy), Vec2::new(dx, dy));
        prop_assert_eq!(s1.intersects(&s2), s2.intersects(&s1));
    }

    /// Mirroring across a line is an involution.
    #[test]
    fn mirror_is_involution(
        px in -5.0..5.0f64, py in -5.0..5.0f64,
        ax in -5.0..5.0f64, ay in -5.0..5.0f64,
        bx in -5.0..5.0f64, by in -5.0..5.0f64,
    ) {
        prop_assume!((Vec2::new(ax, ay)).distance(Vec2::new(bx, by)) > 1e-3);
        let p = Vec2::new(px, py);
        let a = Vec2::new(ax, ay);
        let b = Vec2::new(bx, by);
        let twice = p.mirrored_across(a, b).mirrored_across(a, b);
        prop_assert!(twice.distance(p) < 1e-6);
    }
}
