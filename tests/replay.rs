//! Offline replay: traces written by one session reproduce the same
//! estimates when parsed back — the workflow the reproduction bands call
//! out ("only offline filter replay feasible").

use locble_repro::motion::{track, TrackerConfig};
use locble_repro::prelude::*;
use locble_repro::scenario::{parse_session_trace, session_trace_to_string};

fn session(seed: u64) -> Session {
    let env = environment_by_index(2).expect("hallway");
    let beacons = [
        BeaconSpec {
            id: BeaconId(1),
            position: Vec2::new(7.0, 1.8),
            hardware: BeaconHardware::ideal(BeaconKind::Estimote),
        },
        BeaconSpec {
            id: BeaconId(7),
            position: Vec2::new(5.0, 2.4),
            hardware: BeaconHardware::ideal(BeaconKind::IosDevice),
        },
    ];
    let plan = plan_l_walk(&env, Vec2::new(0.8, 0.6), 3.2, 1.8, 0.3).expect("plan");
    simulate_session(&env, &beacons, &plan, &SessionConfig::paper_default(seed))
}

#[test]
fn trace_round_trips_through_disk() {
    let s = session(21);
    let text = session_trace_to_string(&s);

    let dir = std::env::temp_dir().join("locble-trace-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("session.trace");
    std::fs::write(&path, &text).expect("write trace");
    let read_back = std::fs::read_to_string(&path).expect("read trace");
    std::fs::remove_file(&path).ok();

    let replay = parse_session_trace(&read_back).expect("parse");
    assert_eq!(replay.env_index, 2);
    assert_eq!(replay.beacons.len(), 2);
    assert_eq!(replay.imu.len(), s.walk.imu.len());
}

#[test]
fn replayed_estimates_match_live() {
    let s = session(22);
    let estimator = Estimator::new(EstimatorConfig::default());
    let live = localize(&s, BeaconId(1), &estimator).expect("live estimate");

    let replay = parse_session_trace(&session_trace_to_string(&s)).expect("parse");
    let observer = track(&replay.imu, &TrackerConfig::default());
    let offline = estimator
        .estimate_stationary(&replay.rss[&BeaconId(1)], &observer)
        .expect("offline estimate");
    assert!(
        offline.position.distance(live.estimate.position) < 1e-9,
        "live {:?} vs replay {:?}",
        live.estimate.position,
        offline.position
    );
    assert_eq!(offline.method, live.estimate.method);
}

#[test]
fn trace_is_humanly_greppable() {
    let s = session(23);
    let text = session_trace_to_string(&s);
    assert!(text.starts_with("# locble-trace v1"));
    assert!(text.lines().any(|l| l.starts_with("ENV 2")));
    assert!(text.lines().filter(|l| l.starts_with("BEACON ")).count() == 2);
    assert!(text.lines().filter(|l| l.starts_with("IMU ")).count() > 100);
    assert!(text.lines().filter(|l| l.starts_with("RSS ")).count() > 30);
}
