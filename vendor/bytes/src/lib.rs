//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a contiguous owned buffer with a consuming read cursor
//! (upstream's cheap zero-copy splitting is replaced by plain copying —
//! the PDUs here are ≤ 39 bytes). Multi-byte `put_*`/`get_*` are
//! big-endian, matching upstream's defaults.

use std::ops::Deref;

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Default, Eq, PartialOrd, Ord)]
pub struct Bytes {
    data: Vec<u8>,
    /// Read offset: everything before it has been consumed via [`Buf`].
    off: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static byte slice (copied — see module docs).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            off: 0,
        }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.off
    }

    /// `true` when fully consumed or empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies a subrange of the unconsumed bytes into a new buffer.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes {
            data: self.as_slice()[start..end].to_vec(),
            off: 0,
        }
    }

    /// Copies the unconsumed bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.off..]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, off: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            off: 0,
        }
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        Bytes {
            data: b.data,
            off: 0,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash the same view `PartialEq` compares: the unread remainder.
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

/// Consuming read access.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    ///
    /// # Panics
    /// Panics when fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    ///
    /// # Panics
    /// Panics when empty.
    fn get_u8(&mut self) -> u8;

    /// Reads a big-endian `u16`.
    ///
    /// # Panics
    /// Panics when fewer than 2 bytes remain.
    fn get_u16(&mut self) -> u16;

    /// Reads exactly `dst.len()` bytes.
    ///
    /// # Panics
    /// Panics when fewer bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.off += n;
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.as_slice()[0];
        self.off += 1;
        b
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes([self.as_slice()[0], self.as_slice()[1]]);
        self.off += 2;
        v
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.as_slice()[..dst.len()]);
        self.off += dst.len();
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            off: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Append-style write access.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        let [a, b] = v.to_le_bytes();
        self.put_u8(a);
        self.put_u8(b);
    }

    /// Appends a whole slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one signed byte.
    fn put_i8(&mut self, b: i8) {
        self.put_u8(b as u8);
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_cursor() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_slice(&[1, 2, 3]);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 6);
        assert_eq!(frozen.get_u8(), 0xAB);
        assert_eq!(frozen.get_u16(), 0x1234);
        let mut rest = [0u8; 3];
        frozen.copy_to_slice(&mut rest);
        assert_eq!(rest, [1, 2, 3]);
        assert!(frozen.is_empty());
    }

    #[test]
    fn slice_and_index_are_relative_to_cursor() {
        let mut b = Bytes::from(vec![9, 8, 7, 6, 5]);
        b.advance(2);
        assert_eq!(b[0], 7);
        assert_eq!(b.slice(1..3).to_vec(), vec![6, 5]);
        assert_eq!(b.to_vec(), vec![7, 6, 5]);
    }

    #[test]
    fn equality_ignores_consumed_prefix() {
        let mut a = Bytes::from(vec![1, 2, 3]);
        a.get_u8();
        assert_eq!(a, Bytes::from(vec![2, 3]));
        assert_eq!(a, [2u8, 3]);
    }
}
