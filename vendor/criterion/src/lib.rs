//! Offline stand-in for the `criterion` crate.
//!
//! Runs each benchmark long enough for a stable mean and prints one
//! line per benchmark — no statistical analysis, outlier detection, or
//! HTML reports. Honours the bench targets' `harness = false` setup via
//! `criterion_group!` / `criterion_main!`.

use std::time::{Duration, Instant};

/// Entry point handed to each `criterion_group!` target function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Times `f` (which drives a [`Bencher`]) and prints the mean
    /// per-iteration wall-clock time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        println!(
            "bench {name:<40} {:>12.1} ns/iter ({} iters)",
            mean_ns, b.iters
        );
        self
    }
}

/// Measures a closure under repeated invocation.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

/// Target wall-clock spent per benchmark (split across warm-up and
/// measurement); kept short because this harness only smoke-checks that
/// the benches run.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

impl Bencher {
    /// Calls `routine` repeatedly and accumulates its timing.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: also sizes how many calls fit in the budget.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < MEASURE_BUDGET / 4 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let target = (MEASURE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)) as u64;
        let iters = target.clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += iters;
    }
}

/// Declares a function that runs each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            $(
                let mut c = $crate::Criterion::default();
                $target(&mut c);
            )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }
}
