//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace uses: the `proptest!` test macro,
//! `Strategy` with `prop_map`, range / tuple / `Just` / `prop_oneof!`
//! strategies, `prop::collection::{vec, btree_set}`,
//! `prop::array::uniform*`, `any::<T>()`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Known simplifications versus upstream (documented in
//! `vendor/README.md`): no shrinking, modulo bias in integer ranges,
//! and string-regex strategies degrade to bounded random printable text
//! — fine for the totality tests that use them.

pub mod test_runner {
    use std::fmt;
    use std::hash::{DefaultHasher, Hash, Hasher};

    /// Per-run configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// A `prop_assume!` precondition did not hold; the case is
        /// skipped, not failed.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected precondition.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Deterministic RNG (xorshift-style over SplitMix64-seeded state):
    /// a given test name always replays the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the fully-qualified test name.
        pub fn for_test(name: &str) -> TestRng {
            let mut h = DefaultHasher::new();
            name.hash(&mut h);
            TestRng {
                state: h.finish() | 1,
            }
        }

        /// Next raw 64-bit value (SplitMix64 step).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[lo, hi]` (modulo bias accepted).
        pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u64 + 1;
            lo + (self.next_u64() % span) as usize
        }
    }

    /// Runs one sampled case; exists so the `proptest!` expansion is a
    /// plain function call rather than an immediately-invoked closure.
    pub fn run_case<F>(f: F) -> Result<(), TestCaseError>
    where
        F: FnOnce() -> Result<(), TestCaseError>,
    {
        f()
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// Upstream's `new_tree` / shrinking machinery is replaced by a
    /// direct `sample`: failures report the offending inputs unshrunk.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Type-erases a strategy (support routine for `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adaptor.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Builds from at least one alternative.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_inclusive(0, self.arms.len() - 1);
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((lo as i128) + off) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let u = rng.unit_f64() as $t;
                    lo + u * (hi - lo)
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    macro_rules! impl_tuple {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// String-regex stand-in: a `&str` pattern yields random printable
    /// text whose length honours a trailing `{lo,hi}` repetition bound
    /// when present (default 0..=40). The pattern body itself is NOT
    /// interpreted — see the module docs.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = trailing_repeat_bounds(self).unwrap_or((0, 40));
            let len = rng.usize_inclusive(lo, hi);
            (0..len)
                .map(|_| {
                    // Mostly printable ASCII, with occasional spaces and
                    // newlines to exercise tokenizers.
                    match rng.next_u64() % 20 {
                        0 => ' ',
                        1 => '\n',
                        _ => char::from(b' ' + (rng.next_u64() % 95) as u8),
                    }
                })
                .collect()
        }
    }

    fn trailing_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_suffix('}')?;
        let open = body.rfind('{')?;
        let (lo, hi) = body[open + 1..].split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    /// Full-range values of primitive types (`any::<T>()`).
    pub struct Any<T>(PhantomData<T>);

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Primitive types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, broad range; upstream also generates non-finite
            // values, which nothing here relies on.
            (rng.unit_f64() - 0.5) * 2e6
        }
    }
}

/// Namespaced strategies (`prop::collection::vec`, `prop::array::…`).
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::collections::BTreeSet;
        use std::ops::{Range, RangeInclusive};

        /// Inclusive size bounds for collection strategies.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// `Vec`s of `element` with length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.usize_inclusive(self.size.lo, self.size.hi);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// `BTreeSet`s of `element` with cardinality drawn from `size`
        /// (best-effort: duplicates are redrawn a bounded number of
        /// times, so a narrow element domain may yield fewer items).
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`btree_set`].
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let target = rng.usize_inclusive(self.size.lo, self.size.hi);
                let mut out = BTreeSet::new();
                let mut attempts = 0;
                while out.len() < target && attempts < target * 20 + 100 {
                    out.insert(self.element.sample(rng));
                    attempts += 1;
                }
                out
            }
        }
    }

    pub mod array {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Fixed-size arrays whose elements come from one strategy.
        pub struct UniformArray<S, const N: usize> {
            element: S,
        }

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
            type Value = [S::Value; N];

            fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
                std::array::from_fn(|_| self.element.sample(rng))
            }
        }

        macro_rules! uniform_fns {
            ($($fname:ident => $n:literal),*) => {$(
                /// `[T; N]` of independently drawn elements.
                pub fn $fname<S: Strategy>(element: S) -> UniformArray<S, $n> {
                    UniformArray { element }
                }
            )*};
        }
        uniform_fns!(
            uniform4 => 4, uniform6 => 6, uniform8 => 8, uniform10 => 10,
            uniform16 => 16, uniform20 => 20, uniform32 => 32
        );
    }
}

/// Everything the property tests import with one glob.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Supports an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let outcome = $crate::test_runner::run_case(|| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Asserts inside a property body; failure reports the sampled inputs'
/// case number instead of panicking mid-closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skips the current case (not a failure) when a precondition on the
/// sampled inputs does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        for _ in 0..500 {
            let x = Strategy::sample(&(-3.0..7.0f64), &mut rng);
            assert!((-3.0..7.0).contains(&x));
            let n = Strategy::sample(&(1usize..=9), &mut rng);
            assert!((1..=9).contains(&n));
            let s = Strategy::sample(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        let mut c = crate::test_runner::TestRng::for_test("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn collection_and_string_strategies_hold_their_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("coll");
        for _ in 0..100 {
            let v = Strategy::sample(&prop::collection::vec(0u8..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
            let s: String = Strategy::sample(&"\\PC{0,12}", &mut rng);
            assert!(s.chars().count() <= 12);
            let arr = Strategy::sample(&prop::array::uniform6(any::<u8>()), &mut rng);
            assert_eq!(arr.len(), 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: sampling, prop_assert, prop_assume, oneof.
        #[test]
        fn macro_end_to_end(
            mut x in 0usize..50,
            pair in (0.0..1.0f64, any::<bool>()),
            tag in prop_oneof![Just(1u8), Just(2u8), 3u8..5],
        ) {
            prop_assume!(x != 13);
            x += 1;
            prop_assert!(x >= 1 && x <= 50);
            prop_assert!(pair.0 < 1.0);
            prop_assert!((1..5).contains(&tag));
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
