//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.9 API this workspace uses:
//! [`RngCore`], [`Rng`] (with `random`, `random_range`, `random_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`]. The generator behind `StdRng` is
//! xoshiro256** seeded through SplitMix64 — not the upstream ChaCha12,
//! but a high-quality, fast, deterministic PRNG, which is all the
//! simulations here require.

/// Low-level generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from raw generator output (the stand-in for
/// upstream's `StandardUniform` distribution).
pub trait FromRandom {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandom for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl FromRandom for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::from_rng(rng)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::from_rng(rng)
    }
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of `T`.
    fn random<T: FromRandom>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws one value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is outside `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state; guarantees a non-zero state vector.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<f64>(), c.random::<f64>());
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.random_range(-3.0..7.0);
            assert!((-3.0..7.0).contains(&x));
            let k = rng.random_range(0..5usize);
            assert!(k < 5);
            let j = rng.random_range(-2..=2i32);
            assert!((-2..=2).contains(&j));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
