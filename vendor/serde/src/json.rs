//! JSON writer and parser over the [`Value`](crate::Value) data model.

use crate::{Deserialize, Error, Serialize, Value};

/// Serializes any [`Serialize`] type to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    out
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` on f64 is the shortest representation that parses
                // back to the same bits.
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Parses JSON text into the raw [`Value`] model.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg(format!("bad sequence at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg(format!("bad map at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "-42", "17", "3.25", "\"hi\\n\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&to_string(&v)).unwrap(), v);
        }
    }

    #[test]
    fn structures_round_trip() {
        let text = r#"{"a":[1,2.5,{"b":"x"}],"c":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(to_string(&v), text);
    }

    #[test]
    fn float_precision_survives() {
        let v = Value::F64(0.1 + 0.2);
        let back = parse(&to_string(&v)).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn garbage_is_an_error() {
        for text in ["", "{", "[1,", "\"open", "tru", "{\"a\" 1}"] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string(&f64::INFINITY), "null");
    }
}
