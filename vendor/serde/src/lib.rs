//! Offline stand-in for the `serde` crate.
//!
//! Keeps serde's *shape* — `Serialize` / `Deserialize` traits plus
//! `#[derive(Serialize, Deserialize)]` — over a small JSON-style
//! [`Value`] data model instead of upstream's visitor architecture. The
//! conventions match `serde_json`: structs become objects, newtype
//! structs are transparent, unit enum variants become strings, so a
//! future switch back to the real crates is wire-compatible.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// The self-describing data model every serializable type lowers into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also produced by non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with string keys, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from any message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Converts to the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Converts from the data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetches and deserializes a struct field from a [`Value::Map`]
/// (support routine for derived `Deserialize` impls).
pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(field) => T::from_value(field),
        None => Err(Error::msg(format!("missing field `{name}`"))),
    }
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let wide: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} overflows i64")))?,
                    Value::F64(x) if x.fract() == 0.0 => *x as i64,
                    other => return Err(Error::msg(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(wide).map_err(|_| Error::msg(format!("{wide} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let wide: u64 = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) => u64::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} is negative")))?,
                    Value::F64(x) if x.fract() == 0.0 && *x >= 0.0 => *x as u64,
                    other => return Err(Error::msg(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(wide).map_err(|_| Error::msg(format!("{wide} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::msg(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected {N} elements, got {n}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<(A, B), Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::msg(format!("expected pair, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}
