//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde stand-in.
//!
//! Supports the shapes this workspace actually derives on: non-generic
//! named-field structs, tuple structs (newtypes are transparent, wider
//! tuples become sequences), and enums whose variants are all unit.
//! Anything else fails loudly at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string())",
                        name = item.name
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        name = item.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(v, \"{f}\")?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Seq(items) if items.len() == {n} => \
                         Ok({name}({items})),\n\
                     other => Err(::serde::Error::msg(format!(\
                         \"expected {n}-element sequence for {name}, got {{other:?}}\"))),\n\
                 }}",
                items = items.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v})"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {arms},\n\
                         other => Err(::serde::Error::msg(format!(\
                             \"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     other => Err(::serde::Error::msg(format!(\
                         \"expected string for {name}, got {{other:?}}\"))),\n\
                 }}",
                arms = arms.join(",\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<{name}, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` is not supported");
    }
    let shape = match kind.as_str() {
        "struct" => match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            other => panic!("serde stub derive: unsupported struct body {other:?}"),
        },
        "enum" => match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::UnitEnum(parse_unit_variants(g.stream(), &name))
            }
            other => panic!("serde stub derive: unsupported enum body {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    };
    Item { name, shape }
}

/// Advances past outer attributes (`#[...]`, doc comments) and any
/// visibility qualifier (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the attribute's `[...]` group
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        // Skip `: Type` up to the next comma outside angle brackets.
        let mut angle_depth = 0i32;
        i += 1;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut trailing_comma = false;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        saw_tokens = true;
        trailing_comma = false;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    // `(A, B)` has one comma and two fields; `(A, B,)` has two commas
    // but still two fields.
    match (saw_tokens, trailing_comma) {
        (false, _) => 0,
        (true, true) => count,
        (true, false) => count + 1,
    }
}

fn parse_unit_variants(stream: TokenStream, name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                variants.push(id.to_string());
                i += 1;
            }
            None => break,
            other => panic!("serde stub derive: unexpected token {other:?} in enum {name}"),
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => panic!(
                "serde stub derive: enum {name} has a non-unit variant \
                 `{}`, which is not supported",
                variants.last().expect("just pushed")
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => panic!(
                "serde stub derive: enum {name} uses explicit discriminants, \
                 which are not supported"
            ),
            None => break,
            other => panic!("serde stub derive: unexpected token {other:?} in enum {name}"),
        }
    }
    variants
}
